//===- tests/support/CommandLineTest.cpp - Table-driven flag parsing -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The shared cl::OptionTable parser behind relc-gen / relc-lint /
// relc-check: both dash spellings, value consumption, numeric minima,
// positional handlers, -help, and typo suggestions.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/ToolFlags.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

using namespace relc;

namespace {

/// Runs T.parse over the given arguments (argv[0] is synthesized).
cl::ParseResult parseArgs(const cl::OptionTable &T,
                          std::vector<std::string> Args) {
  std::vector<char *> Argv;
  std::string Tool = "test-tool";
  Argv.push_back(Tool.data());
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return T.parse(int(Argv.size()), Argv.data());
}

struct Fixture {
  bool Verbose = false;
  std::string Out = "default";
  unsigned Jobs = 1;
  std::vector<std::string> Pos;
  cl::OptionTable T{"test-tool", "A tool for testing the option table."};

  Fixture() {
    T.flag({"-v", "-verbose"}, &Verbose, "be chatty");
    T.str({"-out"}, &Out, "<dir>", "output directory");
    T.num({"-j", "-jobs"}, &Jobs, 1, "<n>", "job count");
    T.positional("name", "things to process",
                 [this](const std::string &A, std::string *Err) {
                   if (A == "bad") {
                     *Err = "unknown name '" + A + "'";
                     return false;
                   }
                   Pos.push_back(A);
                   return true;
                 });
  }
};

TEST(CommandLineTest, SingleAndDoubleDashSpellings) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-v", "--out", "here", "-jobs", "4"}),
            cl::ParseResult::Ok);
  EXPECT_TRUE(F.Verbose);
  EXPECT_EQ(F.Out, "here");
  EXPECT_EQ(F.Jobs, 4u);

  Fixture G;
  EXPECT_EQ(parseArgs(G.T, {"--verbose", "-out", "there"}),
            cl::ParseResult::Ok);
  EXPECT_TRUE(G.Verbose);
  EXPECT_EQ(G.Out, "there");
}

TEST(CommandLineTest, DefaultsSurviveEmptyArgv) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {}), cl::ParseResult::Ok);
  EXPECT_FALSE(F.Verbose);
  EXPECT_EQ(F.Out, "default");
  EXPECT_EQ(F.Jobs, 1u);
  EXPECT_TRUE(F.Pos.empty());
}

TEST(CommandLineTest, PositionalArgumentsCollected) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"alpha", "-v", "beta"}), cl::ParseResult::Ok);
  ASSERT_EQ(F.Pos.size(), 2u);
  EXPECT_EQ(F.Pos[0], "alpha");
  EXPECT_EQ(F.Pos[1], "beta");
}

TEST(CommandLineTest, PositionalRejectionIsAnError) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"alpha", "bad"}), cl::ParseResult::Error);
}

TEST(CommandLineTest, UnknownOptionIsAnError) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-frobnicate"}), cl::ParseResult::Error);
}

TEST(CommandLineTest, MissingValueIsAnError) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-out"}), cl::ParseResult::Error);
}

TEST(CommandLineTest, NumRejectsGarbageAndBelowMin) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-j", "zero"}), cl::ParseResult::Error);
  Fixture G;
  EXPECT_EQ(parseArgs(G.T, {"-j", "0"}), cl::ParseResult::Error);
  Fixture H;
  EXPECT_EQ(parseArgs(H.T, {"-j", "16"}), cl::ParseResult::Ok);
  EXPECT_EQ(H.Jobs, 16u);
}

TEST(CommandLineTest, NumWithZeroMinAcceptsZero) {
  // relc-gen/relc-lint declare -j with Min = 0: "-j 0" is valid and means
  // "use the hardware" (resolved by pipeline::resolveJobs, not here).
  unsigned Jobs = 1;
  cl::OptionTable T{"test-tool", "overview"};
  T.num({"-j", "-jobs"}, &Jobs, 0, "<n>", "job count (0 = hardware)");
  EXPECT_EQ(parseArgs(T, {"-j", "0"}), cl::ParseResult::Ok);
  EXPECT_EQ(Jobs, 0u);
  EXPECT_EQ(parseArgs(T, {"-j", "-1"}), cl::ParseResult::Error);
}

TEST(CommandLineTest, HelpFlagShortCircuits) {
  Fixture F;
  testing::internal::CaptureStdout();
  cl::ParseResult R = parseArgs(F.T, {"-help"});
  std::string Out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(R, cl::ParseResult::Help);
  EXPECT_NE(Out.find("usage: test-tool"), std::string::npos);
  EXPECT_NE(Out.find("-out"), std::string::npos);
  EXPECT_NE(Out.find("output directory"), std::string::npos);
}

TEST(CommandLineTest, HelpTextListsEverySpelling) {
  Fixture F;
  std::string Help = F.T.helpText();
  EXPECT_NE(Help.find("A tool for testing"), std::string::npos);
  EXPECT_NE(Help.find("-v"), std::string::npos);
  EXPECT_NE(Help.find("-verbose"), std::string::npos);
  EXPECT_NE(Help.find("-jobs"), std::string::npos);
  EXPECT_NE(Help.find("<n>"), std::string::npos);
  EXPECT_NE(Help.find("name"), std::string::npos);
}

TEST(CommandLineTest, TypoSuggestion) {
  Fixture F;
  EXPECT_EQ(F.T.suggestion("-vebose"), "-verbose");
  EXPECT_EQ(F.T.suggestion("-ouy"), "-out");
  // Nothing within distance 2 of this.
  EXPECT_EQ(F.T.suggestion("-completely-different"), "");
}

TEST(CommandLineTest, UsageLineMentionsPositionalMeta) {
  Fixture F;
  std::string U = F.T.usageLine();
  EXPECT_NE(U.find("test-tool"), std::string::npos);
  EXPECT_NE(U.find("name"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// -flag=value spelling.
//===----------------------------------------------------------------------===//

TEST(CommandLineTest, EqualsValueForm) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-out=there", "-j=8"}), cl::ParseResult::Ok);
  EXPECT_EQ(F.Out, "there");
  EXPECT_EQ(F.Jobs, 8u);
}

TEST(CommandLineTest, EqualsValueFormWithDoubleDash) {
  // The relc-gen spelling '--tv-step-budget=5000': double dash plus
  // inline value, routed through a custom consumer.
  uint64_t Budget = 0;
  cl::OptionTable T{"test-tool", "overview"};
  T.custom({"-tv-step-budget"}, /*HasValue=*/true, "<n>", "step cap",
           [&Budget](const std::string &V, std::string *Err) {
             if (V.empty() ||
                 V.find_first_not_of("0123456789") != std::string::npos) {
               *Err = "expected a non-negative integer, got '" + V + "'";
               return false;
             }
             Budget = std::strtoull(V.c_str(), nullptr, 10);
             return true;
           });
  EXPECT_EQ(parseArgs(T, {"--tv-step-budget=5000"}), cl::ParseResult::Ok);
  EXPECT_EQ(Budget, 5000u);
}

TEST(CommandLineTest, EqualsEmptyValueReachesConsumer) {
  // '-j=' hands the empty string to the numeric consumer, which rejects
  // it in its own words — not the generic missing-value error.
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-j="}), cl::ParseResult::Error);
  // And a string option accepts the empty value as-is.
  Fixture G;
  EXPECT_EQ(parseArgs(G.T, {"-out="}), cl::ParseResult::Ok);
  EXPECT_EQ(G.Out, "");
}

TEST(CommandLineTest, EqualsOnValuelessFlagIsAnError) {
  Fixture F;
  EXPECT_EQ(parseArgs(F.T, {"-v=1"}), cl::ParseResult::Error);
  EXPECT_FALSE(F.Verbose);
}

TEST(CommandLineTest, EqualsOnUnknownOptionStillSuggests) {
  // The '=value' tail must not defeat the typo suggestion.
  Fixture F;
  testing::internal::CaptureStderr();
  EXPECT_EQ(parseArgs(F.T, {"--ouy=here"}), cl::ParseResult::Error);
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("did you mean '-out'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Typo suggestions for the relc-lint metatheory flags.
//===----------------------------------------------------------------------===//

TEST(CommandLineTest, TypoSuggestionForRulesFlags) {
  // Mirror of the relc-lint table: misspelling -rules or -rulint-report
  // must point at the real flag.
  bool Rules = false, RulintReport = false;
  cl::OptionTable T{"relc-lint", "overview"};
  T.flag({"-rules"}, &Rules, "metatheory gate");
  T.flag({"-rulint-report"}, &RulintReport, "registry summary");
  EXPECT_EQ(T.suggestion("-rule"), "-rules");
  EXPECT_EQ(T.suggestion("-ruels"), "-rules");
  EXPECT_EQ(T.suggestion("-rulint-reprot"), "-rulint-report");

  testing::internal::CaptureStderr();
  EXPECT_EQ(parseArgs(T, {"--rulez"}), cl::ParseResult::Error);
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("did you mean '-rules'"), std::string::npos);
  EXPECT_FALSE(Rules);
}

//===----------------------------------------------------------------------===//
// choice(): the enumerated option behind --cert-format.
//===----------------------------------------------------------------------===//

struct ChoiceFixture {
  std::string Format = "auto";
  cl::OptionTable T{"relc-gen", "overview"};
  ChoiceFixture() {
    T.choice({"-cert-format"}, &Format, {"json", "bin", "auto"}, "<fmt>",
             "certificate format");
  }
};

TEST(CommandLineTest, ChoiceAcceptsEachAllowedValueInBothDashForms) {
  {
    ChoiceFixture F;
    EXPECT_EQ(parseArgs(F.T, {"-cert-format", "json"}), cl::ParseResult::Ok);
    EXPECT_EQ(F.Format, "json");
  }
  {
    ChoiceFixture F;
    EXPECT_EQ(parseArgs(F.T, {"--cert-format", "bin"}), cl::ParseResult::Ok);
    EXPECT_EQ(F.Format, "bin");
  }
  {
    ChoiceFixture F;
    EXPECT_EQ(parseArgs(F.T, {"--cert-format=bin"}), cl::ParseResult::Ok);
    EXPECT_EQ(F.Format, "bin");
  }
  {
    ChoiceFixture F;
    EXPECT_EQ(parseArgs(F.T, {"-cert-format=auto"}), cl::ParseResult::Ok);
    EXPECT_EQ(F.Format, "auto");
  }
}

TEST(CommandLineTest, ChoiceDefaultSurvivesEmptyArgv) {
  ChoiceFixture F;
  EXPECT_EQ(parseArgs(F.T, {}), cl::ParseResult::Ok);
  EXPECT_EQ(F.Format, "auto");
}

TEST(CommandLineTest, ChoiceRejectsUnknownValueNamingTheChoices) {
  ChoiceFixture F;
  testing::internal::CaptureStderr();
  EXPECT_EQ(parseArgs(F.T, {"--cert-format=xml"}), cl::ParseResult::Error);
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("invalid value 'xml'"), std::string::npos);
  EXPECT_NE(Err.find("'json', 'bin' or 'auto'"), std::string::npos);
  EXPECT_EQ(F.Format, "auto"); // Untouched on error.
}

TEST(CommandLineTest, ChoiceFlagTypoIsSuggested) {
  ChoiceFixture F;
  EXPECT_EQ(F.T.suggestion("-cert-fromat"), "-cert-format");
  testing::internal::CaptureStderr();
  EXPECT_EQ(parseArgs(F.T, {"--cert-fromat=bin"}), cl::ParseResult::Error);
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("did you mean '-cert-format'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// SubcommandSet: the relcd serve|ping|stats|shutdown driver.
//===----------------------------------------------------------------------===//

/// Runs S.dispatch over the given arguments (argv[0] is synthesized).
cl::SubcommandSet::Dispatch dispatchArgs(const cl::SubcommandSet &S,
                                         std::vector<std::string> Args) {
  std::vector<char *> Argv;
  std::string Tool = "relcd";
  Argv.push_back(Tool.data());
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return S.dispatch(int(Argv.size()), Argv.data());
}

struct SubFixture {
  std::string Socket = "relcd.sock";
  bool Quiet = false;
  cl::SubcommandSet S{"relcd", "The relc certification daemon."};
  SubFixture() {
    cl::OptionTable &Serve =
        S.add("serve", "run the daemon", "Runs the daemon in the foreground.");
    Serve.str({"-socket"}, &Socket, "<path>", "socket path to listen on");
    Serve.flag({"-q"}, &Quiet, "suppress the startup banner");
    cl::OptionTable &Ping =
        S.add("ping", "probe a running daemon", "Probes a running daemon.");
    Ping.str({"-socket"}, &Socket, "<path>", "socket path to probe");
  }
};

TEST(CommandLineTest, SubcommandDispatchSelectsAndParses) {
  SubFixture F;
  cl::SubcommandSet::Dispatch D =
      dispatchArgs(F.S, {"serve", "-socket", "/tmp/x.sock", "-q"});
  EXPECT_EQ(D.Result, cl::ParseResult::Ok);
  EXPECT_EQ(D.Name, "serve");
  EXPECT_EQ(F.Socket, "/tmp/x.sock");
  EXPECT_TRUE(F.Quiet);
}

TEST(CommandLineTest, SubcommandMissingCommandIsAnError) {
  SubFixture F;
  testing::internal::CaptureStderr();
  cl::SubcommandSet::Dispatch D = dispatchArgs(F.S, {});
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(D.Result, cl::ParseResult::Error);
  EXPECT_EQ(D.Name, "");
  EXPECT_NE(Err.find("relcd: missing command"), std::string::npos);
  EXPECT_NE(Err.find("serve"), std::string::npos); // Help page follows.
}

TEST(CommandLineTest, SubcommandTopLevelHelpListsEveryCommand) {
  SubFixture F;
  testing::internal::CaptureStdout();
  cl::SubcommandSet::Dispatch D = dispatchArgs(F.S, {"-help"});
  std::string Out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(D.Result, cl::ParseResult::Help);
  EXPECT_NE(Out.find("serve"), std::string::npos);
  EXPECT_NE(Out.find("run the daemon"), std::string::npos);
  EXPECT_NE(Out.find("ping"), std::string::npos);
  EXPECT_NE(Out.find("probe a running daemon"), std::string::npos);
}

TEST(CommandLineTest, SubcommandPerCommandHelp) {
  // Both spellings reach the same page: `relcd serve -help` and
  // `relcd help serve`.
  {
    SubFixture F;
    testing::internal::CaptureStdout();
    cl::SubcommandSet::Dispatch D = dispatchArgs(F.S, {"serve", "-help"});
    std::string Out = testing::internal::GetCapturedStdout();
    EXPECT_EQ(D.Result, cl::ParseResult::Help);
    EXPECT_EQ(D.Name, "serve");
    EXPECT_NE(Out.find("usage: relcd serve"), std::string::npos);
    EXPECT_NE(Out.find("-socket"), std::string::npos);
  }
  {
    SubFixture F;
    testing::internal::CaptureStdout();
    cl::SubcommandSet::Dispatch D = dispatchArgs(F.S, {"help", "serve"});
    std::string Out = testing::internal::GetCapturedStdout();
    EXPECT_EQ(D.Result, cl::ParseResult::Help);
    EXPECT_EQ(D.Name, "serve");
    EXPECT_NE(Out.find("-socket"), std::string::npos);
  }
}

TEST(CommandLineTest, SubcommandTypoIsSuggested) {
  SubFixture F;
  EXPECT_EQ(F.S.suggestion("srve"), "serve");
  EXPECT_EQ(F.S.suggestion("pign"), "ping");
  EXPECT_EQ(F.S.suggestion("frobnicate"), "");
  testing::internal::CaptureStderr();
  cl::SubcommandSet::Dispatch D = dispatchArgs(F.S, {"srve"});
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(D.Result, cl::ParseResult::Error);
  EXPECT_NE(Err.find("unknown command 'srve'; did you mean 'serve'?"),
            std::string::npos);
}

TEST(CommandLineTest, SubcommandFlagErrorsStayPerCommand) {
  // A flag typo inside a subcommand gets that table's suggestion, and
  // the dispatch still names which subcommand was running.
  SubFixture F;
  testing::internal::CaptureStderr();
  cl::SubcommandSet::Dispatch D =
      dispatchArgs(F.S, {"serve", "-socet", "/tmp/x"});
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(D.Result, cl::ParseResult::Error);
  EXPECT_EQ(D.Name, "serve");
  EXPECT_NE(Err.find("did you mean '-socket'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ToolFlags: the shared cache-dir / budget / jobs tables and the one
// cache-directory precedence rule.
//===----------------------------------------------------------------------===//

/// Sets/unsets RELC_CACHE_DIR for one test, restoring the prior value.
struct ScopedEnv {
  std::string Name;
  std::string Saved;
  bool HadValue;
  ScopedEnv(const std::string &N, const char *Value) : Name(N) {
    const char *Old = std::getenv(N.c_str());
    HadValue = Old != nullptr;
    Saved = Old ? Old : "";
    if (Value)
      ::setenv(N.c_str(), Value, 1);
    else
      ::unsetenv(N.c_str());
  }
  ~ScopedEnv() {
    if (HadValue)
      ::setenv(Name.c_str(), Saved.c_str(), 1);
    else
      ::unsetenv(Name.c_str());
  }
};

TEST(CommandLineTest, ResolveCacheDirPrecedence) {
  // The one documented rule:
  //   -no-cache > -cache-dir <dir> > $RELC_CACHE_DIR > .relc-cache
  {
    ScopedEnv E("RELC_CACHE_DIR", nullptr);
    cl::CacheDirFlags F;
    EXPECT_EQ(cl::resolveCacheDir(F), ".relc-cache");
  }
  {
    ScopedEnv E("RELC_CACHE_DIR", "/tmp/env-cache");
    cl::CacheDirFlags F;
    EXPECT_EQ(cl::resolveCacheDir(F), "/tmp/env-cache");
    F.Dir = "/tmp/flag-cache"; // The flag beats the environment.
    EXPECT_EQ(cl::resolveCacheDir(F), "/tmp/flag-cache");
    F.NoCache = true; // -no-cache beats everything.
    EXPECT_EQ(cl::resolveCacheDir(F), "");
  }
  {
    // An empty RELC_CACHE_DIR is "unset", not "cache in ''".
    ScopedEnv E("RELC_CACHE_DIR", "");
    cl::CacheDirFlags F;
    EXPECT_EQ(cl::resolveCacheDir(F), ".relc-cache");
  }
}

TEST(CommandLineTest, CacheDirFlagsParseBothSpellings) {
  cl::CacheDirFlags F;
  cl::OptionTable T{"test-tool", "overview"};
  cl::addCacheDirFlags(T, F);
  EXPECT_EQ(parseArgs(T, {"--cache-dir", "/tmp/c", "-no-cache"}),
            cl::ParseResult::Ok);
  EXPECT_EQ(F.Dir, "/tmp/c");
  EXPECT_TRUE(F.NoCache);
  // The non-consulting variant still registers the same spellings but
  // says so in its help text.
  cl::CacheDirFlags G;
  cl::OptionTable U{"relc-check", "overview"};
  cl::addCacheDirFlags(U, G, /*Consults=*/false);
  EXPECT_NE(U.helpText().find("never consult the cache"), std::string::npos);
}

TEST(CommandLineTest, BudgetFlagsParse) {
  cl::BudgetFlags F;
  cl::OptionTable T{"test-tool", "overview"};
  cl::addBudgetFlags(T, F);
  EXPECT_EQ(parseArgs(T, {"-layer-timeout-ms", "500",
                          "--tv-step-budget=5000"}),
            cl::ParseResult::Ok);
  EXPECT_EQ(F.LayerTimeoutMs, 500u);
  EXPECT_EQ(F.TvStepBudget, 5000u);
  cl::BudgetFlags G;
  cl::OptionTable U{"test-tool", "overview"};
  cl::addBudgetFlags(U, G);
  EXPECT_EQ(parseArgs(U, {"-tv-step-budget", "many"}), cl::ParseResult::Error);
  EXPECT_EQ(G.TvStepBudget, 0u);
}

TEST(CommandLineTest, JobsFlagAcceptsZeroForHardware) {
  unsigned Jobs = 1;
  cl::OptionTable T{"test-tool", "overview"};
  cl::addJobsFlag(T, Jobs, "certification");
  EXPECT_EQ(parseArgs(T, {"-j", "0"}), cl::ParseResult::Ok);
  EXPECT_EQ(Jobs, 0u);
  EXPECT_EQ(parseArgs(T, {"--jobs", "8"}), cl::ParseResult::Ok);
  EXPECT_EQ(Jobs, 8u);
  EXPECT_NE(T.helpText().find("certification"), std::string::npos);
}

} // namespace
