//===- service/Supervisor.cpp - relcd worker-pool supervisor ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Supervisor.h"

#include "support/Backoff.h"
#include "support/Fault.h"
#include "support/Hash.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include <filesystem>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace relc {
namespace service {

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

wire::Message busyReply(const std::string &Detail) {
  wire::Message M;
  M.TheKind = wire::Kind::ErrorReply;
  M.Error.Reason = "server-busy";
  M.Error.Detail = Detail;
  return M;
}

bool sendAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += size_t(N);
  }
  return true;
}

} // namespace

const char *lossName(Loss L) {
  switch (L) {
  case Loss::Crashed:
    return "worker-crashed";
  case Loss::Oom:
    return "worker-oom";
  case Loss::Timeout:
    return "worker-timeout";
  }
  return "worker-crashed";
}

Loss classifyExit(int WaitStatus, bool KilledByDeadline,
                  std::string *Detail) {
  if (KilledByDeadline) {
    *Detail = "killed after the per-job wall deadline";
    return Loss::Timeout;
  }
  if (WIFEXITED(WaitStatus)) {
    int Code = WEXITSTATUS(WaitStatus);
    if (Code == kWorkerOomExit) {
      *Detail = "allocation failure (exit " + std::to_string(Code) + ")";
      return Loss::Oom;
    }
    *Detail = "unexpected exit code " + std::to_string(Code);
    return Loss::Crashed;
  }
  if (WIFSIGNALED(WaitStatus)) {
    int Sig = WTERMSIG(WaitStatus);
    if (Sig == SIGXCPU) {
      *Detail = "cpu rlimit exceeded (SIGXCPU)";
      return Loss::Timeout;
    }
    const char *Name = strsignal(Sig);
    *Detail = "killed by signal " + std::to_string(Sig) +
              (Name ? std::string(" (") + Name + ")" : std::string());
    return Loss::Crashed;
  }
  *Detail = "unrecognized wait status " + std::to_string(WaitStatus);
  return Loss::Crashed;
}

Supervisor::Supervisor(SupervisorOptions O) : Opts(std::move(O)) {
  Slots.resize(Opts.Workers ? Opts.Workers : 1);
}

Supervisor::~Supervisor() { stop(); }

Status Supervisor::start() {
  if (!Opts.CrashDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Opts.CrashDir, Ec);
  }
  // Pre-fork the pool before the daemon goes multi-threaded; a slot
  // that cannot spawn now is retried lazily per job.
  for (int I = 0; I < int(Slots.size()); ++I)
    (void)ensureSpawned(I, "pool-start");
  return Status::success();
}

void Supervisor::stop() {
  if (Stopping.exchange(true))
    return;
  std::lock_guard<std::mutex> L(Mu);
  for (Slot &S : Slots) {
    if (S.Pid < 0)
      continue;
    ::kill(S.Pid, SIGKILL);
    if (!S.Busy) {
      // Idle: reap and tear down here. Busy slots are reaped by the
      // runJob thread that owns them, which observes EOF and returns a
      // named loss without retrying (Stopping is set).
      int St = 0;
      ::waitpid(S.Pid, &St, 0);
      ::close(S.Fd);
      S.Pid = -1;
      S.Fd = -1;
    }
  }
  IdleCv.notify_all();
}

SupervisorCounters Supervisor::counters() const {
  SupervisorCounters C;
  C.Spawns = Spawns.load();
  C.Restarts = Restarts.load();
  C.SpawnFailures = SpawnFailures.load();
  C.Crashes = Crashes.load();
  C.Ooms = Ooms.load();
  C.Timeouts = Timeouts.load();
  C.Retries = Retries.load();
  C.DegradedReplies = DegradedReplies.load();
  C.JobsRun = JobsRun.load();
  C.CrashReports = CrashReportsWritten.load();
  return C;
}

int Supervisor::acquireSlot() {
  std::unique_lock<std::mutex> L(Mu);
  auto T0 = std::chrono::steady_clock::now();
  for (;;) {
    if (Stopping.load())
      return -1;
    for (int I = 0; I < int(Slots.size()); ++I)
      if (!Slots[I].Busy) {
        Slots[I].Busy = true;
        return I;
      }
    if (msSince(T0) > double(Opts.AcquireTimeoutMs))
      return -1;
    IdleCv.wait_for(L, std::chrono::milliseconds(50));
  }
}

void Supervisor::releaseSlot(int Idx) {
  std::lock_guard<std::mutex> L(Mu);
  Slots[Idx].Busy = false;
  IdleCv.notify_one();
}

Status Supervisor::ensureSpawned(int Idx, const std::string &JobKey) {
  Slot &S = Slots[Idx];
  if (S.Pid >= 0)
    return Status::success();
  if (Stopping.load())
    return Error("supervisor draining");
  // svc-worker-spawn: a deterministic fork failure — the attempt is
  // charged exactly like a real EAGAIN from fork().
  if (std::optional<fault::Hit> H =
          fault::fire(fault::Site::SvcWorkerSpawn, JobKey)) {
    SpawnFailures.fetch_add(1);
    return Error(H->describe());
  }
  int Sp[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp) != 0) {
    SpawnFailures.fetch_add(1);
    return Error(std::string("socketpair: ") + std::strerror(errno));
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    SpawnFailures.fetch_add(1);
    int E = errno;
    ::close(Sp[0]);
    ::close(Sp[1]);
    return Error(std::string("fork: ") + std::strerror(E));
  }
  if (Pid == 0) {
    ::close(Sp[0]);
    workerMain(Sp[1], Opts.Worker); // Never returns.
  }
  ::close(Sp[1]);
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Stopping.load()) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
      ::close(Sp[0]);
      return Error("supervisor draining");
    }
    Spawns.fetch_add(1);
    if (S.EverSpawned)
      Restarts.fetch_add(1);
    S.EverSpawned = true;
    S.Pid = Pid;
    S.Fd = Sp[0];
  }
  return Status::success();
}

void Supervisor::writeCrashReport(const std::string &JobKey, unsigned Attempt,
                                  Loss L, const std::string &Detail,
                                  int WaitStatus, long MaxRssKb, pid_t Pid) {
  if (Opts.CrashDir.empty())
    return;
  uint64_t Seq = CrashSeq.fetch_add(1);
  std::string Path = Opts.CrashDir + "/crash-" + std::to_string(Pid) + "-" +
                     std::to_string(Seq) + ".txt";
  std::ofstream Out(Path);
  if (!Out)
    return;
  Out << "relcd worker crash report\n"
      << "job:         " << JobKey << "\n"
      << "attempt:     " << (Attempt + 1) << "/" << (Opts.RetryLimit + 1)
      << "\n"
      << "loss:        " << lossName(L) << "\n"
      << "detail:      " << Detail << "\n"
      << "wait-status: " << WaitStatus << "\n"
      << "worker-pid:  " << Pid << "\n"
      << "max-rss-kb:  " << MaxRssKb << "\n";
  if (fault::armed())
    Out << "fault-spec:  " << fault::activeSpec() << "\n";
  CrashReportsWritten.fetch_add(1);
}

Loss Supervisor::reapLoss(int Idx, bool KilledByDeadline,
                          const std::string &JobKey, unsigned Attempt,
                          std::string *Detail) {
  // Detach the slot under the lock first, so stop() can never observe
  // (and kill) a pid this thread is about to reap — after wait4 the pid
  // is free for reuse.
  pid_t Pid = -1;
  int Fd = -1;
  {
    std::lock_guard<std::mutex> L(Mu);
    Slot &S = Slots[Idx];
    Pid = S.Pid;
    Fd = S.Fd;
    S.Pid = -1;
    S.Fd = -1;
  }
  int St = 0;
  rusage RU{};
  if (Pid >= 0) {
    // Idempotent teardown: the worker may already be dead (that is how
    // we got here), but a hung or protocol-corrupt worker needs the
    // kill so the wait below cannot block.
    ::kill(Pid, SIGKILL);
    ::wait4(Pid, &St, 0, &RU);
  }
  if (Fd >= 0)
    ::close(Fd);
  Loss TheLoss = classifyExit(St, KilledByDeadline, Detail);
  switch (TheLoss) {
  case Loss::Crashed:
    Crashes.fetch_add(1);
    break;
  case Loss::Oom:
    Ooms.fetch_add(1);
    break;
  case Loss::Timeout:
    Timeouts.fetch_add(1);
    break;
  }
  writeCrashReport(JobKey, Attempt, TheLoss, *Detail, St,
                   RU.ru_maxrss, Pid);
  return TheLoss;
}

bool Supervisor::attemptJob(int Idx, const wire::CertifyRequest &Canon,
                            const std::string &JobKey, unsigned Attempt,
                            wire::Message *Reply, Loss *TheLoss,
                            std::string *Detail) {
  Slot &S = Slots[Idx];

  // Parent-side deterministic chaos. The per-key ordinals live in this
  // process, so transient clauses heal across worker restarts exactly
  // like every other site; the worker child consults nothing.
  int CrashSig = 0;
  bool Hang = false;
  if (std::optional<fault::Hit> H =
          fault::fire(fault::Site::SvcWorkerCrash, JobKey))
    CrashSig = H->Value ? int(H->Value) : SIGKILL;
  else if (fault::fire(fault::Site::SvcWorkerHang, JobKey))
    Hang = true;

  // A *real* signal, delivered before the job frame goes out: the worker
  // is blocked in recv and cannot outrun the kill, so the loss is
  // deterministic. (Killing *after* the send races a fast worker — its
  // reply bytes survive in the socketpair buffer and the parent would
  // read a complete frame from a dead child.)
  if (CrashSig)
    ::kill(S.Pid, CrashSig);

  wire::Message Req;
  Req.TheKind = wire::Kind::CertifyRequest;
  Req.Certify = Canon;
  if (!sendAll(S.Fd, wire::frame(wire::encode(Req)))) {
    *TheLoss = reapLoss(Idx, false, JobKey, Attempt, Detail);
    return false;
  }

  std::string Buf;
  auto T0 = std::chrono::steady_clock::now();
  for (;;) {
    double Remaining = double(Opts.JobWallMs) - msSince(T0);
    if (Remaining <= 0) {
      *TheLoss = reapLoss(Idx, true, JobKey, Attempt, Detail);
      return false;
    }
    pollfd P{S.Fd, POLLIN, 0};
    int R = ::poll(&P, 1, int(Remaining < 50 ? Remaining + 1 : 50));
    if (R < 0 && errno != EINTR) {
      *TheLoss = reapLoss(Idx, false, JobKey, Attempt, Detail);
      return false;
    }
    if (R <= 0)
      continue;
    char Tmp[65536];
    ssize_t N = ::recv(S.Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      *TheLoss = reapLoss(Idx, false, JobKey, Attempt, Detail);
      return false;
    }
    if (N == 0) {
      // EOF: the worker died mid-job.
      *TheLoss = reapLoss(Idx, false, JobKey, Attempt, Detail);
      return false;
    }
    if (Hang) {
      // svc-worker-hang: the reply is withheld — drop the bytes and let
      // the wall deadline fire, exercising the timeout/kill path end to
      // end against a genuinely live worker.
      continue;
    }
    Buf.append(Tmp, size_t(N));
    size_t FrameSize = 0;
    std::string_view Payload;
    wire::FrameStatus FS = wire::splitFrame(Buf, &FrameSize, &Payload);
    if (FS == wire::FrameStatus::NeedMore)
      continue;
    std::string Reason;
    if (FS != wire::FrameStatus::Ok ||
        !wire::decode(Payload, Reply, &Reason)) {
      // A worker that speaks garbage is as dead as one that crashed.
      *TheLoss = reapLoss(Idx, false, JobKey, Attempt, Detail);
      *Detail += "; worker reply rejected (" +
                 (Reason.empty() ? std::string(wire::frameStatusReason(FS))
                                 : Reason) +
                 ")";
      return false;
    }
    return true;
  }
}

wire::Message Supervisor::runJob(const wire::CertifyRequest &Canon,
                                 const std::string &JobKey) {
  // Jitter decorrelated per job, deterministic per (seed, job).
  backoff::Schedule Delay({Opts.BackoffBaseMs, Opts.BackoffCapMs,
                           hash::fnv1a64(JobKey, Opts.BackoffSeed)});
  const unsigned Attempts = Opts.RetryLimit + 1;
  std::string AttemptLog;
  Loss LastLoss = Loss::Crashed;
  std::string LastDetail;

  for (unsigned A = 0; A < Attempts; ++A) {
    if (A) {
      Retries.fetch_add(1);
      unsigned D = Delay.next();
      if (!Stopping.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(D));
    }
    if (Stopping.load())
      return busyReply("server draining");

    int Idx = acquireSlot();
    if (Idx < 0)
      return busyReply(Stopping.load()
                           ? "server draining"
                           : "no idle worker within " +
                                 std::to_string(Opts.AcquireTimeoutMs) +
                                 " ms");

    if (Status S = ensureSpawned(Idx, JobKey); !S) {
      releaseSlot(Idx);
      LastLoss = Loss::Crashed;
      LastDetail = "spawn failed: " + S.takeError().str();
    } else {
      wire::Message Reply;
      if (attemptJob(Idx, Canon, JobKey, A, &Reply, &LastLoss,
                     &LastDetail)) {
        JobsRun.fetch_add(1);
        releaseSlot(Idx);
        return Reply;
      }
      releaseSlot(Idx);
    }

    if (!AttemptLog.empty())
      AttemptLog += "; ";
    AttemptLog += "attempt " + std::to_string(A + 1) + ": " +
                  lossName(LastLoss) + " (" + LastDetail + ")";
    if (Stopping.load())
      break; // Draining: the loss is final, do not retry.
  }

  DegradedReplies.fetch_add(1);
  wire::Message E;
  E.TheKind = wire::Kind::ErrorReply;
  if (Opts.RetryLimit == 0) {
    E.Error.Reason = lossName(LastLoss);
    E.Error.Detail = LastDetail + " (job '" + JobKey + "')";
  } else {
    E.Error.Reason = "worker-retries-exhausted";
    E.Error.Detail = AttemptLog + " (job '" + JobKey + "')";
  }
  return E;
}

} // namespace service
} // namespace relc
