//===- codelint/Codelint.h - Target-side safety & resource lints -*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Abstract interpretation over *emitted* target code (Bedrock2 IR and stackm
// programs), closing the gap left by the model-side layers: relc::analysis
// certifies the compiler's own output against the ABI frame, relc::tv proves
// the equivalence, but nothing until now gave the generated artifact its own
// machine-checked safety and resource envelope (the CompCert/COGENT story:
// semantic preservation plus target-level obligations).
//
// Three analyses, each with a three-valued verdict:
//
//   - Memory safety: the analysis CFG + worklist engine runs the symbolic
//     points-to/interval domain over the emitted code and replays every
//     load/store/table access through the linear solver, proving each one
//     lands inside a region the fnspec frame owns. Scoped (stackalloc)
//     pointers must not escape their frame — neither stored to memory nor
//     returned.
//
//   - Stack/locals bound: a static worst-case footprint — 8 bytes per
//     distinct local plus the worst lexical nesting of stackalloc scratch.
//     Self-recursion is rejected as unbounded; for stackm programs the
//     analysis instead bounds the maximum operand-stack depth.
//
//   - Step bound: symbolic per-iteration cost times loop trip-count
//     intervals, against a small termination-pattern library (counting-up
//     loops with provably bounded limits; the shift-fold accumulator loop).
//     The resulting envelope dominates the Bedrock2 interpreter's fuel
//     accounting, so `relc::guard` budgets and the differential layer can
//     cross-check it dynamically.
//
// Trust story (DESIGN.md §4.9): verdicts are *refusals by default* — every
// failed proof, unmatched pattern, or exhausted budget degrades to Unknown
// or Unsafe, never to a wrong Safe. Results are embedded in the equivalence
// certificate as a versioned `codelint` section and independently recomputed
// by relc-check from this library alone (the driver never gets linked).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CODELINT_CODELINT_H
#define RELC_CODELINT_CODELINT_H

#include "analysis/Domains.h"
#include "bedrock/Ast.h"
#include "stackm/StackMachine.h"
#include "support/Budget.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace relc {
namespace codelint {

/// Version of the certificate `codelint` section this analyzer produces.
/// Bump on any change to the analyses or the section's meaning; the value
/// is also salted into the pipeline's certificate-cache options hash so an
/// analyzer change provably misses the cache.
constexpr unsigned kCodelintVersion = 1;

/// Three-valued analysis verdict. Only Safe is ever trusted; Unknown means
/// the analyzer refused (budget, unmatched pattern, failed proof attempt
/// that could not be classified), Unsafe means a concrete defect witness.
enum class Verdict { Safe, Unknown, Unsafe };

/// Stable kebab-case verdict name ("safe" / "unknown" / "unsafe").
const char *verdictName(Verdict V);

/// Parses a verdict name back (certificate reader); nullopt on junk.
std::optional<Verdict> verdictFromName(const std::string &Name);

/// One analyzer finding, with a stable kebab-case reason. Reasons:
///   oob-load, oob-store, oob-table  unprovable / failed access bounds
///   unknown-address                 access through a non-frame pointer
///   expired-region                  access into a dead stackalloc scope
///   frame-escape                    scoped pointer stored or returned
///   unbounded-stack                 (self-)recursive call
///   unknown-callee                  call whose frame cannot be bounded
///   stack-underflow                 stackm pop on a short operand stack
///   unknown-step-bound              loop outside the termination library
///   analysis-incomplete             budget exhausted / fixpoint diverged
struct Finding {
  std::string Reason;
  std::string Path;   ///< Statement path ("body.1.2") or op index.
  std::string Detail;

  std::string str() const;
};

/// The full analysis result for one function (or stackm program).
struct Report {
  std::string Fn;

  Verdict Mem = Verdict::Unknown;
  Verdict Stack = Verdict::Unknown;
  Verdict Steps = Verdict::Unknown;

  uint64_t Accesses = 0;     ///< Memory/table accesses checked.
  uint64_t LocalsBytes = 0;  ///< 8 bytes per distinct local (args included).
  uint64_t ScratchBytes = 0; ///< Worst-case live stackalloc bytes.
  uint64_t OperandDepth = 0; ///< stackm only: max operand-stack depth.
  uint64_t StepBound = 0;    ///< Step envelope (valid when Steps == Safe);
                             ///< saturating, dominates interpreter fuel.

  std::vector<Finding> Findings;
  bool BudgetExhausted = false;

  /// Unsafe if any analysis is Unsafe, else Unknown if any is Unknown,
  /// else Safe.
  Verdict overall() const;

  std::string str() const;
};

/// Runs all three analyses over emitted Bedrock2 code, against the same ABI
/// digest the static verifier uses (spec + model + compile hints). The
/// budget bounds the fixpoint iteration and every solver query; exhaustion
/// latches BudgetExhausted and degrades verdicts to Unknown.
Report analyzeFunction(const bedrock::Function &Fn, const sep::FnSpec &Spec,
                       const ir::SourceFn &Src,
                       const analysis::EntryFactList &Hints = {},
                       const guard::Budget *Budget = nullptr);

/// Analyzes a stackm program: maximum operand-stack depth (an underflowing
/// pop is a defect even though the interpreter's total semantics make it a
/// no-op), plus the exact step count. No memory, so Mem is trivially Safe.
Report analyzeStackProgram(const stackm::TProgram &P);

} // namespace codelint
} // namespace relc

#endif // RELC_CODELINT_CODELINT_H
