//===- ir/Interp.h - Reference semantics for FunLang -----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The denotational reference semantics of FunLang models. This is the
// "meaning" side of the equivalence the relational compiler certifies: the
// validator compares a compiled Bedrock2 function's behaviour against this
// interpreter.
//
// Effects are interpreted against an EffectCtx shared in spirit with the
// target-side environment: IO reads consume an input tape, IO writes and
// writer tells accumulate output, and nondet draws from a seeded oracle.
// Totality is enforced: while-loops must strictly decrease their declared
// measure, and a global fuel bound catches runaway evaluation.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_IR_INTERP_H
#define RELC_IR_INTERP_H

#include "ir/Prog.h"
#include "support/Result.h"
#include "support/Rng.h"

#include <functional>
#include <map>
#include <string>

namespace relc {
namespace ir {

/// Variable environment.
using Env = std::map<std::string, Value>;

/// The effect context threading extensional effects through evaluation.
struct EffectCtx {
  Rng Nondet{0x5eed};              ///< Oracle for nondet alloc/peek.
  std::vector<uint64_t> InputTape; ///< Consumed by IoRead (zeros when empty).
  size_t NextInput = 0;
  std::vector<uint64_t> Output;    ///< IoWrite / WriterTell accumulator.

  /// Ordered effect log for trace comparison: ('r', value-read) and
  /// ('w', value-written) entries in program order.
  std::vector<std::pair<char, uint64_t>> IoLog;

  /// Source-level meaning of external calls: maps (callee, scalar args) to
  /// scalar results. Wired up by the validator to the callee's own model.
  std::function<Result<std::vector<Value>>(const std::string &,
                                           const std::vector<Value> &)>
      ExternSem;
};

/// Evaluation options.
struct EvalOptions {
  uint64_t Fuel = 100'000'000; ///< Max binding evaluations.
};

class Evaluator {
public:
  Evaluator(const SourceFn &Fn, EffectCtx &Ctx, EvalOptions Opts = {})
      : Fn(Fn), Ctx(Ctx), FuelLeft(Opts.Fuel) {}

  /// Evaluates a pure expression under \p E.
  Result<Value> evalExpr(const Env &E, const Expr &Ex);

  /// Evaluates a program under \p E; returns the values of its return tuple.
  Result<std::vector<Value>> evalProg(const Env &E, const Prog &P);

private:
  const SourceFn &Fn;
  EffectCtx &Ctx;
  uint64_t FuelLeft;

  Result<Value> evalBound(Env &E, const Binding &B);
  Status bindResults(Env &E, const Binding &B, Value V);
};

/// Evaluates \p Fn applied to \p Args (one Value per parameter, in order),
/// against effect context \p Ctx. Returns the tuple of results.
Result<std::vector<Value>> evalFn(const SourceFn &Fn,
                                  const std::vector<Value> &Args,
                                  EffectCtx &Ctx, EvalOptions Opts = {});

} // namespace ir
} // namespace relc

#endif // RELC_IR_INTERP_H
