//===- cert/Reader.h - Certificate parsing (v2 + v1 compat) -----*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Parses certificates back into the typed `cert::Certificate`. Two
// accepted inputs:
//
//   - v2 files ("schema_version": 2), the canonical Writer output — but
//     parsing is a real (minimal, recursive-descent) JSON parse, not a
//     byte comparison, so hand-edited or re-serialized files load too;
//   - legacy v1 files ("format": "relc-tv-certificate-v1"), which the TV
//     driver used to assemble by hand: readable for diffing and display,
//     but carrying no content hashes or witnesses (Key stays zero and the
//     checker rejects them as unverifiable-v1).
//
// A "schema_version" above kSchemaVersion is *not* malformed — it is a
// file from a future toolchain, reported distinctly (UnknownSchemaVersion)
// so operators can tell "upgrade relc-check" from "corrupt artifact".
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CERT_READER_H
#define RELC_CERT_READER_H

#include "cert/Cert.h"

#include <optional>

namespace relc {
namespace cert {

/// Why a parse failed, in checker vocabulary (only ever
/// MalformedCertificate, UnknownSchemaVersion, or — for readFile —
/// MissingCertificate).
struct ReadError {
  Reject Why = Reject::MalformedCertificate;
  std::string Detail;
};

class Reader {
public:
  /// Parses \p Text as a v2 or v1 certificate.
  static std::optional<Certificate> parse(const std::string &Text,
                                          ReadError *Err = nullptr);

  /// Reads and parses \p Path (MissingCertificate if unreadable).
  static std::optional<Certificate> readFile(const std::string &Path,
                                             ReadError *Err = nullptr);
};

} // namespace cert
} // namespace relc

#endif // RELC_CERT_READER_H
