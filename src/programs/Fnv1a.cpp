//===- programs/Fnv1a.cpp - Fowler–Noll–Vo hash -----------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

using namespace ir;

ProgramDef makeFnv1a() {
  ProgramDef P;
  P.Name = "fnv1a";
  P.Description = "Fowler-Noll-Vo (noncryptographic) hash";
  P.SourceFile = "src/programs/Fnv1a.cpp";
  P.EndToEnd = true;

  // RELC-SECTION-BEGIN: program-fnv1a-source
  // fnv1a' := fun s => let/n h := fold_left
  //             (fun h b => (h ^ b2w b) * 0x100000001b3) s
  //             0xcbf29ce484222325 in h
  FnBuilder FB("fnv1a_model", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder Body;
  Body.let("h", mkFold("s", "h", "b", cw(0xcbf29ce484222325ull),
                       mulw(xorw(v("h"), b2w(v("b"))), cw(0x100000001b3ull))));
  P.Model = std::move(FB).done(std::move(Body).ret({"h"}));
  // RELC-SECTION-END: program-fnv1a-source

  P.Spec = sep::FnSpec("fnv1a");
  P.Spec.arrayArg("s").lenArg("len", "s").retScalar("h");

  return P;
}

} // namespace programs
} // namespace relc
