//===- pipeline/Scheduler.h - Dependency-aware job scheduler ----*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A small dependency-aware job graph executed by a fixed-size thread pool
// with work stealing. This is the engine under the parallel certification
// pipeline (pipeline/Pipeline.h): per program, compile -> {derivation
// replay, static analysis, translation validation} -> differential
// certification, where the three middle layers are independent once the
// code is emitted — per-function certification is embarrassingly parallel,
// exactly as in CompCert-style pipelines.
//
// Design rules, chosen so parallel runs are *reproducible*:
//
//   - The graph is built up front and immutable during execution. Every
//     dependency must name an already-added job, so submission order is a
//     topological order.
//
//   - With Jobs == 1 the scheduler runs no threads at all: jobs execute
//     inline, in submission order, on the calling thread. This preserves
//     the pre-pipeline serial behavior bit for bit and is the reference
//     semantics parallel runs are diffed against.
//
//   - Jobs communicate only through their captured state (per-job result
//     slots owned by the graph's builder); the scheduler itself never
//     routes data. Diagnostics are therefore buffered per job and flushed
//     by the caller in deterministic order, never printed from workers.
//
//   - A job that throws is caught and recorded; its dependents are marked
//     skipped (they never run) but independent jobs keep executing — one
//     program's defect must not poison or block sibling programs.
//
// Work stealing: each worker owns a deque, pushes newly-ready jobs to its
// own back, pops from its own back (LIFO, cache-friendly), and steals from
// a victim's front (FIFO, oldest first) when empty. With the job counts at
// hand (tens of jobs, milliseconds each) a mutex per deque is faster than
// a lock-free Chase-Lev deque would be worth; contention is negligible.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_PIPELINE_SCHEDULER_H
#define RELC_PIPELINE_SCHEDULER_H

#include "support/Result.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace relc {
namespace pipeline {

using JobId = uint32_t;
constexpr JobId NoJob = ~JobId(0);

/// Outcome of one executed graph, per job.
enum class JobState : uint8_t {
  NotRun,  ///< Never executed (dependency failed or threw).
  Done,    ///< Ran to completion.
  Threw,   ///< Work threw; dependents were skipped.
};

/// Resolves a user-requested thread count to an executable one:
/// 0 means "use the hardware" (std::thread::hardware_concurrency()), with
/// a serial fallback when the hardware cannot be queried; everything is
/// clamped to [1, 64]. \p Note, when non-null, receives a human-readable
/// explanation whenever the resolved count differs from the request
/// (relc-gen prints it so `-j 0` is never a silent surprise).
unsigned resolveJobs(unsigned Requested, std::string *Note = nullptr);

class JobGraph {
public:
  /// Adds a job. Every id in \p Deps must have been returned by an earlier
  /// add() call (so submission order is topological). Returns the job's id.
  JobId add(std::string Name, std::function<void()> Work,
            std::vector<JobId> Deps = {});

  size_t size() const { return Jobs.size(); }

  /// Executes the graph on \p NumThreads workers (resolved via
  /// resolveJobs: 0 = hardware concurrency, clamped to [1, 64]).
  /// NumThreads == 1 runs every job inline in submission order. Returns
  /// failure iff any job threw or was skipped; the error names them in
  /// submission order (deterministic regardless of thread count).
  Status run(unsigned NumThreads);

  /// Post-run inspection (valid after run() returns).
  JobState state(JobId J) const { return Jobs[J].State; }
  const std::string &errorOf(JobId J) const { return Jobs[J].ErrorText; }

private:
  struct Job {
    std::string Name;
    std::function<void()> Work;
    std::vector<JobId> Deps;
    std::vector<JobId> Dependents;
    unsigned PendingDeps = 0;
    JobState State = JobState::NotRun;
    std::string ErrorText; ///< What the job threw, if it threw.
  };
  std::vector<Job> Jobs;

  void runSerial();
  void runParallel(unsigned NumThreads);
  Status summarize() const;
};

} // namespace pipeline
} // namespace relc

#endif // RELC_PIPELINE_SCHEDULER_H
