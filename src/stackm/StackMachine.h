//===- stackm/StackMachine.h - The §2 demonstration pair -------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Section 2 of the paper develops relational compilation on a miniature pair
// of languages: S, arithmetic expressions (constants and addition), and T, a
// stack machine (push / pop-add). This module reproduces the whole §2 story:
//
//  - language definitions and semantics (§2.1),
//  - the traditional functional compiler StoT with its correctness statement
//    checked extensionally (§2.1),
//  - the relational compiler: a set of *rule* objects, each the analogue of
//    one correctness lemma (StoT_RInt, StoT_RAdd), driven by proof search
//    that produces a target program *and* a Derivation witness (§2.2),
//  - open-ended extension: new rules (e.g. multiplication, constant folding)
//    can be registered without touching existing ones (§2.3),
//  - a derivation checker that replays the witness: the stand-in for Coq's
//    kernel accepting the proof term.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_STACKM_STACKMACHINE_H
#define RELC_STACKM_STACKMACHINE_H

#include "support/Casting.h"
#include "support/Result.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace relc {
namespace stackm {

//===----------------------------------------------------------------------===//
// Language S: arithmetic expressions.
//===----------------------------------------------------------------------===//

/// Base class for S expressions. Kind-discriminated, LLVM-style.
class SExpr {
public:
  enum class Kind { Int, Add, Mul };

  explicit SExpr(Kind K) : TheKind(K) {}
  virtual ~SExpr() = default;

  Kind kind() const { return TheKind; }

  /// Structural pretty-printing, e.g. "(3 + (4 * 5))".
  virtual std::string str() const = 0;

private:
  Kind TheKind;
};

using SExprPtr = std::shared_ptr<const SExpr>;

/// Integer literal: SInt z.
class SInt : public SExpr {
public:
  explicit SInt(int64_t Value) : SExpr(Kind::Int), Value(Value) {}

  int64_t value() const { return Value; }
  std::string str() const override { return std::to_string(Value); }

  static bool classof(const SExpr *E) { return E->kind() == Kind::Int; }

private:
  int64_t Value;
};

/// Addition: SAdd s1 s2.
class SAdd : public SExpr {
public:
  SAdd(SExprPtr Lhs, SExprPtr Rhs)
      : SExpr(Kind::Add), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  const SExpr *lhs() const { return Lhs.get(); }
  const SExpr *rhs() const { return Rhs.get(); }
  SExprPtr lhsPtr() const { return Lhs; }
  SExprPtr rhsPtr() const { return Rhs; }
  std::string str() const override {
    return "(" + Lhs->str() + " + " + Rhs->str() + ")";
  }

  static bool classof(const SExpr *E) { return E->kind() == Kind::Add; }

private:
  SExprPtr Lhs, Rhs;
};

/// Multiplication: not part of the base language; used to demonstrate
/// open-ended extension (§2.3) — the base rule set cannot compile it until a
/// user registers a rule for it.
class SMul : public SExpr {
public:
  SMul(SExprPtr Lhs, SExprPtr Rhs)
      : SExpr(Kind::Mul), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  const SExpr *lhs() const { return Lhs.get(); }
  const SExpr *rhs() const { return Rhs.get(); }
  SExprPtr lhsPtr() const { return Lhs; }
  SExprPtr rhsPtr() const { return Rhs; }
  std::string str() const override {
    return "(" + Lhs->str() + " * " + Rhs->str() + ")";
  }

  static bool classof(const SExpr *E) { return E->kind() == Kind::Mul; }

private:
  SExprPtr Lhs, Rhs;
};

/// Convenience constructors.
SExprPtr sInt(int64_t Value);
SExprPtr sAdd(SExprPtr Lhs, SExprPtr Rhs);
SExprPtr sMul(SExprPtr Lhs, SExprPtr Rhs);

/// 𝜎S: denotational semantics of S.
int64_t evalS(const SExpr &E);

//===----------------------------------------------------------------------===//
// Language T: a stack machine.
//===----------------------------------------------------------------------===//

/// One stack operation.
struct TOp {
  enum class Kind { Push, PopAdd, PopMul };
  Kind TheKind;
  int64_t Imm = 0; // Only meaningful for Push.

  static TOp push(int64_t Imm) { return {Kind::Push, Imm}; }
  static TOp popAdd() { return {Kind::PopAdd, 0}; }
  static TOp popMul() { return {Kind::PopMul, 0}; }

  bool operator==(const TOp &O) const {
    return TheKind == O.TheKind && (TheKind != Kind::Push || Imm == O.Imm);
  }

  std::string str() const;
};

/// A T program is a list of operations.
using TProgram = std::vector<TOp>;

std::string str(const TProgram &P);

/// 𝜎T: runs \p P on \p Stack. Following the paper, invalid pops are no-ops
/// (the semantics is total). Returns the final stack.
std::vector<int64_t> evalT(const TProgram &P, std::vector<int64_t> Stack);

/// Depth-observing variant: like evalT, but also reports the maximum stack
/// depth reached at any point of the run (including the initial stack) via
/// \p MaxDepth. Tests use it to cross-check codelint's static operand-depth
/// bound against observed behavior.
std::vector<int64_t> evalT(const TProgram &P, std::vector<int64_t> Stack,
                           size_t *MaxDepth);

//===----------------------------------------------------------------------===//
// The traditional verified compiler (§2.1): a function S -> T.
//===----------------------------------------------------------------------===//

/// StoT. Fails (like a partial function) on constructs outside the base
/// language, e.g. SMul.
Result<TProgram> compileStoT(const SExpr &E);

//===----------------------------------------------------------------------===//
// Relational compilation (§2.2–2.3).
//===----------------------------------------------------------------------===//

/// A node in a derivation: one rule application, with the subgoal
/// derivations as children. The "proof term" of §2.2.
struct Derivation {
  std::string RuleName;
  std::string Goal;      ///< Rendered goal "?t ~ <source>".
  TProgram Emitted;      ///< The full target fragment this node certifies.
  SExprPtr Source;       ///< The source subterm this node certifies.
  std::vector<std::unique_ptr<Derivation>> Children;

  /// Pretty-prints the derivation as an indented tree.
  std::string str(unsigned Indent = 0) const;

  /// Counts nodes (rule applications) in the tree.
  unsigned size() const;
};

/// Result of a successful relational compilation: the witness program plus
/// its derivation, mirroring `exist t (proof : t ~ s)`.
struct CompiledS {
  TProgram Program;
  std::unique_ptr<Derivation> Proof;
};

/// A compilation rule: the executable form of one correctness lemma. Given a
/// goal (a source subterm), an applicable rule returns the emitted target
/// fragment and the premises (subgoals); the driver recurses on those.
class SRule {
public:
  virtual ~SRule() = default;

  /// Human-readable lemma name, e.g. "StoT_RAdd".
  virtual std::string name() const = 0;

  /// True iff this rule's conclusion matches \p Goal.
  virtual bool matches(const SExpr &Goal) const = 0;

  /// Subgoals of this rule for \p Goal (the lemma's premises), in order.
  virtual std::vector<SExprPtr> premises(const SExpr &Goal) const = 0;

  /// Assembles the target program from compiled premises. \p Parts has one
  /// entry per premise, in the same order.
  virtual TProgram assemble(const SExpr &Goal,
                            const std::vector<TProgram> &Parts) const = 0;
};

/// An ordered, extensible collection of rules: the hint database of §2.3.
class SRuleSet {
public:
  /// Returns the base rule set {StoT_RInt, StoT_RAdd}.
  static SRuleSet base();

  /// Registers \p Rule with lowest priority (tried after existing rules).
  void add(std::unique_ptr<SRule> Rule);

  /// Registers \p Rule with highest priority (tried before existing rules);
  /// this is how program-specific rewrites shadow generic rules.
  void addFront(std::unique_ptr<SRule> Rule);

  const std::vector<std::unique_ptr<SRule>> &rules() const { return Rules; }

private:
  std::vector<std::unique_ptr<SRule>> Rules;
};

/// Rules corresponding to the paper's lemmas, plus the extension examples.
std::unique_ptr<SRule> makeIntRule();      ///< StoT_RInt
std::unique_ptr<SRule> makeAddRule();      ///< StoT_RAdd
std::unique_ptr<SRule> makeMulRule();      ///< extension: SMul -> PopMul
/// Extension demonstrating a program-specific rewrite: compiles any constant
/// subtree to a single Push of its value (constant folding as a *rule*, not
/// a compiler pass).
std::unique_ptr<SRule> makeConstFoldRule();

/// The proof-search driver (§2.2): finds the first applicable rule for the
/// goal, recurses on its premises, and assembles program + derivation.
/// Unsupported constructs yield an error naming the unsolved goal — the
/// paper's "learn the shape of missing lemmas from the goals printed".
Result<CompiledS> compileRelational(const SRuleSet &Rules, SExprPtr Source);

//===----------------------------------------------------------------------===//
// Derivation replay: the proof checker.
//===----------------------------------------------------------------------===//

/// Independently re-checks a derivation produced by compileRelational:
/// every node must be an instance of a *trusted* rule schema (Int/Add/Mul/
/// ConstFold with its side condition), children must certify the premises,
/// and the assembled program must equal the recorded one. This plays the
/// role of the Coq kernel checking the generated proof term; it does not
/// share code with the search driver.
Status checkDerivation(const Derivation &D);

/// Differential check: evalT(P, stack) == evalS(E) :: stack over a sample of
/// stacks, i.e. the statement `t ~ s` tested extensionally.
Status checkEquivalence(const TProgram &P, const SExpr &E);

} // namespace stackm
} // namespace relc

#endif // RELC_STACKM_STACKMACHINE_H
