# Empty dependencies file for sep_tests.
# This may be replaced when dependencies are built.
