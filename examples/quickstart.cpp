//===- examples/quickstart.cpp - The upstr walkthrough (§3.2) --------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The paper's §3.2 walkthrough, end to end:
//
//   1. write the annotated functional model of upstr (lowered Gallina:
//      a let/n chain over ListArray.map with the toupper' bit trick),
//   2. declare the ABI (the fnspec: pointer + length, updated in place),
//   3. run the relational compiler — proof search over the rule library —
//      getting a Bedrock2-like function *and* a derivation witness,
//   4. replay the witness and differentially certify against the model,
//   5. pretty-print to C, and run the target semantics on a sample.
//
// Build and run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "cgen/CEmit.h"
#include "core/Compiler.h"
#include "ir/Build.h"
#include "validate/Validate.h"

#include <cstdio>

using namespace relc;
using namespace relc::ir;

int main() {
  // 1. The functional model. The name reuse in `let/n s := map ... s`
  //    tells the compiler to mutate the array in place.
  ExprPtr B = b2w(v("b"));
  ExprPtr Toupper =
      w2b(select(ltu(subw(B, cw('a')), cw(26)), andw(B, cw(0x5f)), B));
  FnBuilder FB("upstr_model", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder Body;
  Body.let("s", mkMap("s", "b", Toupper));
  SourceFn Model = std::move(FB).done(std::move(Body).ret({"s"}));

  std::printf("=== functional model ===\n%s\n", Model.str().c_str());

  // 2. The ABI: how the low-level program is called (§3.2's fnspec).
  sep::FnSpec Spec("upstr");
  Spec.arrayArg("s").lenArg("len", "s").retInPlace("s");
  std::printf("=== fnspec ===\n%s\n", Spec.str().c_str());

  // 3. Relational compilation.
  core::Compiler Compiler;
  Result<core::CompileResult> R = Compiler.compileFn(Model, Spec);
  if (!R) {
    std::fprintf(stderr, "compilation failed:\n%s\n",
                 R.error().str().c_str());
    return 1;
  }
  std::printf("=== derived Bedrock2 function ===\n%s\n",
              R->Fn.str().c_str());
  std::printf("=== derivation witness (%u rule applications) ===\n%s\n",
              R->Proof->size(), R->Proof->str().c_str());

  // 4. Certification: derivation replay + differential testing.
  bedrock::Module Linked;
  Linked.Functions.push_back(R->Fn);
  Status V = validate::validate(Model, Spec, *R, Linked);
  if (!V) {
    std::fprintf(stderr, "validation failed:\n%s\n", V.error().str().c_str());
    return 1;
  }
  std::printf("=== validation: witness replayed, %s differentially "
              "certified ===\n\n",
              Spec.TargetName.c_str());

  // 5. C output.
  Result<std::string> C = cgen::emitFunction(R->Fn);
  std::printf("=== pretty-printed C ===\n%s%s\n", cgen::cPrelude().c_str(),
              C ? C->c_str() : C.error().str().c_str());

  // And a run of the target semantics on a sample string.
  const char *Sample = "hello, Rupicola!";
  bedrock::State St;
  std::vector<uint8_t> Bytes(Sample, Sample + 16);
  bedrock::Word Base = St.Mem.alloc(Bytes.size());
  (void)St.Mem.fill(Base, Bytes);
  bedrock::TapeEnv Env;
  bedrock::Interp Interp(Linked, Env);
  Result<std::vector<bedrock::Word>> Rets =
      Interp.callFunction(St, "upstr", {Base, Bytes.size()});
  if (!Rets) {
    std::fprintf(stderr, "target run failed: %s\n",
                 Rets.error().str().c_str());
    return 1;
  }
  Result<std::vector<uint8_t>> Out = St.Mem.read(Base, Bytes.size());
  std::printf("=== target semantics ===\n\"%s\" -> \"%.*s\"\n", Sample,
              int(Out->size()), reinterpret_cast<const char *>(Out->data()));
  return 0;
}
