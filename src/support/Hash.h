//===- support/Hash.h - Shared content-hash primitives ----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The one home for the FNV-1a/64 string hash, its word-at-a-time variant,
// and the Murmur3 finalizer mix that used to be copied into pipeline/Hash,
// cert's content keys, and support/Fault. Everything content-addressed in
// relc — the certificate cache key, the rule-registry fingerprint, fault
// targeting — chains through these. None of them is a trust boundary
// (DESIGN.md §4.5): a collision can at worst reuse a verdict for inputs
// that still get recompiled and re-emitted every run.
//
// Lives in support so every layer (support has no intra-project
// dependencies) can share one definition. (A pipeline/Hash.h forwarder
// re-exported these names for one release; it is gone — include this
// header and use the hash:: spellings.)
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_HASH_H
#define RELC_SUPPORT_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

namespace relc {
namespace hash {

/// FNV-1a over \p S, continuing from \p H (chainable).
uint64_t fnv1a64(std::string_view S, uint64_t H = 0xcbf29ce484222325ULL);

/// One FNV-1a step over a full 64-bit word (not byte-wise): used where the
/// input is itself a hash. The TV driver and the independent rederiver
/// both derive per-binding trace hashes with this exact step, so it must
/// never diverge between them.
uint64_t fnv1a64Word(uint64_t W, uint64_t H = 0xcbf29ce484222325ULL);

/// Murmur3 finalizer. FNV-1a's multiply only carries entropy from low
/// bits upward, so its *high* bits barely avalanche on short keys; mix
/// before consuming the top bits (fault targeting reads the top 53).
uint64_t mix64(uint64_t X);

/// Fixed-width (16 digit) lowercase hex, no prefix — filename-safe and
/// sortable, unlike relc::hexStr's 0x-prefixed variable width.
std::string hex16(uint64_t V);

/// Inverse of hex16 (any-width unprefixed hex, at most 16 digits).
/// Returns false on any non-hex character or empty input.
bool parseHex(std::string_view S, uint64_t *Out);

} // namespace hash
} // namespace relc

#endif // RELC_SUPPORT_HASH_H
