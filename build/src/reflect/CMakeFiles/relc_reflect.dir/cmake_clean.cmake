file(REMOVE_RECURSE
  "CMakeFiles/relc_reflect.dir/ReflectExpr.cpp.o"
  "CMakeFiles/relc_reflect.dir/ReflectExpr.cpp.o.d"
  "librelc_reflect.a"
  "librelc_reflect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_reflect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
