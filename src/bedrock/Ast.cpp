//===- bedrock/Ast.cpp - Bedrock2-like target language AST ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "bedrock/Ast.h"

#include "support/StringExtras.h"

#include <cassert>

namespace relc {
namespace bedrock {

const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::DivU:
    return "/u";
  case BinOp::RemU:
    return "%u";
  case BinOp::And:
    return "&";
  case BinOp::Or:
    return "|";
  case BinOp::Xor:
    return "^";
  case BinOp::Shl:
    return "<<";
  case BinOp::LShr:
    return ">>u";
  case BinOp::AShr:
    return ">>s";
  case BinOp::LtU:
    return "<u";
  case BinOp::LtS:
    return "<s";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  }
  return "?";
}

Word evalBinOp(BinOp Op, Word A, Word B) {
  switch (Op) {
  case BinOp::Add:
    return A + B;
  case BinOp::Sub:
    return A - B;
  case BinOp::Mul:
    return A * B;
  case BinOp::DivU:
    return B == 0 ? ~Word(0) : A / B; // RISC-V convention.
  case BinOp::RemU:
    return B == 0 ? A : A % B; // RISC-V convention.
  case BinOp::And:
    return A & B;
  case BinOp::Or:
    return A | B;
  case BinOp::Xor:
    return A ^ B;
  case BinOp::Shl:
    return A << (B & 63);
  case BinOp::LShr:
    return A >> (B & 63);
  case BinOp::AShr:
    return static_cast<Word>(static_cast<int64_t>(A) >> (B & 63));
  case BinOp::LtU:
    return A < B ? 1 : 0;
  case BinOp::LtS:
    return static_cast<int64_t>(A) < static_cast<int64_t>(B) ? 1 : 0;
  case BinOp::Eq:
    return A == B ? 1 : 0;
  case BinOp::Ne:
    return A != B ? 1 : 0;
  }
  assert(false && "unknown binop");
  return 0;
}

//===----------------------------------------------------------------------===//
// Expression printing.
//===----------------------------------------------------------------------===//

std::string Literal::str() const {
  // Small constants print in decimal, larger ones in hex for readability.
  if (Value < 1024)
    return std::to_string(Value);
  return hexStr(Value);
}

std::string Load::str() const {
  return "load" + std::to_string(unsigned(Size)) + "(" + Addr->str() + ")";
}

std::string TableGet::str() const {
  return "table" + std::to_string(unsigned(Size)) + "(" + Table + ", " +
         Index->str() + ")";
}

std::string Bin::str() const {
  return "(" + Lhs->str() + " " + binOpName(Op) + " " + Rhs->str() + ")";
}

void forEachVar(const Expr &E,
                const std::function<void(const std::string &)> &Fn) {
  switch (E.kind()) {
  case Expr::Kind::Literal:
    return;
  case Expr::Kind::Var:
    Fn(cast<Var>(&E)->name());
    return;
  case Expr::Kind::Load:
    forEachVar(*cast<Load>(&E)->addr(), Fn);
    return;
  case Expr::Kind::TableGet:
    forEachVar(*cast<TableGet>(&E)->index(), Fn);
    return;
  case Expr::Kind::Bin:
    forEachVar(*cast<Bin>(&E)->lhs(), Fn);
    forEachVar(*cast<Bin>(&E)->rhs(), Fn);
    return;
  }
}

ExprPtr lit(Word Value) { return std::make_shared<Literal>(Value); }
ExprPtr var(std::string Name) { return std::make_shared<Var>(std::move(Name)); }
ExprPtr load(AccessSize Size, ExprPtr Addr) {
  return std::make_shared<Load>(Size, std::move(Addr));
}
ExprPtr tableGet(AccessSize Size, std::string Table, ExprPtr Index) {
  return std::make_shared<TableGet>(Size, std::move(Table), std::move(Index));
}
ExprPtr bin(BinOp Op, ExprPtr Lhs, ExprPtr Rhs) {
  return std::make_shared<Bin>(Op, std::move(Lhs), std::move(Rhs));
}
ExprPtr add(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Add, std::move(L), std::move(R));
}
ExprPtr sub(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Sub, std::move(L), std::move(R));
}
ExprPtr mul(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Mul, std::move(L), std::move(R));
}

//===----------------------------------------------------------------------===//
// Command printing.
//===----------------------------------------------------------------------===//

static std::string pad(unsigned Indent) { return std::string(Indent, ' '); }

std::string Skip::str(unsigned Indent) const {
  return pad(Indent) + "/*skip*/\n";
}

std::string Set::str(unsigned Indent) const {
  return pad(Indent) + Name + " = " + Value->str() + "\n";
}

std::string Unset::str(unsigned Indent) const {
  return pad(Indent) + "unset " + Name + "\n";
}

std::string Store::str(unsigned Indent) const {
  return pad(Indent) + "store" + std::to_string(unsigned(Size)) + "(" +
         Addr->str() + ") = " + Value->str() + "\n";
}

std::string Seq::str(unsigned Indent) const {
  return First->str(Indent) + Second->str(Indent);
}

std::string If::str(unsigned Indent) const {
  std::string Out = pad(Indent) + "if (" + Cond->str() + ") {\n";
  Out += Then->str(Indent + 2);
  if (!isa<Skip>(Else.get())) {
    Out += pad(Indent) + "} else {\n";
    Out += Else->str(Indent + 2);
  }
  Out += pad(Indent) + "}\n";
  return Out;
}

std::string While::str(unsigned Indent) const {
  std::string Out = pad(Indent) + "while (" + Cond->str() + ") {\n";
  Out += Body->str(Indent + 2);
  Out += pad(Indent) + "}\n";
  return Out;
}

std::string Call::str(unsigned Indent) const {
  std::vector<std::string> ArgStrs;
  for (const ExprPtr &A : Args)
    ArgStrs.push_back(A->str());
  std::string Out = pad(Indent);
  if (!Rets.empty())
    Out += join(Rets, ", ") + " = ";
  Out += Callee + "(" + join(ArgStrs, ", ") + ")\n";
  return Out;
}

std::string Stackalloc::str(unsigned Indent) const {
  std::string Out = pad(Indent) + "stackalloc " + Name + "[" +
                    std::to_string(NumBytes) + "] {\n";
  Out += Body->str(Indent + 2);
  Out += pad(Indent) + "}\n";
  return Out;
}

std::string Interact::str(unsigned Indent) const {
  std::vector<std::string> ArgStrs;
  for (const ExprPtr &A : Args)
    ArgStrs.push_back(A->str());
  std::string Out = pad(Indent);
  if (!Rets.empty())
    Out += join(Rets, ", ") + " = ";
  Out += "external!" + Action + "(" + join(ArgStrs, ", ") + ")\n";
  return Out;
}

CmdPtr skip() { return std::make_shared<Skip>(); }
CmdPtr set(std::string Name, ExprPtr Value) {
  return std::make_shared<Set>(std::move(Name), std::move(Value));
}
CmdPtr unset(std::string Name) {
  return std::make_shared<Unset>(std::move(Name));
}
CmdPtr store(AccessSize Size, ExprPtr Addr, ExprPtr Value) {
  return std::make_shared<Store>(Size, std::move(Addr), std::move(Value));
}
CmdPtr seq(CmdPtr First, CmdPtr Second) {
  return std::make_shared<Seq>(std::move(First), std::move(Second));
}
CmdPtr seqAll(std::vector<CmdPtr> Cmds) {
  if (Cmds.empty())
    return skip();
  CmdPtr Out = Cmds.back();
  for (size_t I = Cmds.size() - 1; I-- > 0;)
    Out = seq(Cmds[I], Out);
  return Out;
}
CmdPtr ifThenElse(ExprPtr Cond, CmdPtr Then, CmdPtr Else) {
  return std::make_shared<If>(std::move(Cond), std::move(Then),
                              std::move(Else));
}
CmdPtr whileLoop(ExprPtr Cond, CmdPtr Body) {
  return std::make_shared<While>(std::move(Cond), std::move(Body));
}
CmdPtr call(std::vector<std::string> Rets, std::string Callee,
            std::vector<ExprPtr> Args) {
  return std::make_shared<Call>(std::move(Rets), std::move(Callee),
                                std::move(Args));
}
CmdPtr stackalloc(std::string Name, Word NumBytes, CmdPtr Body) {
  return std::make_shared<Stackalloc>(std::move(Name), NumBytes,
                                      std::move(Body));
}
CmdPtr interact(std::vector<std::string> Rets, std::string Action,
                std::vector<ExprPtr> Args) {
  return std::make_shared<Interact>(std::move(Rets), std::move(Action),
                                    std::move(Args));
}

//===----------------------------------------------------------------------===//
// Functions and modules.
//===----------------------------------------------------------------------===//

std::string Function::str() const {
  std::string Out = "func " + Name + "(" + join(Args, ", ") + ")";
  if (!Rets.empty())
    Out += " -> (" + join(Rets, ", ") + ")";
  Out += " {\n";
  for (const InlineTable &T : Tables)
    Out += "  table " + T.Name + "[" + std::to_string(T.Elements.size()) +
           " x " + std::to_string(unsigned(T.EltSize)) + "B]\n";
  if (Body)
    Out += Body->str(2);
  Out += "}\n";
  return Out;
}

const InlineTable *Function::findTable(const std::string &TableName) const {
  for (const InlineTable &T : Tables)
    if (T.Name == TableName)
      return &T;
  return nullptr;
}

const Function *Module::find(const std::string &Name) const {
  for (const Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

std::string Module::str() const {
  std::string Out;
  for (const Function &F : Functions)
    Out += F.str() + "\n";
  return Out;
}

} // namespace bedrock
} // namespace relc
