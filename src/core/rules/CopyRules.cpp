//===- core/rules/CopyRules.cpp - Explicit duplication (§3.4.1) ------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"
#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

using bedrock::CmdPtr;
using sep::HeapClause;
using sep::SymVal;
using sep::TargetSlot;
using solver::lc;

namespace {

// RELC-SECTION-BEGIN: lemma-copy
/// compile_copy: `let/n t := copy a` — the §3.4.1 escape hatch from
/// name-directed mutation: instead of updating `a` in place, later code
/// works on a fresh duplicate bound to `t`. The duplicate lives in a
/// stack allocation scoped to the rest of the function, so the source
/// array must have a *statically known* length (stack blocks are
/// compile-time sized in Bedrock2); copying an argument array of symbolic
/// length is an unsolved goal directing the user to the in-place lemmas.
class CopyRule : public StmtRule {
public:
  std::string name() const override { return "compile_copy"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::CopyArr};
    P.NameDir = GoalPattern::NameDirection::Fresh;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::CopyArr>(B.Bound.get()) && B.Names.size() == 1;
  }

  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *C = cast<ir::CopyArr>(B.Bound.get());
    const std::string &Name = B.Names[0];
    if (Name == C->array())
      return Error("unsolved goal: `copy` bound back to '" + Name +
                   "' is the identity; bind it to a fresh name");
    if (Ctx.State.Locals.count(Name))
      return Error("copy binding '" + Name +
                   "' collides with a live local; rename it");

    Result<int> SrcIdx =
        Ctx.requireClause(C->array(), HeapClause::Kind::Array);
    if (!SrcIdx)
      return SrcIdx.takeError();
    const HeapClause Src = Ctx.State.Heap[*SrcIdx];
    Result<std::string> SrcPtr = Ctx.requirePtrLocal(*SrcIdx);
    if (!SrcPtr)
      return SrcPtr.takeError();

    if (!Src.Len.isConstant())
      return Error("unsolved goal: copy of '" + C->array() +
                   "' needs a statically sized source (its length is " +
                   Src.Len.str() + "); stack buffers copy, argument arrays "
                   "mutate in place or go through an output argument");
    int64_t Len = Src.Len.constPart();
    uint64_t Bytes = uint64_t(Len) * ir::eltSize(Src.Elt);
    if (Bytes > 4096)
      return Error("copy of " + std::to_string(Bytes) +
                   " bytes exceeds the 4096-byte stack policy limit");
    D.SideConds.push_back("length " + C->array() + " = " +
                          std::to_string(Len) + " (static)");

    // Fresh clause + pointer local for the duplicate.
    std::string PtrSym = Ctx.State.freshSym("cpy_" + Name);
    HeapClause Dst = Src;
    Dst.Ptr = PtrSym;
    Dst.Payload = Name;
    Dst.FromStack = true;
    Ctx.State.Heap.push_back(Dst);
    Ctx.State.Locals[Name] =
        TargetSlot::ptr(SymVal::sym(PtrSym), int(Ctx.State.Heap.size()) - 1);

    // Copy loop: whole words, then the byte tail.
    std::vector<CmdPtr> Inner;
    uint64_t I = 0;
    for (; I + 8 <= Bytes; I += 8)
      Inner.push_back(bedrock::store(
          bedrock::AccessSize::Eight,
          bedrock::add(bedrock::var(Name), bedrock::lit(I)),
          bedrock::load(bedrock::AccessSize::Eight,
                        bedrock::add(bedrock::var(*SrcPtr),
                                     bedrock::lit(I)))));
    for (; I < Bytes; ++I)
      Inner.push_back(bedrock::store(
          bedrock::AccessSize::Byte,
          bedrock::add(bedrock::var(Name), bedrock::lit(I)),
          bedrock::load(bedrock::AccessSize::Byte,
                        bedrock::add(bedrock::var(*SrcPtr),
                                     bedrock::lit(I)))));

    Ctx.noteFeature("Mutation");
    Ctx.noteFeature("Arrays");

    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Inner.push_back(Rest.take());

    if (Ctx.State.Heap.empty() || Ctx.State.Heap.back().Ptr != PtrSym)
      return Error("copy scope for '" + Name +
                   "' ended with a non-LIFO heap shape");
    Ctx.State.Heap.pop_back();
    Ctx.State.Locals.erase(Name);

    return bedrock::stackalloc(Name, Bytes,
                               bedrock::seqAll(std::move(Inner)));
  }
};
// RELC-SECTION-END: lemma-copy

} // namespace

std::unique_ptr<StmtRule> makeCopyRule() {
  return std::make_unique<CopyRule>();
}

} // namespace core
} // namespace relc
