//===- ir/Check.h - FunLang well-formedness and typing ---------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Static checks on source models before compilation: scoping, a simple
// monomorphic type discipline (word / byte / bool / list<elt> / cell), and
// the monad discipline (which effectful primitives are legal under which
// ambient monad, §3.4.1). Models that fail these checks are rejected with a
// source-level diagnostic before any compilation rule runs.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_IR_CHECK_H
#define RELC_IR_CHECK_H

#include "ir/Prog.h"
#include "support/Result.h"

#include <map>

namespace relc {
namespace ir {

/// The type of a bound name.
struct VType {
  enum class Kind { Scalar, List, Cell, Unit };
  Kind TheKind = Kind::Unit;
  Ty ScalarTy = Ty::Word;   ///< For Kind::Scalar.
  EltKind Elt = EltKind::U8; ///< For Kind::List.

  static VType scalar(Ty T) { return {Kind::Scalar, T, EltKind::U8}; }
  static VType list(EltKind E) { return {Kind::List, Ty::Word, E}; }
  static VType cell() { return {Kind::Cell, Ty::Word, EltKind::U64}; }
  static VType unit() { return {Kind::Unit, Ty::Word, EltKind::U8}; }

  bool operator==(const VType &O) const {
    if (TheKind != O.TheKind)
      return false;
    if (TheKind == Kind::Scalar)
      return ScalarTy == O.ScalarTy;
    if (TheKind == Kind::List)
      return Elt == O.Elt;
    return true;
  }

  std::string str() const;
};

using TypeEnv = std::map<std::string, VType>;

/// Type-checks expression \p E under \p Env (tables come from \p Fn).
Result<VType> checkExpr(const SourceFn &Fn, const TypeEnv &Env, const Expr &E);

/// Checks the whole function: scoping, types, monad discipline, loop-body
/// arities. On success returns the types of the returned values.
Result<std::vector<VType>> checkFn(const SourceFn &Fn);

} // namespace ir
} // namespace relc

#endif // RELC_IR_CHECK_H
