//===- core/Compiler.h - The relational compilation driver -----*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The proof-search driver. A compilation goal is the paper's judgment
// {t; m; l; σ} ?c {pred p}: symbolic state (sep::CompState) plus the
// remaining source program p. The driver walks the let-chain; for each
// binding it selects the first matching rule from the hint database and
// lets it emit code, transform the state, and continue. No backtracking:
// either compilation succeeds with a Bedrock2 function and a Derivation
// witness, or it stops with the printed unsolved goal (§3.1).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CORE_COMPILER_H
#define RELC_CORE_COMPILER_H

#include "bedrock/Ast.h"
#include "core/Derivation.h"
#include "core/ExprCompile.h"
#include "core/Rule.h"
#include "ir/Prog.h"
#include "sep/Spec.h"
#include "sep/State.h"
#include "support/Result.h"

#include <map>
#include <set>

namespace relc {
namespace core {

/// Extra ingredients a program plugs into its compilation (§3.2's "hints"):
/// entry facts (incidental properties proven at the source level) and
/// program-specific rules are registered through the Compiler before
/// calling compileFn.
struct CompileHints {
  /// Each provider adds facts about the entry symbols to the fact database
  /// (symbols are named after parameters: a scalar parameter x is symbol
  /// "x", the length of list parameter s is "len_s").
  std::vector<std::function<void(sep::CompState &)>> EntryFacts;
};

/// Everything a successful compilation produces.
struct CompileResult {
  bedrock::Function Fn;
  std::unique_ptr<DerivNode> Proof;

  /// Which rule families fired — the Table 2 feature matrix, computed from
  /// the derivation rather than hand-declared.
  std::set<std::string> Features;

  /// Functions this one calls (must be linked into the final module).
  std::set<std::string> ExternalCallees;

  unsigned SourceBindings = 0;
  unsigned EmittedStmts = 0;
};

/// The compilation context: symbolic state plus everything rules need.
/// One context lives for the duration of one compileFn run.
class CompileCtx {
public:
  CompileCtx(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
             const RuleSet &Rules);

  sep::CompState State;

  const ir::SourceFn &srcFn() const { return SrcFn; }
  const sep::FnSpec &spec() const { return Spec; }
  const RuleSet &ruleSet() const { return Rules; }
  ExprCompiler &exprs() { return Exprs; }

  /// End handler: runs when a (sub)program's bindings are exhausted, to
  /// process its returns.
  using EndHandler =
      std::function<Result<bedrock::CmdPtr>(CompileCtx &, DerivNode &)>;

  /// Compiles program \p P under the current state: each binding through
  /// the rule set, then \p End for the returns.
  Result<bedrock::CmdPtr> compileProg(const ir::Prog &P, const EndHandler &End,
                                      DerivNode &D);

  //===--------------------------------------------------------------------===//
  // Helpers shared by rules.
  //===--------------------------------------------------------------------===//

  /// The heap clause holding source value \p Name, or an unsolved-goal
  /// error describing the missing memory fact.
  Result<int> requireClause(const std::string &Name,
                            sep::HeapClause::Kind Kind) const;

  /// The local holding a pointer to clause \p ClauseIdx.
  Result<std::string> requirePtrLocal(int ClauseIdx) const;

  /// A local whose value provably equals \p Len (for loop bounds).
  Result<std::string> requireLenLocal(const solver::LinTerm &Len) const;

  /// Checks that the names bound at the top level of \p P (a loop or
  /// branch body) do not collide with current locals, except \p Allowed.
  Status checkNoCollisions(const ir::Prog &P,
                           const std::set<std::string> &Allowed) const;

  /// Marks a Table 2 feature family as used (Arithmetic, Arrays, Loops,
  /// Mutation, Inline, ...).
  void noteFeature(const std::string &Family) { Features.insert(Family); }

  /// Marks an inline table as referenced so it is attached to the emitted
  /// function.
  Status noteTableUse(const std::string &TableName);

  void noteExternalCallee(const std::string &Callee) {
    ExternalCallees.insert(Callee);
  }

  /// Renders the current judgment {t; m; l; σ} ?c {pred <binding>} — shown
  /// on unsolved goals and recorded in derivations.
  std::string judgmentStr(const std::string &GoalText) const;

  // Populated during compilation; harvested by the Compiler.
  std::map<std::string, std::string> ArgPtrSyms; ///< list/cell param -> sym.
  std::set<std::string> UsedTables;
  std::set<std::string> ExternalCallees;
  std::set<std::string> Features;

private:
  const ir::SourceFn &SrcFn;
  const sep::FnSpec &Spec;
  const RuleSet &Rules;
  ExprCompiler Exprs;
};

/// The compiler: a rule set plus the driver.
class Compiler {
public:
  /// Constructs with the standard rule library installed.
  Compiler();

  /// Constructs empty (no rules): useful for demonstrating extension from
  /// a blank slate, as in the §4.1.1 walkthrough.
  struct EmptyTag {};
  explicit Compiler(EmptyTag);

  RuleSet &rules() { return Rules; }

  /// Compiles \p Fn against ABI \p Spec. Runs the source-level checker
  /// first; on success the result carries the target function and the
  /// derivation witness.
  Result<CompileResult> compileFn(const ir::SourceFn &Fn,
                                  const sep::FnSpec &Spec,
                                  const CompileHints &Hints = {});

private:
  RuleSet Rules;
};

} // namespace core
} // namespace relc

#endif // RELC_CORE_COMPILER_H
