//===- core/rules/CondRules.cpp - Multi-target conditionals ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"
#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

using bedrock::CmdPtr;
using sep::TargetSlot;
using solver::lc;

namespace {

// RELC-SECTION-BEGIN: lemma-cond
/// compile_cond: `let/n (xs..) := if c then p1 else p2` — the §3.4.2
/// compare-and-swap shape. Instead of a disjunctive strongest
/// postcondition, the join state abstracts exactly the targets (scalars to
/// fresh symbols, pointers staying at their clauses), so later compilation
/// steps keep matching syntactically against `if t then ... else ...`
/// instantiations recorded in the derivation.
///
/// Comparison-shaped guards contribute branch facts to the solver
/// (a < b in the then branch, b ≤ a in the else branch, and the
/// {≥ 1 / = 0} split for `x != 0`), which is how e.g. the odd-length tail
/// access s[len-1] in the IP checksum proves its bounds.
class IfRule : public StmtRule {
public:
  std::string name() const override { return "compile_cond"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::IfBound};
    P.MinNames = 0;
    P.MaxNames = GoalPattern::kAnyArity;
    P.SideConds = {"branches-realize-targets"};
    P.SubGoals = GoalPattern::Emits::Prog;
    return P;
  }

  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::IfBound>(B.Bound.get());
  }

  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *I = cast<ir::IfBound>(B.Bound.get());
    std::set<std::string> Allowed(B.Names.begin(), B.Names.end());
    Status C1 = Ctx.checkNoCollisions(*I->thenProg(), Allowed);
    if (!C1)
      return C1.takeError();
    Status C2 = Ctx.checkNoCollisions(*I->elseProg(), Allowed);
    if (!C2)
      return C2.takeError();

    // Compile the guard. Comparison guards are compiled operand-wise so
    // that branch facts can name the operands' symbolic values.
    std::vector<CmdPtr> Cmds;
    bedrock::ExprPtr CondE;
    std::optional<sep::SymVal> CmpL, CmpR;
    std::optional<ir::WordOp> CmpOp;
    if (const auto *Cmp = dyn_cast<ir::Bin>(I->cond());
        Cmp && ir::wordOpIsCompare(Cmp->op())) {
      Result<CompiledExpr> L =
          Ctx.exprs().compileTyped(*Cmp->lhs(), ir::Ty::Word, D);
      if (!L)
        return L.takeError().note("in guard");
      Result<CompiledExpr> R =
          Ctx.exprs().compileTyped(*Cmp->rhs(), ir::Ty::Word, D);
      if (!R)
        return R.takeError().note("in guard");
      Cmds = L->Pre;
      Cmds.insert(Cmds.end(), R->Pre.begin(), R->Pre.end());
      CondE = bedrock::bin(lowerWordOp(Cmp->op()), L->E, R->E);
      CmpL = L->Val;
      CmpR = R->Val;
      CmpOp = Cmp->op();
    } else {
      Result<CompiledExpr> C =
          Ctx.exprs().compileTyped(*I->cond(), ir::Ty::Bool, D);
      if (!C)
        return C.takeError().note("in guard");
      Cmds = C->Pre;
      CondE = C->E;
    }

    // Target classification. Fresh scalar targets take their types from
    // the then-branch results (the checker already guarantees the branches
    // agree).
    std::map<std::string, ir::Ty> NewScalarTys;
    for (size_t J = 0; J < B.Names.size(); ++J)
      NewScalarTys[B.Names[J]] = ir::Ty::Word; // Refined after the branch.
    Result<LoopInvariant> Inv = inferInvariant(Ctx, B.Names, NewScalarTys);
    if (!Inv)
      return Inv.takeError();
    D.Notes.push_back("join template: " + Inv->Template);
    D.Notes.push_back("instantiation: targets ↦ if c then p1 else p2");

    StateSnapshot Snap = StateSnapshot::take(Ctx.State);

    auto CompileBranch =
        [&](const ir::Prog &P, bool IsThen,
            DerivNode &BD) -> Result<std::pair<CmdPtr, std::vector<ir::Ty>>> {
      Snap.restore(Ctx.State);
      addBranchFacts(Ctx, CmpOp, CmpL, CmpR, IsThen);
      // Branch-local targets: fresh scalars are typed by what the branch
      // returns, discovered by compiling it.
      Result<CmdPtr> Body = Ctx.compileProg(
          P,
          [&](CompileCtx &C, DerivNode &ED) -> Result<CmdPtr> {
            return branchEnd(C, P, *Inv, ED);
          },
          BD);
      if (!Body)
        return Body.takeError();
      std::vector<ir::Ty> Tys;
      for (const LoopTarget &T : Inv->Targets) {
        if (T.IsPointer) {
          Tys.push_back(ir::Ty::Word);
          continue;
        }
        const TargetSlot *S = Ctx.State.findScalar(T.Name);
        if (!S)
          return Error("branch did not realize target '" + T.Name + "'");
        Tys.push_back(S->ScalarTy);
      }
      return std::make_pair(Body.take(), Tys);
    };

    DerivNode &ThenD = D.child("cond_then", I->thenProg()->str());
    auto Then = CompileBranch(*I->thenProg(), true, ThenD);
    if (!Then)
      return Then.takeError().note("in then branch");
    DerivNode &ElseD = D.child("cond_else", I->elseProg()->str());
    auto Else = CompileBranch(*I->elseProg(), false, ElseD);
    if (!Else)
      return Else.takeError().note("in else branch");
    if (Then->second != Else->second)
      return Error("branches realize targets at different types");

    // Join: restore, then abstract the targets (step 3-4 of §3.4.2) with
    // the branch-derived scalar types.
    Snap.restore(Ctx.State);
    for (size_t J = 0; J < Inv->Targets.size(); ++J)
      if (!Inv->Targets[J].IsPointer)
        Inv->Targets[J].ScalarTy = Then->second[J];
    abstractScalars(Ctx, *Inv, "join");

    Cmds.push_back(bedrock::ifThenElse(CondE, Then->first, Else->first));

    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }

private:
  /// Realizes the branch's returns into the targets, like a loop-body end.
  static Result<CmdPtr> branchEnd(CompileCtx &Ctx, const ir::Prog &P,
                                  const LoopInvariant &Inv, DerivNode &D) {
    return accEndHandler(Inv.Targets, P.returns())(Ctx, D);
  }

  /// Linear branch facts from comparison guards.
  static void addBranchFacts(CompileCtx &Ctx,
                             const std::optional<ir::WordOp> &Op,
                             const std::optional<sep::SymVal> &L,
                             const std::optional<sep::SymVal> &R,
                             bool IsThen) {
    if (!Op)
      return;
    solver::LinTerm A = L->term(), B = R->term();
    switch (*Op) {
    case ir::WordOp::LtU:
      if (IsThen)
        Ctx.State.Facts.addLt(A, B, "guard: a < b");
      else
        Ctx.State.Facts.addLe(B, A, "guard: ¬(a < b)");
      break;
    case ir::WordOp::Eq:
      if (IsThen)
        Ctx.State.Facts.addEq(A, B, "guard: a = b");
      break;
    case ir::WordOp::Ne:
      if (IsThen) {
        if (R->IsConst && R->K == 0)
          Ctx.State.Facts.addLe(lc(1), A, "guard: a != 0");
      } else {
        Ctx.State.Facts.addEq(A, B, "guard: ¬(a != b)");
      }
      break;
    default:
      break; // Signed comparisons contribute no unsigned facts.
    }
  }
};
// RELC-SECTION-END: lemma-cond

} // namespace

std::unique_ptr<StmtRule> makeIfRule() { return std::make_unique<IfRule>(); }

} // namespace core
} // namespace relc
