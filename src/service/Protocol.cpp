//===- service/Protocol.cpp - relcd wire schema v1 -------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <cstring>

namespace relc {
namespace service {
namespace wire {

const char *frameStatusReason(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
  case FrameStatus::NeedMore:
    return "";
  case FrameStatus::BadMagic:
    return "bad-magic";
  case FrameStatus::UnknownVersion:
    return "unknown-schema-version";
  case FrameStatus::Oversized:
    return "oversized-frame";
  }
  return "";
}

namespace {

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xFF));
}

void putStr(std::string &Out, const std::string &S) {
  putU32(Out, uint32_t(S.size()));
  Out += S;
}

void putBool(std::string &Out, bool B) { Out.push_back(B ? 1 : 0); }

/// Bounds-checked little-endian cursor; any overrun poisons the cursor
/// (Ok = false), and the caller maps that to "malformed-frame".
struct Cursor {
  std::string_view Buf;
  size_t Pos = 0;
  bool Ok = true;

  bool need(size_t N) {
    if (!Ok || Buf.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return uint8_t(Buf[Pos++]);
  }
  bool boolean() { return u8() != 0; }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(uint8_t(Buf[Pos++])) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= uint64_t(uint8_t(Buf[Pos++])) << (8 * I);
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(Buf.substr(Pos, N));
    Pos += N;
    return S;
  }
  /// The whole payload must be consumed: trailing garbage is malformed,
  /// not ignored — ignoring it would let two different byte strings
  /// decode to the same message.
  bool done() { return Ok && Pos == Buf.size(); }
};

void encodeCertifyRequest(std::string &Out, const CertifyRequest &R) {
  putU32(Out, uint32_t(R.Programs.size()));
  for (const std::string &P : R.Programs)
    putStr(Out, P);
  putBool(Out, R.Validate);
  putBool(Out, R.Analyze);
  putBool(Out, R.Tv);
  putBool(Out, R.Codelint);
  putBool(Out, R.KeepGoing);
  putBool(Out, R.WantCertJson);
  putBool(Out, R.WantCertBin);
  putU32(Out, R.LayerTimeoutMs);
  putU64(Out, R.TvStepBudget);
}

bool decodeCertifyRequest(Cursor &C, CertifyRequest *R) {
  uint32_t N = C.u32();
  // Cap the pre-reserve against a hostile count; actual strings are
  // bounds-checked per element.
  if (N > kMaxFramePayload / 4)
    return false;
  R->Programs.clear();
  for (uint32_t I = 0; I < N && C.Ok; ++I)
    R->Programs.push_back(C.str());
  R->Validate = C.boolean();
  R->Analyze = C.boolean();
  R->Tv = C.boolean();
  R->Codelint = C.boolean();
  R->KeepGoing = C.boolean();
  R->WantCertJson = C.boolean();
  R->WantCertBin = C.boolean();
  R->LayerTimeoutMs = C.u32();
  R->TvStepBudget = C.u64();
  return C.Ok;
}

void encodeCertifyReply(std::string &Out, const CertifyReply &R) {
  Out.push_back(char(R.Exit));
  putU32(Out, uint32_t(R.Programs.size()));
  for (const ProgramResult &P : R.Programs) {
    putStr(Out, P.Name);
    Out.push_back(char(P.Status));
    Out.push_back(char(P.From));
    putStr(Out, P.Error);
    putStr(Out, P.DegradedNote);
    putStr(Out, P.TvVerdict);
    putStr(Out, P.CodelintVerdict);
    putStr(Out, P.CertJson);
    putStr(Out, P.CertBin);
  }
  putU64(Out, R.CacheHits);
  putU64(Out, R.CacheMisses);
  putU64(Out, R.CacheStores);
}

bool decodeCertifyReply(Cursor &C, CertifyReply *R) {
  R->Exit = C.u8();
  uint32_t N = C.u32();
  if (N > kMaxFramePayload / 16)
    return false;
  R->Programs.clear();
  for (uint32_t I = 0; I < N && C.Ok; ++I) {
    ProgramResult P;
    P.Name = C.str();
    P.Status = C.u8();
    P.From = C.u8();
    P.Error = C.str();
    P.DegradedNote = C.str();
    P.TvVerdict = C.str();
    P.CodelintVerdict = C.str();
    P.CertJson = C.str();
    P.CertBin = C.str();
    R->Programs.push_back(std::move(P));
  }
  R->CacheHits = C.u64();
  R->CacheMisses = C.u64();
  R->CacheStores = C.u64();
  return C.Ok;
}

void encodePong(std::string &Out, const Pong &P) {
  putU32(Out, P.ApiVersion);
  putU32(Out, P.SchemaVersion);
  putU64(Out, P.RegistryFingerprint);
  putU64(Out, P.Pid);
}

bool decodePong(Cursor &C, Pong *P) {
  P->ApiVersion = C.u32();
  P->SchemaVersion = C.u32();
  P->RegistryFingerprint = C.u64();
  P->Pid = C.u64();
  return C.Ok;
}

void encodeStats(std::string &Out, const Stats &S) {
  putU64(Out, S.Requests);
  putU64(Out, S.CertifyRequests);
  putU64(Out, S.MemoHits);
  putU64(Out, S.CacheHits);
  putU64(Out, S.CacheMisses);
  putU64(Out, S.CacheStores);
  putU64(Out, S.BusyRejections);
  putU64(Out, S.ProtocolRejections);
  putU64(Out, S.FaultedRequests);
  putU64(Out, S.ActiveConnections);
  putU64(Out, S.Workers);
  putU64(Out, S.WorkerSpawns);
  putU64(Out, S.WorkerRestarts);
  putU64(Out, S.WorkerSpawnFailures);
  putU64(Out, S.WorkerCrashes);
  putU64(Out, S.WorkerOoms);
  putU64(Out, S.WorkerTimeouts);
  putU64(Out, S.WorkerRetries);
  putU64(Out, S.WorkerDegraded);
  putU64(Out, S.Drains);
  putStr(Out, S.CacheDir);
}

bool decodeStats(Cursor &C, Stats *S) {
  S->Requests = C.u64();
  S->CertifyRequests = C.u64();
  S->MemoHits = C.u64();
  S->CacheHits = C.u64();
  S->CacheMisses = C.u64();
  S->CacheStores = C.u64();
  S->BusyRejections = C.u64();
  S->ProtocolRejections = C.u64();
  S->FaultedRequests = C.u64();
  S->ActiveConnections = C.u64();
  S->Workers = C.u64();
  S->WorkerSpawns = C.u64();
  S->WorkerRestarts = C.u64();
  S->WorkerSpawnFailures = C.u64();
  S->WorkerCrashes = C.u64();
  S->WorkerOoms = C.u64();
  S->WorkerTimeouts = C.u64();
  S->WorkerRetries = C.u64();
  S->WorkerDegraded = C.u64();
  S->Drains = C.u64();
  S->CacheDir = C.str();
  return C.Ok;
}

} // namespace

std::string frame(std::string_view Payload) {
  std::string Out;
  Out.reserve(kHeaderSize + Payload.size());
  Out.append(kMagic, sizeof(kMagic));
  putU32(Out, kSchemaVersion);
  putU32(Out, uint32_t(Payload.size()));
  Out += Payload;
  return Out;
}

FrameStatus splitFrame(std::string_view Buf, size_t *FrameSize,
                       std::string_view *Payload) {
  if (Buf.empty())
    return FrameStatus::NeedMore;
  // Reject a wrong magic from the very first byte: a garbage sender
  // learns immediately, not after feeding us 16 bytes.
  size_t MagicLen = std::min(Buf.size(), sizeof(kMagic));
  if (std::memcmp(Buf.data(), kMagic, MagicLen) != 0)
    return FrameStatus::BadMagic;
  if (Buf.size() < kHeaderSize)
    return FrameStatus::NeedMore;
  uint32_t Version = 0, Length = 0;
  for (int I = 0; I < 4; ++I) {
    Version |= uint32_t(uint8_t(Buf[8 + I])) << (8 * I);
    Length |= uint32_t(uint8_t(Buf[12 + I])) << (8 * I);
  }
  if (Version != kSchemaVersion)
    return FrameStatus::UnknownVersion;
  if (Length > kMaxFramePayload)
    return FrameStatus::Oversized;
  if (Buf.size() < kHeaderSize + Length)
    return FrameStatus::NeedMore;
  *FrameSize = kHeaderSize + Length;
  *Payload = Buf.substr(kHeaderSize, Length);
  return FrameStatus::Ok;
}

std::string encode(const Message &M) {
  std::string Out;
  Out.push_back(char(M.TheKind));
  switch (M.TheKind) {
  case Kind::CertifyRequest:
    encodeCertifyRequest(Out, M.Certify);
    break;
  case Kind::CertifyReply:
    encodeCertifyReply(Out, M.Reply);
    break;
  case Kind::PongReply:
    encodePong(Out, M.ThePong);
    break;
  case Kind::StatsReply:
    encodeStats(Out, M.TheStats);
    break;
  case Kind::ErrorReply:
    putStr(Out, M.Error.Reason);
    putStr(Out, M.Error.Detail);
    break;
  case Kind::PingRequest:
  case Kind::StatsRequest:
  case Kind::ShutdownRequest:
  case Kind::ShutdownReply:
    break; // Kind byte only.
  }
  return Out;
}

bool decode(std::string_view Payload, Message *M, std::string *Reason) {
  Cursor C{Payload, 0, true};
  uint8_t KindByte = C.u8();
  if (!C.Ok) {
    *Reason = "malformed-frame";
    return false;
  }
  bool Decoded = false;
  switch (Kind(KindByte)) {
  case Kind::CertifyRequest:
    M->TheKind = Kind::CertifyRequest;
    Decoded = decodeCertifyRequest(C, &M->Certify);
    break;
  case Kind::CertifyReply:
    M->TheKind = Kind::CertifyReply;
    Decoded = decodeCertifyReply(C, &M->Reply);
    break;
  case Kind::PongReply:
    M->TheKind = Kind::PongReply;
    Decoded = decodePong(C, &M->ThePong);
    break;
  case Kind::StatsReply:
    M->TheKind = Kind::StatsReply;
    Decoded = decodeStats(C, &M->TheStats);
    break;
  case Kind::ErrorReply:
    M->TheKind = Kind::ErrorReply;
    M->Error.Reason = C.str();
    M->Error.Detail = C.str();
    Decoded = C.Ok;
    break;
  case Kind::PingRequest:
  case Kind::StatsRequest:
  case Kind::ShutdownRequest:
  case Kind::ShutdownReply:
    M->TheKind = Kind(KindByte);
    Decoded = true;
    break;
  default:
    *Reason = "unknown-request-kind";
    return false;
  }
  if (!Decoded || !C.done()) {
    *Reason = "malformed-frame";
    return false;
  }
  return true;
}

} // namespace wire
} // namespace service
} // namespace relc
