file(REMOVE_RECURSE
  "librelc_support.a"
)
