file(REMOVE_RECURSE
  "CMakeFiles/bedrock_tests.dir/bedrock/InterpTest.cpp.o"
  "CMakeFiles/bedrock_tests.dir/bedrock/InterpTest.cpp.o.d"
  "CMakeFiles/bedrock_tests.dir/bedrock/MemoryTest.cpp.o"
  "CMakeFiles/bedrock_tests.dir/bedrock/MemoryTest.cpp.o.d"
  "CMakeFiles/bedrock_tests.dir/bedrock/VerifyTest.cpp.o"
  "CMakeFiles/bedrock_tests.dir/bedrock/VerifyTest.cpp.o.d"
  "bedrock_tests"
  "bedrock_tests.pdb"
  "bedrock_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bedrock_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
