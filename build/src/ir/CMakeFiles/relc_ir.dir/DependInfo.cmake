
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Build.cpp" "src/ir/CMakeFiles/relc_ir.dir/Build.cpp.o" "gcc" "src/ir/CMakeFiles/relc_ir.dir/Build.cpp.o.d"
  "/root/repo/src/ir/Check.cpp" "src/ir/CMakeFiles/relc_ir.dir/Check.cpp.o" "gcc" "src/ir/CMakeFiles/relc_ir.dir/Check.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/ir/CMakeFiles/relc_ir.dir/Expr.cpp.o" "gcc" "src/ir/CMakeFiles/relc_ir.dir/Expr.cpp.o.d"
  "/root/repo/src/ir/Interp.cpp" "src/ir/CMakeFiles/relc_ir.dir/Interp.cpp.o" "gcc" "src/ir/CMakeFiles/relc_ir.dir/Interp.cpp.o.d"
  "/root/repo/src/ir/Prog.cpp" "src/ir/CMakeFiles/relc_ir.dir/Prog.cpp.o" "gcc" "src/ir/CMakeFiles/relc_ir.dir/Prog.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/ir/CMakeFiles/relc_ir.dir/Value.cpp.o" "gcc" "src/ir/CMakeFiles/relc_ir.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/relc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
