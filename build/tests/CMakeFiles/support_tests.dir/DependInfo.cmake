
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/CastingTest.cpp" "tests/CMakeFiles/support_tests.dir/support/CastingTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/CastingTest.cpp.o.d"
  "/root/repo/tests/support/ResultTest.cpp" "tests/CMakeFiles/support_tests.dir/support/ResultTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/ResultTest.cpp.o.d"
  "/root/repo/tests/support/RngTest.cpp" "tests/CMakeFiles/support_tests.dir/support/RngTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/RngTest.cpp.o.d"
  "/root/repo/tests/support/SectionCountTest.cpp" "tests/CMakeFiles/support_tests.dir/support/SectionCountTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/SectionCountTest.cpp.o.d"
  "/root/repo/tests/support/StringExtrasTest.cpp" "tests/CMakeFiles/support_tests.dir/support/StringExtrasTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/StringExtrasTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/relc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
