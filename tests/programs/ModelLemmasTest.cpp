//===- tests/programs/ModelLemmasTest.cpp - Models vs abstract specs -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The "End-to-End" half of Table 2: each annotated model is checked
// against an independently written abstract specification (the role the
// hand-written Coq proofs play in the paper). The reference
// implementations here are deliberately written in the most direct style,
// sharing no code with the models.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"
#include "programs/Programs.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cctype>

using namespace relc;
using namespace relc::ir;
using namespace relc::programs;

namespace {

/// Runs a model on a byte buffer (with its length parameter filled in).
std::vector<Value> runModel(const ProgramDef &P,
                            const std::vector<uint8_t> &Data) {
  EffectCtx Ctx;
  Result<std::vector<Value>> R = evalFn(
      P.Model, {Value::byteList(Data), Value::word(Data.size())}, Ctx);
  EXPECT_TRUE(bool(R)) << P.Name << ": " << (R ? "" : R.error().str());
  return R ? R.take() : std::vector<Value>{};
}

std::vector<std::vector<uint8_t>> sampleBuffers(size_t MinLen) {
  Rng R(0x5a5a);
  std::vector<std::vector<uint8_t>> Out;
  for (size_t Len : {size_t(0), size_t(1), size_t(2), size_t(3), size_t(7),
                     size_t(64), size_t(255), size_t(1000)}) {
    if (Len < MinLen)
      continue;
    Out.push_back(R.bytes(Len));
  }
  // Adversarial contents.
  if (MinLen <= 16) {
    Out.push_back(std::vector<uint8_t>(16, 0x00));
    Out.push_back(std::vector<uint8_t>(16, 0xff));
  }
  return Out;
}

TEST(ModelLemmasTest, UpstrMatchesToupper) {
  const ProgramDef *P = findProgram("upstr");
  for (const auto &Data : sampleBuffers(0)) {
    std::vector<uint8_t> Want = Data;
    for (uint8_t &B : Want)
      if (B >= 'a' && B <= 'z')
        B = uint8_t(std::toupper(B));
    EXPECT_EQ(runModel(*P, Data)[0].asBytes(), Want);
  }
}

TEST(ModelLemmasTest, Fnv1aMatchesReference) {
  const ProgramDef *P = findProgram("fnv1a");
  for (const auto &Data : sampleBuffers(0)) {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint8_t B : Data) {
      H ^= B;
      H *= 0x100000001b3ull;
    }
    EXPECT_EQ(runModel(*P, Data)[0].asWord(), H);
  }
}

TEST(ModelLemmasTest, Crc32MatchesBitwiseReference) {
  const ProgramDef *P = findProgram("crc32");
  for (const auto &Data : sampleBuffers(0)) {
    // Bitwise (table-free) CRC-32, the de-facto specification.
    uint32_t Crc = 0xffffffffu;
    for (uint8_t B : Data) {
      Crc ^= B;
      for (int K = 0; K < 8; ++K)
        Crc = (Crc & 1) ? 0xEDB88320u ^ (Crc >> 1) : Crc >> 1;
    }
    Crc ^= 0xffffffffu;
    EXPECT_EQ(runModel(*P, Data)[0].asWord(), Crc);
  }
}

TEST(ModelLemmasTest, IpMatchesRfc1071) {
  const ProgramDef *P = findProgram("ip");
  for (const auto &Data : sampleBuffers(0)) {
    uint64_t Sum = 0;
    for (size_t I = 0; I + 1 < Data.size(); I += 2)
      Sum += (uint64_t(Data[I]) << 8) | Data[I + 1];
    if (Data.size() % 2)
      Sum += uint64_t(Data.back()) << 8;
    while (Sum >> 16)
      Sum = (Sum & 0xffff) + (Sum >> 16);
    EXPECT_EQ(runModel(*P, Data)[0].asWord(), uint16_t(~Sum));
  }
}

TEST(ModelLemmasTest, IpChecksumOfChecksummedPacketIsZero) {
  // The defining property of the one's-complement checksum: embedding the
  // checksum makes the total checksum zero.
  const ProgramDef *P = findProgram("ip");
  Rng R(99);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::vector<uint8_t> Packet = R.bytes(20 + 2 * R.below(40));
    Packet[10] = Packet[11] = 0; // Checksum field.
    uint16_t C = uint16_t(runModel(*P, Packet)[0].asWord());
    Packet[10] = uint8_t(C >> 8);
    Packet[11] = uint8_t(C);
    EXPECT_EQ(runModel(*P, Packet)[0].asWord(), 0u);
  }
}

TEST(ModelLemmasTest, FastaMatchesComplementTable) {
  const ProgramDef *P = findProgram("fasta");
  // Complementing twice over pure ACGT is the identity.
  std::vector<uint8_t> Dna = {'A', 'C', 'G', 'T', 'a', 'c', 'g', 't'};
  std::vector<uint8_t> Once = runModel(*P, Dna)[0].asBytes();
  EXPECT_EQ(Once, (std::vector<uint8_t>{'T', 'G', 'C', 'A', 'T', 'G', 'C',
                                        'A'}));
  for (const auto &Data : sampleBuffers(0)) {
    std::vector<uint8_t> Want = Data;
    for (uint8_t &B : Want)
      B = uint8_t(fastaComplementTable()[B]);
    EXPECT_EQ(runModel(*P, Data)[0].asBytes(), Want);
  }
}

/// Independent reference UTF-8 driver (Wellons-style), for the utf8 model.
uint64_t refUtf8(const std::vector<uint8_t> &S) {
  static const uint8_t Lengths[32] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                                      1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0,
                                      0, 0, 2, 2, 2, 2, 3, 3, 4, 0};
  static const uint8_t Masks[5] = {0x00, 0x7f, 0x1f, 0x0f, 0x07};
  static const uint8_t ShiftC[5] = {0, 18, 12, 6, 0};
  static const uint32_t Mins[5] = {4194304, 0, 128, 2048, 65536};
  static const uint8_t ShiftE[5] = {0, 6, 4, 2, 0};
  uint64_t H = 0, E = 0;
  size_t I = 0, N = S.size() - 3;
  while (I < N) {
    uint64_t B0 = S[I], B1 = S[I + 1], B2 = S[I + 2], B3 = S[I + 3];
    uint64_t T = Lengths[B0 >> 3];
    uint64_t Cp = (B0 & Masks[T]) << 18 | (B1 & 0x3f) << 12 |
                  (B2 & 0x3f) << 6 | (B3 & 0x3f);
    Cp >>= ShiftC[T];
    uint64_t Err = uint64_t(Cp < Mins[T]) << 6;
    Err |= uint64_t((Cp >> 11) == 0x1b) << 7;
    Err |= uint64_t(Cp > 0x10FFFF) << 8;
    Err |= (B1 & 0xc0) >> 2;
    Err |= (B2 & 0xc0) >> 4;
    Err |= B3 >> 6;
    Err ^= 0x2a;
    Err >>= ShiftE[T];
    H ^= Cp;
    E |= Err;
    I += T + (T == 0);
  }
  for (size_t J = I; J < S.size(); ++J) {
    H ^= S[J];
    E |= S[J] > 0x7f;
  }
  return ((E & 0xffffffffull) << 32) | (H & 0xffffffffull);
}

TEST(ModelLemmasTest, Utf8MatchesReferenceDriver) {
  const ProgramDef *P = findProgram("utf8");
  for (const auto &Data : sampleBuffers(4))
    EXPECT_EQ(runModel(*P, Data)[0].asWord(), refUtf8(Data));
  // Valid ASCII decodes with no error bits.
  std::vector<uint8_t> Ascii = {'h', 'e', 'l', 'l', 'o', '!'};
  uint64_t R = runModel(*P, Ascii)[0].asWord();
  EXPECT_EQ(R >> 32, 0u);
  // A 2-byte codepoint (é = U+00E9) contributes its value.
  std::vector<uint8_t> TwoByte = {0xC3, 0xA9, 'a', 'b', 'c', 'd'};
  uint64_t R2 = runModel(*P, TwoByte)[0].asWord();
  EXPECT_EQ(R2 >> 32, 0u);
  EXPECT_EQ(uint32_t(R2), 0xE9u ^ 'a' ^ 'b' ^ 'c' ^ 'd');
}

TEST(ModelLemmasTest, M3sMatchesScrambleReference) {
  const ProgramDef *P = findProgram("m3s");
  Rng R(3);
  for (int Trial = 0; Trial < 100; ++Trial) {
    uint32_t K = uint32_t(R.next());
    uint32_t Want = K * 0xcc9e2d51u;
    Want = (Want << 15) | (Want >> 17);
    Want *= 0x1b873593u;
    EffectCtx Ctx;
    Result<std::vector<Value>> Out =
        evalFn(P->Model, {Value::word(R.nextBool() ? K : (uint64_t(R.next())
                                                              << 32 |
                                                          K))},
               Ctx);
    ASSERT_TRUE(bool(Out));
    EXPECT_EQ((*Out)[0].asWord(), Want); // High input bits are ignored.
  }
}

} // namespace
