# Empty compiler generated dependencies file for relc_extraction.
# This may be replaced when dependencies are built.
