//===- tv/Tv.h - Symbolic translation validation ----------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Per-program translation validation in the style of CompCert's verified
// back-end checks (Leroy): after every compilation, prove — statically,
// for all inputs — that the generated Bedrock2 code computes the same
// function as the FunLang model. This is certification layer 3 of
// relc::validate (after derivation replay and the dataflow analyzer,
// before differential testing), and the only layer that establishes
// *functional correctness* for all inputs rather than safety or sampled
// agreement.
//
// Method: both sides are evaluated into one hash-consed, normalizing term
// graph (tv/Term.h).
//
//   - The model is symbolically evaluated binding by binding. Loop
//     combinators (ListArray.map, fold, fold_break, ranged_for, while)
//     become summarized Fold terms: a guard, and per carried value an
//     initial term (over the entry symbols) and a one-iteration step term
//     (over canonical bound symbols), plus the written regions' entry and
//     step contents.
//
//   - The generated command tree is symbolically executed over a store
//     (local -> term) and a region-indexed memory reusing the
//     relc::analysis ABI digest (regions, argument terms, entry facts).
//     Conditionals fork and join into Select terms; each While is
//     summarized by havocking its assigned locals and written regions,
//     executing the body once, and *matching* the result against the
//     model's loop summary of the same ordinal — equal initial states
//     under equal guarded transitions are equal at every trip count, so
//     the loops agree without unrolling.
//
//   - The outputs named by the fnspec (scalar returns, in-place arrays
//     and cells, plus the frame of every other region) must intern to
//     identical term ids.
//
// Verdicts are three-valued, as usual for translation validation:
// Proved (equivalence holds for all inputs, modulo the trusted
// normalizer), Refuted (a concrete output or loop summary differs — a
// miscompilation, reported with the offending source binding and target
// statement path), and Inconclusive (the program uses a fragment the
// validator does not model — nondeterminism, I/O, external calls — and
// certification falls back to the other layers). The result carries a
// machine-readable certificate (term hashes + per-binding trace) so an
// independent checker can audit the match.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_TV_TV_H
#define RELC_TV_TV_H

#include "analysis/Domains.h"
#include "bedrock/Ast.h"
#include "ir/Prog.h"
#include "sep/Spec.h"
#include "support/Budget.h"

#include <string>
#include <vector>

namespace relc {
namespace tv {

enum class Verdict : uint8_t {
  Proved,       ///< Source and target terms identical for every output.
  Refuted,      ///< Some output or loop summary provably differs.
  Inconclusive, ///< Outside the validated fragment; no claim either way.
};

const char *verdictName(Verdict V);

/// One fnspec output channel's comparison.
struct OutputRecord {
  std::string Name;          ///< Source name (return, array, or cell).
  std::string Kind;          ///< "scalar", "array", "cell", or "frame".
  uint64_t SrcHash = 0, TgtHash = 0;
  bool Matched = false;
  std::string SrcTerm, TgtTerm;   ///< Rendered terms (diagnostics).
  std::string SourceBinding;      ///< Last model binding of Name.
  std::string TargetPath;         ///< Last target statement defining it.
};

/// One source binding's normalized value (the per-binding match trace).
struct BindingRecord {
  std::string Path; ///< "2", "4.then.0", ... (binding index path).
  std::string Name; ///< Bound name(s), comma-joined for multi-binds.
  uint64_t Hash = 0;
};

/// One matched loop pair: the model's summary plus the match *witness* the
/// driver's bijection search found. The witness is what makes the verdict
/// independently checkable (cert::Rederive): given which target local
/// implements each carried position, the match equations verify
/// deterministically, with no search.
struct LoopRecord {
  unsigned Ordinal = 0;
  std::string Binding;    ///< The model binding the loop came from.
  std::string Path;       ///< Source binding path of the loop.
  uint64_t FoldHash = 0;  ///< Hash of the shared Fold summary node.
  unsigned Carried = 0;
  unsigned Regions = 0;
  /// WitnessLocals[j] = target local matched to carried position j (filled
  /// on a successful match; size == Carried). WitnessRegions = the regions
  /// the target loop stores to. TargetPath = the While statement's path.
  std::vector<std::string> WitnessLocals;
  std::vector<std::string> WitnessRegions;
  std::string TargetPath;
};

struct TvReport {
  Verdict TheVerdict = Verdict::Inconclusive;
  std::string Fn;      ///< Target function name.
  std::string Reason;  ///< Refutation / inconclusiveness explanation.
  std::vector<OutputRecord> Outputs;
  std::vector<BindingRecord> Bindings;
  std::vector<LoopRecord> Loops;
  unsigned NumTerms = 0; ///< Size of the shared term graph.
  /// True when the verdict is Inconclusive *because* a guard::Budget ran
  /// out (deadline or step limit), not because the program is outside the
  /// validated fragment. The pipeline reports this as a Degraded layer
  /// (DESIGN.md §4.7): certification falls through to the differential
  /// layer, and the outcome is never cached.
  bool BudgetExhausted = false;

  bool proved() const { return TheVerdict == Verdict::Proved; }
  bool refuted() const { return TheVerdict == Verdict::Refuted; }

  /// Human-readable report (relc-gen -tv-report, relc-lint).
  /// (The machine-readable certificate is no longer assembled here: build
  /// it with cert::fromTvReport and serialize with cert::Writer.)
  std::string str() const;
};

/// Validates that \p Fn (the generated code) implements \p Src under ABI
/// \p Spec. \p Hints are the compile-time entry facts (the same list the
/// compiler and analyzer assumed). Never fails hard: unsupported
/// constructs yield Verdict::Inconclusive with a reason.
///
/// \p Budget, when non-null, bounds the run cooperatively: term-graph
/// interning and the loop-match bijection search charge steps against it,
/// and exhaustion yields Verdict::Inconclusive with
/// TvReport::BudgetExhausted set — a refusal, never a wrong accept.
TvReport validateTranslation(const ir::SourceFn &Src, const sep::FnSpec &Spec,
                             const bedrock::Function &Fn,
                             const analysis::EntryFactList &Hints = {},
                             const guard::Budget *Budget = nullptr);

} // namespace tv
} // namespace relc

#endif // RELC_TV_TV_H
