file(REMOVE_RECURSE
  "CMakeFiles/relc_sep.dir/Spec.cpp.o"
  "CMakeFiles/relc_sep.dir/Spec.cpp.o.d"
  "CMakeFiles/relc_sep.dir/State.cpp.o"
  "CMakeFiles/relc_sep.dir/State.cpp.o.d"
  "librelc_sep.a"
  "librelc_sep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_sep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
