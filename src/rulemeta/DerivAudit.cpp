//===- rulemeta/DerivAudit.cpp - Witness-vs-registry drift audit -----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Analysis 5: a Derivation records which lemma fired for each binding, but
// the registry it fired from keeps evolving — rules get renamed, reordered,
// addFront-specialized, deleted. relc-check replays a recorded witness
// without consulting the registry at all, so it happily certifies a
// derivation the current compiler could never produce. This audit closes
// that gap: walk the witness alongside the source program and demand that
// every recorded rule (a) still exists, (b) still matches its binding, and
// (c) is still the *first* match — the only one a no-backtracking driver
// would pick. Any disagreement is stale-derivation.
//
// Pairing relies on two driver invariants (core/Compiler.cpp): the
// continuation extends the parent node, so a (sub)program node's first M
// children are exactly its M binding nodes in order; and sub-program
// derivations hang off the binding node under fixed structural names
// ("ranged_for_body", "while_body", "cond_then", "cond_else").
//
// Matching replays against a fresh CompileCtx with no symbolic state. That
// is sound because selection is deliberately state-free (core/Rule.h):
// matches() looks only at the construct kind and bound-name arity, and
// side conditions are apply-time hard errors, not selection.
//
//===----------------------------------------------------------------------===//

#include "rulemeta/RuleMeta.h"

#include "ir/Prog.h"
#include "support/Casting.h"

namespace relc {
namespace rulemeta {

namespace {

struct Auditor {
  core::CompileCtx &Ctx;
  const core::RuleSet &RS;
  Report &R;

  const core::StmtRule *findByName(const std::string &Name) const {
    for (size_t I = 0; I < RS.size(); ++I)
      if (RS[I].name() == Name)
        return &RS[I];
    return nullptr;
  }

  /// The named structural sub-derivation of a binding node, if recorded.
  const core::DerivNode *structuralChild(const core::DerivNode &Node,
                                         const char *Name) const {
    for (const auto &C : Node.Children)
      if (C->Rule == Name)
        return C.get();
    return nullptr;
  }

  /// Audits one binding against its recorded derivation node.
  void auditBinding(const ir::Binding &B, const core::DerivNode &Node) {
    const core::StmtRule *Recorded = findByName(Node.Rule);
    if (!Recorded) {
      R.add(Reason::StaleDerivation, Node.Rule,
            "recorded rule no longer exists in the registry (goal was: " +
                B.str() + ")");
      return;
    }
    if (!Recorded->matches(Ctx, B)) {
      R.add(Reason::StaleDerivation, Node.Rule,
            "recorded rule no longer matches its recorded goal: " + B.str());
      return;
    }
    core::StmtRule *First = RS.findMatch(Ctx, B);
    if (First && First->name() != Node.Rule)
      R.add(Reason::StaleDerivation, Node.Rule,
            "no longer the first match for its goal; '" + First->name() +
                "' now precedes it and a no-backtracking driver would pick "
                "that instead");

    // Expression spot-check: a pure binding's first expression
    // sub-derivation must still name the expression engine's first match.
    if (const auto *PV = dyn_cast<ir::PureVal>(B.Bound.get()))
      auditExpr(*PV->expr(), Node);

    // Recurse into recorded sub-program derivations.
    if (const auto *RF = dyn_cast<ir::RangeFold>(B.Bound.get()))
      auditSubProg(Node, "ranged_for_body", *RF->body());
    else if (const auto *W = dyn_cast<ir::WhileComb>(B.Bound.get()))
      auditSubProg(Node, "while_body", *W->body());
    else if (const auto *IB = dyn_cast<ir::IfBound>(B.Bound.get())) {
      auditSubProg(Node, "cond_then", *IB->thenProg());
      auditSubProg(Node, "cond_else", *IB->elseProg());
    }
  }

  void auditExpr(const ir::Expr &E, const core::DerivNode &Node) {
    // Expression sub-derivations are tagged "EXPR ?e (...)" in the goal
    // slot (core/ExprCompile.cpp); the first one under a pure binding is
    // the root of its expression compilation.
    const core::DerivNode *ExprNode = nullptr;
    for (const auto &C : Node.Children)
      if (C->Goal.rfind("EXPR", 0) == 0) {
        ExprNode = C.get();
        break;
      }
    if (!ExprNode)
      return; // Nothing recorded to check against.
    core::ExprRule *First = Ctx.exprs().rules().findMatch(Ctx, E);
    if (!First)
      R.add(Reason::StaleDerivation, ExprNode->Rule,
            "no expression rule matches the recorded expression goal "
            "anymore: " +
                E.str());
    else if (First->name() != ExprNode->Rule)
      R.add(Reason::StaleDerivation, ExprNode->Rule,
            "no longer the first expression match; '" + First->name() +
                "' now precedes it");
  }

  void auditSubProg(const core::DerivNode &Node, const char *ChildName,
                    const ir::Prog &Body) {
    const core::DerivNode *Sub = structuralChild(Node, ChildName);
    if (!Sub) {
      R.add(Reason::StaleDerivation, Node.Rule,
            std::string("recorded sub-derivation '") + ChildName +
                "' is missing from the witness");
      return;
    }
    auditProg(Body, *Sub);
  }

  /// Pairs \p P's bindings with \p Node's leading children.
  void auditProg(const ir::Prog &P, const core::DerivNode &Node) {
    if (Node.Children.size() < P.bindings().size()) {
      R.add(Reason::StaleDerivation, Node.Rule.empty() ? "witness" : Node.Rule,
            "witness node records fewer rule applications (" +
                std::to_string(Node.Children.size()) +
                ") than the source program has bindings (" +
                std::to_string(P.bindings().size()) + ")");
      return;
    }
    for (size_t I = 0; I < P.bindings().size(); ++I)
      auditBinding(P.bindings()[I], *Node.Children[I]);
  }
};

} // namespace

Report auditDerivation(const ir::SourceFn &Model, const sep::FnSpec &Spec,
                       const core::DerivNode &Proof, const core::RuleSet &RS) {
  Report R;
  // A fresh context carries no symbolic state; selection does not need any
  // (see file header). Mutable because ExprCompiler hangs off it.
  core::CompileCtx Ctx(Model, Spec, RS);
  Auditor A{Ctx, RS, R};
  A.auditProg(*Model.Body, Proof);
  return R;
}

} // namespace rulemeta
} // namespace relc
