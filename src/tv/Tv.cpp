//===- tv/Tv.cpp - Symbolic translation validation -------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Implementation of the per-program translation validator declared in Tv.h.
// Two symbolic evaluators share one normalizing TermGraph:
//
//   - the source evaluator walks the FunLang let-chain, turning each loop
//     combinator into a canonical Fold summary over positional bound
//     symbols "%Lk.cj" (carried value j of loop k) and "%Lk.r.<region>"
//     (the havocked contents of a region the body rewrites);
//
//   - the target executor walks the Bedrock2 command tree over a store and
//     a region-indexed memory, forking/joining at conditionals, and at the
//     k-th While (execution order equals the model's loop pre-order,
//     because compilation is syntax-directed) summarizes the loop by
//     havocking its assigned locals and stored regions, then searches for
//     a bijection between loop-carried locals and the model's carried
//     positions under which guard, step terms, and region effects all
//     intern to the model's Fold summary. Matching succeeds only if the
//     two loops compute the same fixpoint from the same entry state, which
//     is exactly loop equivalence at every trip count.
//
// Soundness: a Proved verdict means every fnspec output interned to the
// same node on both sides; the only trusted components are the TermGraph's
// normalization rules (each a word-level identity) and the two evaluators'
// adherence to their language semantics. Incompleteness is deliberate and
// safe: anything outside the fragment aborts with Inconclusive, never
// Proved.
//
// The internal Abort exception never escapes this translation unit:
// validateTranslation catches it and returns the verdict.
//
//===----------------------------------------------------------------------===//

#include "tv/Tv.h"
#include "support/Hash.h"
#include "tv/Term.h"

#include "support/Casting.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace relc {
namespace tv {

namespace {

//===----------------------------------------------------------------------===//
// Small utilities.
//===----------------------------------------------------------------------===//

/// Internal control-flow escape; caught at the validateTranslation boundary.
struct Abort {
  Verdict V;
  std::string Reason;
};

[[noreturn]] void inconclusive(const std::string &Why) {
  throw Abort{Verdict::Inconclusive, Why};
}

[[noreturn]] void refute(const std::string &Why) {
  throw Abort{Verdict::Refuted, Why};
}

bedrock::BinOp lowerOp(ir::WordOp Op) {
  switch (Op) {
  case ir::WordOp::Add:
    return bedrock::BinOp::Add;
  case ir::WordOp::Sub:
    return bedrock::BinOp::Sub;
  case ir::WordOp::Mul:
    return bedrock::BinOp::Mul;
  case ir::WordOp::DivU:
    return bedrock::BinOp::DivU;
  case ir::WordOp::RemU:
    return bedrock::BinOp::RemU;
  case ir::WordOp::And:
    return bedrock::BinOp::And;
  case ir::WordOp::Or:
    return bedrock::BinOp::Or;
  case ir::WordOp::Xor:
    return bedrock::BinOp::Xor;
  case ir::WordOp::Shl:
    return bedrock::BinOp::Shl;
  case ir::WordOp::LShr:
    return bedrock::BinOp::LShr;
  case ir::WordOp::AShr:
    return bedrock::BinOp::AShr;
  case ir::WordOp::LtU:
    return bedrock::BinOp::LtU;
  case ir::WordOp::LtS:
    return bedrock::BinOp::LtS;
  case ir::WordOp::Eq:
    return bedrock::BinOp::Eq;
  case ir::WordOp::Ne:
    return bedrock::BinOp::Ne;
  }
  inconclusive("unknown word operator");
}

std::string joinNames(const std::vector<std::string> &Names) {
  std::string Out;
  for (const std::string &N : Names) {
    if (!Out.empty())
      Out += ",";
    Out += N;
  }
  return Out;
}

std::string joinSet(const std::set<std::string> &S) {
  std::string Out;
  for (const std::string &N : S) {
    if (!Out.empty())
      Out += ",";
    Out += N;
  }
  return Out;
}

std::string clip(const std::string &S, size_t Max = 96) {
  if (S.size() <= Max)
    return S;
  return S.substr(0, Max) + "...";
}

std::string hex64(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx", (unsigned long long)V);
  return Buf;
}

uint64_t tableMax(const std::vector<uint64_t> &Elements) {
  uint64_t M = 0;
  for (uint64_t E : Elements)
    M = std::max(M, E);
  return M;
}

bool isLoopForm(const ir::BoundForm &B) {
  switch (B.kind()) {
  case ir::BoundForm::Kind::ListMap:
  case ir::BoundForm::Kind::ListFold:
  case ir::BoundForm::Kind::FoldBreak:
  case ir::BoundForm::Kind::RangeFold:
  case ir::BoundForm::Kind::WhileComb:
    return true;
  default:
    return false;
  }
}

bool progHasLoop(const ir::Prog &P) {
  for (const ir::Binding &B : P.bindings()) {
    if (isLoopForm(*B.Bound))
      return true;
    if (const auto *IB = dyn_cast<ir::IfBound>(B.Bound.get()))
      if (progHasLoop(*IB->thenProg()) || progHasLoop(*IB->elseProg()))
        return true;
  }
  return false;
}

/// Arrays and cells a loop-body sub-program writes (by source name).
void collectProgWrites(const ir::Prog &P, std::set<std::string> &Out) {
  for (const ir::Binding &B : P.bindings()) {
    if (const auto *AP = dyn_cast<ir::ArrayPut>(B.Bound.get()))
      Out.insert(AP->array());
    else if (const auto *CP = dyn_cast<ir::CellPut>(B.Bound.get()))
      Out.insert(CP->cell());
    else if (const auto *CI = dyn_cast<ir::CellIncr>(B.Bound.get()))
      Out.insert(CI->cell());
    else if (const auto *IB = dyn_cast<ir::IfBound>(B.Bound.get())) {
      collectProgWrites(*IB->thenProg(), Out);
      collectProgWrites(*IB->elseProg(), Out);
    }
  }
}

//===----------------------------------------------------------------------===//
// Symbolic states.
//===----------------------------------------------------------------------===//

/// Value of an array-typed source name: which region holds it.
struct SrcArr {
  std::string Region;
  TermId Len = NoTerm;
  unsigned EltBytes = 1;
};

struct SrcState {
  std::map<std::string, TermId> Scal;
  std::map<std::string, SrcArr> Arr;
  std::set<std::string> Cells;
  std::map<std::string, TermId> Region; ///< Region name -> contents term.
};

struct TgtState {
  std::map<std::string, TermId> Locals;
  std::map<std::string, TermId> Region;
  std::map<std::string, std::string> LocalDef;  ///< Last defining stmt path.
  std::map<std::string, std::string> RegionDef; ///< Last writing stmt path.
};

/// One model loop's canonical summary, in pre-order.
struct SrcLoopRec {
  TermId Fold = NoTerm;
  std::string BindingName; ///< Bound names, joined.
  std::string Path;        ///< Source binding path.
};

//===----------------------------------------------------------------------===//
// The validator.
//===----------------------------------------------------------------------===//

class Validator {
public:
  Validator(const ir::SourceFn &Src, const sep::FnSpec &Spec,
            const bedrock::Function &Fn, const analysis::EntryFactList &Hints,
            const guard::Budget *Budget)
      : Src(Src), Spec(Spec), Fn(Fn),
        Abi(analysis::makeAbiInfo(Fn, Spec, Src, Hints)), Budget(Budget) {
    G.setEntryFacts(&Abi.EntryFacts);
    G.setBudget(Budget);
    Abi.EntryFacts.setBudget(Budget);
  }

  TvReport run() {
    Rep.Fn = Fn.Name;
    try {
      if (Src.TheMonad != ir::Monad::Pure)
        inconclusive(std::string("model is in the ") +
                     ir::monadName(Src.TheMonad) +
                     " monad; only pure programs are validated statically");
      checkTables();
      setupRegions();
      SrcState SS = sourceEntry();
      evalSrcProg(*Src.Body, SS, "");
      TgtState TT = targetEntry();
      execBlock(Fn.Body.get(), TT, "body");
      compareOutputs(SS, TT);
    } catch (const Abort &A) {
      Rep.TheVerdict = A.V;
      Rep.Reason = A.Reason;
    } catch (const guard::BudgetExhausted &E) {
      // Exhaustion is a refusal, never a wrong answer: the validator
      // stops claiming anything and certification falls through to the
      // differential layer (§4.7).
      Rep.TheVerdict = Verdict::Inconclusive;
      Rep.Reason = std::string("translation validation ") + E.what();
      Rep.BudgetExhausted = true;
    }
    Rep.NumTerms = unsigned(G.size());
    return Rep;
  }

private:
  const ir::SourceFn &Src;
  const sep::FnSpec &Spec;
  const bedrock::Function &Fn;
  analysis::AbiInfo Abi;
  const guard::Budget *Budget = nullptr;
  TermGraph G;
  TvReport Rep;

  std::map<std::string, unsigned> RegionWidth; ///< Region -> element bytes.
  std::map<TermId, std::string> PtrRegion;     ///< Ptr sym id -> region.
  std::vector<SrcLoopRec> SrcLoops;
  unsigned TgtCursor = 0;
  std::map<std::string, std::string> LastSrcBind; ///< Name -> description.
  std::set<std::string> *CurStores = nullptr;

  std::string canonSym(unsigned Loop, unsigned Pos) const {
    return "%L" + std::to_string(Loop) + ".c" + std::to_string(Pos);
  }
  std::string canonRegionSym(unsigned Loop, const std::string &R) const {
    return "%L" + std::to_string(Loop) + ".r." + R;
  }

  //===--------------------------------------------------------------------===//
  // Entry states.
  //===--------------------------------------------------------------------===//

  void checkTables() {
    for (const bedrock::InlineTable &T : Fn.Tables) {
      const ir::TableDef *D = Src.findTable(T.Name);
      if (!D)
        refute("inline table '" + T.Name + "' has no counterpart in the model");
      if (bedrock::sizeBytes(T.EltSize) != ir::eltSize(D->Elt))
        refute("inline table '" + T.Name +
               "' element width differs from the model's");
      if (T.Elements != D->Elements)
        refute("inline table '" + T.Name + "' contents differ from the model");
    }
  }

  void setupRegions() {
    for (const ir::Param &P : Src.Params) {
      if (P.TheKind == ir::Param::Kind::List)
        RegionWidth[P.Name] = ir::eltSize(P.Elt);
      else if (P.TheKind == ir::Param::Kind::Cell)
        RegionWidth[P.Name] = 8;
    }
  }

  SrcState sourceEntry() {
    // A scalar parameter the ABI declares as an array's length is the same
    // word as the canonical "len_<array>" symbol (the requires clause ties
    // them), so both sides must intern it identically.
    std::map<std::string, std::string> CanonScalar;
    for (const sep::ArgSpec &A : Spec.Args)
      if (A.TheKind == sep::ArgSpec::Kind::ArrayLen)
        CanonScalar[A.SourceName] = "len_" + A.OfArray;

    SrcState S;
    for (const ir::Param &P : Src.Params) {
      switch (P.TheKind) {
      case ir::Param::Kind::ScalarWord: {
        auto It = CanonScalar.find(P.Name);
        S.Scal[P.Name] =
            G.sym(It != CanonScalar.end() ? It->second : P.Name);
        break;
      }
      case ir::Param::Kind::List: {
        unsigned W = ir::eltSize(P.Elt);
        S.Arr[P.Name] = {P.Name, G.sym("len_" + P.Name), W};
        S.Region[P.Name] = G.arrInit(P.Name, W);
        break;
      }
      case ir::Param::Kind::Cell:
        S.Cells.insert(P.Name);
        S.Region[P.Name] = G.arrInit(P.Name, 8);
        break;
      }
    }
    return S;
  }

  TgtState targetEntry() {
    TgtState T;
    for (const sep::ArgSpec &A : Spec.Args) {
      switch (A.TheKind) {
      case sep::ArgSpec::Kind::Scalar:
        T.Locals[A.TargetName] = G.sym(A.SourceName);
        break;
      case sep::ArgSpec::Kind::ArrayLen:
        T.Locals[A.TargetName] = G.sym("len_" + A.OfArray);
        break;
      case sep::ArgSpec::Kind::ArrayPtr:
      case sep::ArgSpec::Kind::CellPtr: {
        TermId P = G.sym("ptr_" + A.SourceName);
        T.Locals[A.TargetName] = P;
        PtrRegion[P] = A.SourceName;
        break;
      }
      }
      T.LocalDef[A.TargetName] = "entry";
    }
    for (const auto &[R, W] : RegionWidth) {
      T.Region[R] = G.arrInit(R, W); // Same node as the source entry.
      T.RegionDef[R] = "entry";
    }
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Source evaluation.
  //===--------------------------------------------------------------------===//

  TermId evalSrcExpr(const ir::Expr &E, const SrcState &S) {
    switch (E.kind()) {
    case ir::Expr::Kind::Const:
      return G.constant(cast<ir::Const>(&E)->value().scalar());
    case ir::Expr::Kind::VarRef: {
      const std::string &N = cast<ir::VarRef>(&E)->name();
      auto It = S.Scal.find(N);
      if (It == S.Scal.end())
        inconclusive("model references '" + N +
                     "' where no scalar value is tracked");
      return It->second;
    }
    case ir::Expr::Kind::Bin: {
      const auto *B = cast<ir::Bin>(&E);
      TermId L = evalSrcExpr(*B->lhs(), S);
      TermId R = evalSrcExpr(*B->rhs(), S);
      return G.bin(lowerOp(B->op()), L, R);
    }
    case ir::Expr::Kind::Select: {
      const auto *Sel = cast<ir::Select>(&E);
      TermId C = evalSrcExpr(*Sel->cond(), S);
      TermId T = evalSrcExpr(*Sel->thenExpr(), S);
      TermId F = evalSrcExpr(*Sel->elseExpr(), S);
      return G.select(C, T, F);
    }
    case ir::Expr::Kind::Cast: {
      const auto *C = cast<ir::Cast>(&E);
      TermId Op = evalSrcExpr(*C->operand(), S);
      switch (C->castKind()) {
      case ir::CastKind::ByteToWord:
      case ir::CastKind::BoolToWord:
        return Op; // Zero-extension is the identity on word terms.
      case ir::CastKind::WordToByte:
        return G.bin(bedrock::BinOp::And, Op, G.constant(0xff));
      }
      inconclusive("unknown cast");
    }
    case ir::Expr::Kind::ArrayGet: {
      const auto *AG = cast<ir::ArrayGet>(&E);
      auto It = S.Arr.find(AG->array());
      if (It == S.Arr.end())
        inconclusive("model reads array '" + AG->array() +
                     "' which is not tracked");
      TermId Idx = evalSrcExpr(*AG->index(), S);
      return G.elt(S.Region.at(It->second.Region), Idx);
    }
    case ir::Expr::Kind::TableGet: {
      const auto *TG = cast<ir::TableGet>(&E);
      const ir::TableDef *D = Src.findTable(TG->table());
      if (!D)
        inconclusive("model reads unknown table '" + TG->table() + "'");
      TermId Idx = evalSrcExpr(*TG->index(), S);
      return G.tableElt(D->Name, ir::eltSize(D->Elt), tableMax(D->Elements),
                        Idx);
    }
    }
    inconclusive("unknown expression kind");
  }

  uint64_t srcValueHash(const SrcState &S, const std::string &Name) const {
    auto SIt = S.Scal.find(Name);
    if (SIt != S.Scal.end())
      return G.hashOf(SIt->second);
    auto AIt = S.Arr.find(Name);
    if (AIt != S.Arr.end())
      return G.hashOf(S.Region.at(AIt->second.Region));
    if (S.Cells.count(Name))
      return G.hashOf(S.Region.at(Name));
    return 0;
  }

  void recordBinding(const ir::Binding &B, const SrcState &S,
                     const std::string &Path) {
    uint64_t H = 0xcbf29ce484222325ull;
    for (const std::string &N : B.Names) {
      H = hash::fnv1a64Word(srcValueHash(S, N), H);
      LastSrcBind[N] = Path + ": let " + joinNames(B.Names) + " := " +
                       clip(B.Bound->str());
    }
    Rep.Bindings.push_back({Path, joinNames(B.Names), H});
  }

  void evalSrcProg(const ir::Prog &P, SrcState &S, const std::string &Prefix) {
    const std::vector<ir::Binding> &Bs = P.bindings();
    for (size_t I = 0; I < Bs.size(); ++I)
      evalSrcBinding(Bs[I], S, Prefix + std::to_string(I));
  }

  void evalSrcBinding(const ir::Binding &B, SrcState &S,
                      const std::string &Path) {
    using K = ir::BoundForm::Kind;
    switch (B.Bound->kind()) {
    case K::PureVal: {
      if (B.Names.size() != 1)
        inconclusive("multi-name pure binding");
      S.Scal[B.Names[0]] =
          evalSrcExpr(*cast<ir::PureVal>(B.Bound.get())->expr(), S);
      break;
    }
    case K::ArrayPut: {
      const auto *AP = cast<ir::ArrayPut>(B.Bound.get());
      if (B.Names.size() != 1 || B.Names[0] != AP->array())
        inconclusive("array put must rebind the array's own name");
      auto It = S.Arr.find(AP->array());
      if (It == S.Arr.end())
        inconclusive("put into untracked array '" + AP->array() + "'");
      TermId Idx = evalSrcExpr(*AP->index(), S);
      TermId Val = evalSrcExpr(*AP->val(), S);
      const std::string &R = It->second.Region;
      S.Region[R] = G.arrStore(S.Region.at(R), Idx, Val);
      break;
    }
    case K::CellGet: {
      const auto *CG = cast<ir::CellGet>(B.Bound.get());
      if (!S.Cells.count(CG->cell()))
        inconclusive("get from untracked cell '" + CG->cell() + "'");
      S.Scal[B.Names[0]] = G.elt(S.Region.at(CG->cell()), G.constant(0));
      break;
    }
    case K::CellPut: {
      const auto *CP = cast<ir::CellPut>(B.Bound.get());
      if (B.Names.size() != 1 || B.Names[0] != CP->cell() ||
          !S.Cells.count(CP->cell()))
        inconclusive("cell put must rebind the cell's own name");
      TermId V = evalSrcExpr(*CP->expr(), S);
      S.Region[CP->cell()] =
          G.arrStore(S.Region.at(CP->cell()), G.constant(0), V);
      break;
    }
    case K::CellIncr: {
      const auto *CI = cast<ir::CellIncr>(B.Bound.get());
      if (B.Names.size() != 1 || B.Names[0] != CI->cell() ||
          !S.Cells.count(CI->cell()))
        inconclusive("cell incr must rebind the cell's own name");
      TermId Cur = G.elt(S.Region.at(CI->cell()), G.constant(0));
      TermId V = G.bin(bedrock::BinOp::Add, Cur, evalSrcExpr(*CI->expr(), S));
      S.Region[CI->cell()] =
          G.arrStore(S.Region.at(CI->cell()), G.constant(0), V);
      break;
    }
    case K::IfBound:
      evalSrcIf(B, S, Path);
      break;
    case K::ListMap:
    case K::ListFold:
    case K::FoldBreak:
    case K::RangeFold:
    case K::WhileComb:
      evalSrcLoop(B, S, Path);
      break;
    default:
      inconclusive("binding form '" + clip(B.Bound->str(), 48) +
                   "' is outside the statically validated fragment");
    }
    recordBinding(B, S, Path);
  }

  void evalSrcIf(const ir::Binding &B, SrcState &S, const std::string &Path) {
    const auto *IB = cast<ir::IfBound>(B.Bound.get());
    TermId C = evalSrcExpr(*IB->cond(), S);
    SrcState TS = S, ES = S;
    evalSrcProg(*IB->thenProg(), TS, Path + ".then.");
    evalSrcProg(*IB->elseProg(), ES, Path + ".else.");
    const std::vector<std::string> &TR = IB->thenProg()->returns();
    const std::vector<std::string> &ER = IB->elseProg()->returns();
    if (TR.size() != B.Names.size() || ER.size() != B.Names.size())
      inconclusive("conditional binding arity mismatch");
    for (auto &[R, Contents] : S.Region)
      Contents = G.arrSelect(C, TS.Region.at(R), ES.Region.at(R));
    for (size_t J = 0; J < B.Names.size(); ++J) {
      bool ThenArr = TS.Arr.count(TR[J]) != 0;
      bool ElseArr = ES.Arr.count(ER[J]) != 0;
      if (ThenArr != ElseArr)
        inconclusive("conditional branches return values of different kinds");
      if (ThenArr) {
        const SrcArr &A1 = TS.Arr.at(TR[J]);
        const SrcArr &A2 = ES.Arr.at(ER[J]);
        if (A1.Region != A2.Region)
          inconclusive("conditional branches return different arrays");
        S.Arr[B.Names[J]] = A1;
        continue;
      }
      auto TI = TS.Scal.find(TR[J]);
      auto EI = ES.Scal.find(ER[J]);
      if (TI == TS.Scal.end() || EI == ES.Scal.end())
        inconclusive("conditional branch result '" + TR[J] +
                     "' is not a tracked scalar");
      S.Scal[B.Names[J]] = G.select(C, TI->second, EI->second);
    }
  }

  /// Resolves the carried structure of a loop binding and interns its Fold.
  void evalSrcLoop(const ir::Binding &B, SrcState &S, const std::string &Path) {
    unsigned K = unsigned(SrcLoops.size());
    FoldInfo FI;
    TermId F = NoTerm;

    auto Carried = [&](unsigned Pos) { return G.sym(canonSym(K, Pos)); };

    switch (B.Bound->kind()) {
    case ir::BoundForm::Kind::ListMap: {
      const auto *M = cast<ir::ListMap>(B.Bound.get());
      if (B.Names.size() != 1 || B.Names[0] != M->array())
        inconclusive("map must rebind its array in place");
      auto It = S.Arr.find(M->array());
      if (It == S.Arr.end())
        inconclusive("map over untracked array '" + M->array() + "'");
      const std::string R = It->second.Region;
      unsigned W = It->second.EltBytes;
      TermId Entry = S.Region.at(R);
      TermId I = Carried(0);
      TermId Hav = G.arrHavoc(canonRegionSym(K, R), W);
      SrcState BS = S;
      BS.Region[R] = Hav;
      BS.Scal[M->param()] = G.elt(Hav, I);
      TermId V = evalSrcExpr(*M->body(), BS);
      FI.NumCarried = 1;
      FI.Guard = G.bin(bedrock::BinOp::LtU, I, It->second.Len);
      FI.Inits = {G.constant(0)};
      FI.Nexts = {G.bin(bedrock::BinOp::Add, I, G.constant(1))};
      FI.Regions = {{R, Entry, G.arrStore(Hav, I, V)}};
      F = G.fold(FI);
      S.Region[R] = G.foldOutArr(F, R);
      break;
    }
    case ir::BoundForm::Kind::ListFold:
    case ir::BoundForm::Kind::FoldBreak: {
      // Shared shape: index + accumulator; fold_break adds a guard clause.
      std::string ArrName, AccP, EltP;
      const ir::Expr *InitE, *BodyE, *BreakE = nullptr;
      if (const auto *FL = dyn_cast<ir::ListFold>(B.Bound.get())) {
        ArrName = FL->array();
        AccP = FL->accParam();
        EltP = FL->eltParam();
        InitE = FL->init();
        BodyE = FL->body();
      } else {
        const auto *FB = cast<ir::FoldBreak>(B.Bound.get());
        ArrName = FB->array();
        AccP = FB->accParam();
        EltP = FB->eltParam();
        InitE = FB->init();
        BodyE = FB->body();
        BreakE = FB->breakCond();
      }
      if (B.Names.size() != 1)
        inconclusive("fold must bind exactly one name");
      auto It = S.Arr.find(ArrName);
      if (It == S.Arr.end())
        inconclusive("fold over untracked array '" + ArrName + "'");
      const std::string R = It->second.Region;
      TermId I = Carried(0), A = Carried(1);
      TermId InitT = evalSrcExpr(*InitE, S);
      SrcState BS = S;
      BS.Scal[AccP] = A;
      BS.Scal[EltP] = G.elt(S.Region.at(R), I);
      TermId Next = evalSrcExpr(*BodyE, BS);
      FI.NumCarried = 2;
      FI.Guard = G.bin(bedrock::BinOp::LtU, I, It->second.Len);
      if (BreakE) {
        // The exit predicate sees only the accumulator (compiled into the
        // guard, where the element local is not yet loaded).
        SrcState GS = S;
        GS.Scal[AccP] = A;
        TermId Brk = evalSrcExpr(*BreakE, GS);
        FI.Guard = G.bin(bedrock::BinOp::And, FI.Guard,
                         G.bin(bedrock::BinOp::Eq, Brk, G.constant(0)));
      }
      FI.Inits = {G.constant(0), InitT};
      FI.Nexts = {G.bin(bedrock::BinOp::Add, I, G.constant(1)), Next};
      F = G.fold(FI);
      S.Scal[B.Names[0]] = G.foldOut(F, 1);
      break;
    }
    case ir::BoundForm::Kind::RangeFold:
    case ir::BoundForm::Kind::WhileComb: {
      const auto *RF = dyn_cast<ir::RangeFold>(B.Bound.get());
      const auto *WC = dyn_cast<ir::WhileComb>(B.Bound.get());
      const std::vector<ir::AccInit> &Accs = RF ? RF->accs() : WC->accs();
      const ir::Prog &Body = RF ? *RF->body() : *WC->body();
      if (progHasLoop(Body))
        inconclusive("nested loops are not summarized");
      if (Accs.size() != B.Names.size())
        inconclusive("loop accumulator arity mismatch");
      for (size_t J = 0; J < Accs.size(); ++J)
        if (Accs[J].Name != B.Names[J])
          inconclusive("loop accumulators must be bound under their names");

      // Classify accumulators: arrays thread through regions, scalars are
      // carried positions. The index (ranged_for only) is carried first.
      struct ScalAcc {
        std::string Name;
        unsigned Pos;
        TermId Init;
      };
      std::vector<ScalAcc> Scals;
      std::vector<std::string> ArrAccs;
      unsigned NextPos = RF ? 1 : 0;
      for (const ir::AccInit &A : Accs) {
        const auto *V = dyn_cast<ir::VarRef>(A.Init.get());
        if (V && S.Arr.count(V->name())) {
          if (V->name() != A.Name)
            inconclusive("array accumulator must be initialized by itself");
          ArrAccs.push_back(A.Name);
          continue;
        }
        Scals.push_back({A.Name, NextPos++, evalSrcExpr(*A.Init, S)});
      }

      std::set<std::string> Writes;
      collectProgWrites(Body, Writes);
      std::map<std::string, TermId> Entries;

      SrcState BS = S;
      TermId I = NoTerm;
      TermId Lo = NoTerm, Hi = NoTerm;
      if (RF) {
        Lo = evalSrcExpr(*RF->lo(), S);
        Hi = evalSrcExpr(*RF->hi(), S);
        I = Carried(0);
        BS.Scal[RF->idxName()] = I;
      }
      for (const ScalAcc &A : Scals)
        BS.Scal[A.Name] = Carried(A.Pos);
      for (const std::string &WName : Writes) {
        std::string R;
        if (auto It = S.Arr.find(WName); It != S.Arr.end())
          R = It->second.Region;
        else if (S.Cells.count(WName))
          R = WName;
        else
          inconclusive("loop body writes untracked '" + WName + "'");
        Entries[R] = S.Region.at(R);
        BS.Region[R] = G.arrHavoc(canonRegionSym(K, R), RegionWidth.at(R));
      }

      // The guard is evaluated against the havocked iteration state, the
      // same state the target's summary evaluates its While condition in.
      if (RF)
        FI.Guard = G.bin(bedrock::BinOp::LtU, I, Hi);
      else
        FI.Guard = evalSrcExpr(*WC->cond(), BS);

      evalSrcProg(Body, BS, Path + ".body.");
      const std::vector<std::string> &Rets = Body.returns();
      if (Rets.size() != Accs.size())
        inconclusive("loop body return arity mismatch");

      FI.NumCarried = (RF ? 1 : 0) + unsigned(Scals.size());
      FI.Inits.resize(FI.NumCarried);
      FI.Nexts.resize(FI.NumCarried);
      if (RF) {
        FI.Inits[0] = Lo;
        FI.Nexts[0] = G.bin(bedrock::BinOp::Add, I, G.constant(1));
      }
      for (const ScalAcc &A : Scals) {
        size_t AccIdx = 0;
        for (; AccIdx < Accs.size(); ++AccIdx)
          if (Accs[AccIdx].Name == A.Name)
            break;
        auto It = BS.Scal.find(Rets[AccIdx]);
        if (It == BS.Scal.end())
          inconclusive("loop body result '" + Rets[AccIdx] +
                       "' is not a tracked scalar");
        FI.Inits[A.Pos] = A.Init;
        FI.Nexts[A.Pos] = It->second;
      }
      for (const std::string &AName : ArrAccs) {
        size_t AccIdx = 0;
        for (; AccIdx < Accs.size(); ++AccIdx)
          if (Accs[AccIdx].Name == AName)
            break;
        if (Rets[AccIdx] != AName)
          inconclusive("array accumulator must be returned under its name");
      }
      for (const auto &[R, Entry] : Entries)
        FI.Regions.push_back({R, Entry, BS.Region.at(R)});

      F = G.fold(FI);
      for (const ScalAcc &A : Scals)
        S.Scal[A.Name] = G.foldOut(F, A.Pos);
      for (const auto &[R, Entry] : Entries)
        S.Region[R] = G.foldOutArr(F, R);
      break;
    }
    default:
      inconclusive("not a loop binding");
    }

    SrcLoops.push_back({F, joinNames(B.Names), Path});
    LoopRecord LR;
    LR.Ordinal = K;
    LR.Binding = joinNames(B.Names);
    LR.Path = Path;
    LR.FoldHash = G.hashOf(F);
    LR.Carried = FI.NumCarried;
    LR.Regions = unsigned(FI.Regions.size());
    Rep.Loops.push_back(std::move(LR));
  }

  //===--------------------------------------------------------------------===//
  // Target execution.
  //===--------------------------------------------------------------------===//

  TermId evalTgtExpr(const bedrock::Expr &E, const TgtState &T) {
    switch (E.kind()) {
    case bedrock::Expr::Kind::Literal:
      return G.constant(cast<bedrock::Literal>(&E)->value());
    case bedrock::Expr::Kind::Var: {
      const std::string &N = cast<bedrock::Var>(&E)->name();
      auto It = T.Locals.find(N);
      if (It == T.Locals.end())
        inconclusive("target reads local '" + N + "' with no tracked value");
      return It->second;
    }
    case bedrock::Expr::Kind::Bin: {
      const auto *B = cast<bedrock::Bin>(&E);
      TermId L = evalTgtExpr(*B->lhs(), T);
      TermId R = evalTgtExpr(*B->rhs(), T);
      return G.bin(B->op(), L, R);
    }
    case bedrock::Expr::Kind::Load: {
      const auto *L = cast<bedrock::Load>(&E);
      TermId Addr = evalTgtExpr(*L->addr(), T);
      auto [R, Idx] = resolveAddr(Addr, bedrock::sizeBytes(L->size()));
      return G.elt(T.Region.at(R), Idx);
    }
    case bedrock::Expr::Kind::TableGet: {
      const auto *TG = cast<bedrock::TableGet>(&E);
      const ir::TableDef *D = Src.findTable(TG->table());
      if (!D) // checkTables already rejected unknown tables.
        refute("table read from unknown table '" + TG->table() + "'");
      if (bedrock::sizeBytes(TG->size()) != ir::eltSize(D->Elt))
        refute("table read width differs from the model table");
      TermId Idx = evalTgtExpr(*TG->index(), T);
      return G.tableElt(D->Name, ir::eltSize(D->Elt), tableMax(D->Elements),
                        Idx);
    }
    }
    inconclusive("unknown target expression");
  }

  /// Decomposes a byte address into (region, element index): the affine view
  /// must contain exactly one region pointer with coefficient 1, and the
  /// remaining offset must be an exact multiple of the element width.
  std::pair<std::string, TermId> resolveAddr(TermId Addr, unsigned Bytes) {
    AffineView V = G.affine(Addr);
    TermId PtrAtom = NoTerm;
    std::string Reg;
    for (const auto &[Atom, C] : V.Coeffs) {
      auto It = PtrRegion.find(Atom);
      if (It == PtrRegion.end())
        continue;
      if (PtrAtom != NoTerm)
        inconclusive("address combines two region pointers");
      if (C != 1)
        inconclusive("address scales a region pointer");
      PtrAtom = Atom;
      Reg = It->second;
    }
    if (PtrAtom == NoTerm)
      inconclusive("memory access with no resolvable region pointer");
    unsigned W = RegionWidth.at(Reg);
    if (W != Bytes)
      inconclusive("access width differs from region '" + Reg +
                   "' element width");
    AffineView IdxV;
    for (const auto &[Atom, C] : V.Coeffs) {
      if (Atom == PtrAtom)
        continue;
      if (int64_t(C) % int64_t(W) != 0)
        inconclusive("address offset is not element-aligned");
      IdxV.Coeffs[Atom] = uint64_t(int64_t(C) / int64_t(W));
    }
    if (int64_t(V.K) % int64_t(W) != 0)
      inconclusive("address constant is not element-aligned");
    IdxV.K = uint64_t(int64_t(V.K) / int64_t(W));
    return {Reg, G.fromAffine(IdxV)};
  }

  static void flatten(const bedrock::Cmd *C,
                      std::vector<const bedrock::Cmd *> &Out) {
    if (const auto *S = dyn_cast<bedrock::Seq>(C)) {
      flatten(S->first(), Out);
      flatten(S->second(), Out);
      return;
    }
    if (isa<bedrock::Skip>(C))
      return;
    Out.push_back(C);
  }

  void execBlock(const bedrock::Cmd *C, TgtState &T, const std::string &Path) {
    std::vector<const bedrock::Cmd *> Stmts;
    flatten(C, Stmts);
    for (size_t I = 0; I < Stmts.size(); ++I)
      execStmt(*Stmts[I], T, Path + "." + std::to_string(I));
  }

  void execStmt(const bedrock::Cmd &C, TgtState &T, const std::string &Path) {
    switch (C.kind()) {
    case bedrock::Cmd::Kind::Skip:
      return;
    case bedrock::Cmd::Kind::Set: {
      const auto *S = cast<bedrock::Set>(&C);
      T.Locals[S->name()] = evalTgtExpr(*S->value(), T);
      T.LocalDef[S->name()] = Path;
      return;
    }
    case bedrock::Cmd::Kind::Unset: {
      const auto *U = cast<bedrock::Unset>(&C);
      T.Locals.erase(U->name());
      T.LocalDef.erase(U->name());
      return;
    }
    case bedrock::Cmd::Kind::Store: {
      const auto *S = cast<bedrock::Store>(&C);
      TermId Addr = evalTgtExpr(*S->addr(), T);
      TermId Val = evalTgtExpr(*S->value(), T);
      auto [R, Idx] = resolveAddr(Addr, bedrock::sizeBytes(S->size()));
      T.Region[R] = G.arrStore(T.Region.at(R), Idx, Val);
      T.RegionDef[R] = Path;
      if (CurStores)
        CurStores->insert(R);
      return;
    }
    case bedrock::Cmd::Kind::If: {
      const auto *I = cast<bedrock::If>(&C);
      TermId Cond = evalTgtExpr(*I->cond(), T);
      TgtState A = T, B = T;
      execBlock(I->thenCmd(), A, Path + ".then");
      execBlock(I->elseCmd(), B, Path + ".else");
      joinStates(Cond, T, A, B, Path);
      return;
    }
    case bedrock::Cmd::Kind::While:
      matchLoop(*cast<bedrock::While>(&C), T, Path);
      return;
    case bedrock::Cmd::Kind::Seq:
      execBlock(&C, T, Path); // Flattened normally; defensive.
      return;
    case bedrock::Cmd::Kind::Call:
      inconclusive("target calls '" + cast<bedrock::Call>(&C)->callee() +
                   "'; calls are not validated statically");
    case bedrock::Cmd::Kind::Stackalloc:
      inconclusive("stackalloc is outside the validated fragment");
    case bedrock::Cmd::Kind::Interact:
      inconclusive("environment interaction is outside the validated fragment");
    }
  }

  void joinStates(TermId Cond, TgtState &T, const TgtState &A,
                  const TgtState &B, const std::string &Path) {
    std::map<std::string, TermId> L;
    std::map<std::string, std::string> LD;
    for (const auto &[N, VA] : A.Locals) {
      auto It = B.Locals.find(N);
      if (It == B.Locals.end())
        continue; // Branch-local: dead after the join.
      L[N] = VA == It->second ? VA : G.select(Cond, VA, It->second);
      if (VA == It->second) {
        auto DIt = A.LocalDef.find(N);
        LD[N] = DIt != A.LocalDef.end() ? DIt->second : Path;
      } else {
        LD[N] = Path;
      }
    }
    T.Locals = std::move(L);
    T.LocalDef = std::move(LD);
    for (auto &[R, Contents] : T.Region) {
      TermId VA = A.Region.at(R), VB = B.Region.at(R);
      if (VA == VB) {
        Contents = VA;
        T.RegionDef[R] = A.RegionDef.at(R);
      } else {
        Contents = G.arrSelect(Cond, VA, VB);
        T.RegionDef[R] = Path;
      }
    }
  }

  /// Rejects body statements the summarizer cannot model and collects the
  /// assigned locals.
  void scanLoopBody(const bedrock::Cmd *C, std::set<std::string> &Assigned) {
    switch (C->kind()) {
    case bedrock::Cmd::Kind::Skip:
    case bedrock::Cmd::Kind::Store:
      return;
    case bedrock::Cmd::Kind::Set:
      Assigned.insert(cast<bedrock::Set>(C)->name());
      return;
    case bedrock::Cmd::Kind::Seq: {
      const auto *S = cast<bedrock::Seq>(C);
      scanLoopBody(S->first(), Assigned);
      scanLoopBody(S->second(), Assigned);
      return;
    }
    case bedrock::Cmd::Kind::If: {
      const auto *I = cast<bedrock::If>(C);
      scanLoopBody(I->thenCmd(), Assigned);
      scanLoopBody(I->elseCmd(), Assigned);
      return;
    }
    case bedrock::Cmd::Kind::While:
      inconclusive("nested target loops are not summarized");
    case bedrock::Cmd::Kind::Unset:
      inconclusive("unset inside a loop body");
    default:
      inconclusive("unsupported statement inside a loop body");
    }
  }

  void matchLoop(const bedrock::While &W, TgtState &T, const std::string &Path) {
    unsigned K = TgtCursor++;
    if (K >= SrcLoops.size())
      refute("target loop at " + Path +
             " has no corresponding loop in the model");
    const SrcLoopRec &SL = SrcLoops[K];
    FoldRef FI = G.foldInfo(SL.Fold);

    std::set<std::string> Assigned;
    scanLoopBody(W.body(), Assigned);

    // Discovery pass: havoc everything, record which regions the body
    // stores to (addresses never depend on contents, so the store set is
    // the same in the precise pass).
    std::set<std::string> Stored;
    {
      TgtState A = T;
      for (const std::string &V : Assigned)
        A.Locals[V] = G.sym("%TA" + std::to_string(K) + "." + V);
      for (auto &[R, Contents] : A.Region)
        Contents = G.arrHavoc("%TA" + std::to_string(K) + ".R." + R,
                              RegionWidth.at(R));
      CurStores = &Stored;
      execBlock(W.body(), A, Path + ".body");
      CurStores = nullptr;
    }

    // Precise pass: havoc only the assigned locals and the stored regions.
    TgtState B = T;
    std::map<std::string, TermId> HavocOf;
    for (const std::string &V : Assigned) {
      HavocOf[V] = G.sym("%T" + std::to_string(K) + "." + V);
      B.Locals[V] = HavocOf[V];
    }
    std::map<std::string, TermId> RegionHavoc;
    for (const std::string &R : Stored) {
      RegionHavoc[R] =
          G.arrHavoc("%T" + std::to_string(K) + ".R." + R, RegionWidth.at(R));
      B.Region[R] = RegionHavoc[R];
    }
    TermId GuardT = evalTgtExpr(*W.cond(), B);
    {
      std::set<std::string> Stored2;
      CurStores = &Stored2;
      execBlock(W.body(), B, Path + ".body");
      CurStores = nullptr;
      if (Stored2 != Stored)
        inconclusive("loop store set depends on memory contents");
    }

    std::set<std::string> SrcRegs;
    for (unsigned RI = 0, RE = FI.numRegions(); RI < RE; ++RI)
      SrcRegs.insert(FI.regionName(RI));
    if (SrcRegs != Stored)
      refute("loop at " + Path + " writes regions {" + joinSet(Stored) +
             "} but model binding '" + SL.BindingName + "' (" + SL.Path +
             ") writes {" + joinSet(SrcRegs) + "}");

    // Renaming skeleton: target region havocs map onto the model's.
    std::map<TermId, TermId> BaseRen;
    for (const std::string &R : Stored)
      BaseRen[RegionHavoc[R]] =
          G.arrHavoc(canonRegionSym(K, R), RegionWidth.at(R));

    // Loop-carried candidates: assigned locals with a pre-loop value.
    struct Cand {
      std::string Name;
      TermId Init, Next, Havoc;
    };
    std::vector<Cand> Cands;
    for (const std::string &V : Assigned) {
      auto InitIt = T.Locals.find(V);
      auto NextIt = B.Locals.find(V);
      if (InitIt == T.Locals.end() || NextIt == B.Locals.end())
        continue;
      Cands.push_back({V, InitIt->second, NextIt->second, HavocOf[V]});
    }

    // Search for a bijection from carried positions to loop variables with
    // matching initial values, under which guard, steps, and region
    // updates all equal the model's. Any witness is a genuine loop
    // isomorphism (the equations verify it), so the first one found wins.
    unsigned N = FI.numCarried();
    std::vector<int> Pick(N, -1);
    std::vector<bool> Used(Cands.size(), false);
    std::string FailWhy;

    auto CheckAssignment = [&]() -> bool {
      std::map<TermId, TermId> Ren = BaseRen;
      for (unsigned J = 0; J < N; ++J)
        Ren[Cands[size_t(Pick[J])].Havoc] = G.sym(canonSym(K, J));
      if (G.substitute(GuardT, Ren) != FI.guard()) {
        FailWhy = "the loop guard computes '" + clip(G.str(GuardT)) +
                  "' but the model's is '" + clip(G.str(FI.guard())) + "'";
        return false;
      }
      for (unsigned J = 0; J < N; ++J) {
        const Cand &C = Cands[size_t(Pick[J])];
        if (G.substitute(C.Next, Ren) != FI.next(J)) {
          FailWhy = "loop variable '" + C.Name + "' steps to '" +
                    clip(G.str(C.Next)) + "' but the model's carried value " +
                    std::to_string(J) + " steps to '" +
                    clip(G.str(FI.next(J))) + "'";
          return false;
        }
      }
      for (unsigned RI = 0, RE = FI.numRegions(); RI < RE; ++RI) {
        const std::string RName = FI.regionName(RI);
        if (T.Region.at(RName) != FI.regionEntry(RI)) {
          FailWhy = "region '" + RName + "' enters the loop as '" +
                    clip(G.str(T.Region.at(RName))) + "' but the model has '" +
                    clip(G.str(FI.regionEntry(RI))) + "'";
          return false;
        }
        if (G.substitute(B.Region.at(RName), Ren) != FI.regionNext(RI)) {
          FailWhy = "region '" + RName + "' is rewritten as '" +
                    clip(G.str(B.Region.at(RName))) +
                    "' per iteration but the model rewrites it as '" +
                    clip(G.str(FI.regionNext(RI))) + "'";
          return false;
        }
      }
      return true;
    };

    std::function<bool(unsigned)> Search = [&](unsigned J) -> bool {
      // The bijection search is the one place TV can blow up without
      // interning anything on the prune path, so charge it explicitly:
      // a factorial candidate space must still hit the budget.
      if (Budget)
        Budget->stepOrThrow();
      if (J == N)
        return CheckAssignment();
      for (size_t CI = 0; CI < Cands.size(); ++CI) {
        if (Used[CI] || Cands[CI].Init != FI.init(J))
          continue;
        Used[CI] = true;
        Pick[J] = int(CI);
        if (Search(J + 1))
          return true;
        Used[CI] = false;
        Pick[J] = -1;
      }
      if (FailWhy.empty())
        FailWhy = "no loop variable is initialized to the model's carried "
                  "value " +
                  std::to_string(J) + " ('" + clip(G.str(FI.init(J))) + "')";
      return false;
    };

    if (!Search(0))
      refute("loop at " + Path + " does not implement model binding '" +
             SL.BindingName + "' (" + SL.Path + "): " + FailWhy);

    // Record the witness the search found: this is what turns the verdict
    // into an independently checkable certificate (cert::Rederive replays
    // the assignment instead of re-searching).
    LoopRecord &LR = Rep.Loops[K];
    LR.WitnessLocals.clear();
    for (unsigned J = 0; J < N; ++J)
      LR.WitnessLocals.push_back(Cands[size_t(Pick[J])].Name);
    LR.WitnessRegions.assign(Stored.begin(), Stored.end());
    LR.TargetPath = Path;

    // Commit: matched variables become fold projections; the rest of the
    // assigned locals have unknown post-loop values and are dropped.
    for (const std::string &V : Assigned) {
      T.Locals.erase(V);
      T.LocalDef.erase(V);
    }
    for (unsigned J = 0; J < N; ++J) {
      const Cand &C = Cands[size_t(Pick[J])];
      T.Locals[C.Name] = G.foldOut(SL.Fold, J);
      T.LocalDef[C.Name] = Path;
    }
    for (const std::string &R : Stored) {
      T.Region[R] = G.foldOutArr(SL.Fold, R);
      T.RegionDef[R] = Path;
    }
  }

  //===--------------------------------------------------------------------===//
  // Output comparison.
  //===--------------------------------------------------------------------===//

  void compareOutputs(const SrcState &SS, const TgtState &TT) {
    if (TgtCursor < SrcLoops.size())
      refute("model loop binding '" + SrcLoops[TgtCursor].BindingName + "' (" +
             SrcLoops[TgtCursor].Path +
             ") has no corresponding loop in the target");
    if (Spec.ScalarRets.size() != Fn.Rets.size())
      refute("target returns " + std::to_string(Fn.Rets.size()) +
             " words but the ABI promises " +
             std::to_string(Spec.ScalarRets.size()));

    auto Push = [&](OutputRecord O) {
      O.Matched = O.SrcHash == O.TgtHash && O.SrcTerm == O.TgtTerm;
      Rep.Outputs.push_back(std::move(O));
    };

    for (size_t I = 0; I < Spec.ScalarRets.size(); ++I) {
      const std::string &SN = Spec.ScalarRets[I];
      const std::string &TN = Fn.Rets[I];
      auto SIt = SS.Scal.find(SN);
      if (SIt == SS.Scal.end())
        inconclusive("model result '" + SN + "' is not a tracked scalar");
      auto TIt = TT.Locals.find(TN);
      if (TIt == TT.Locals.end())
        refute("target never defines return local '" + TN + "'");
      OutputRecord O;
      O.Name = SN;
      O.Kind = "scalar";
      O.SrcHash = G.hashOf(SIt->second);
      O.TgtHash = G.hashOf(TIt->second);
      O.SrcTerm = G.str(SIt->second);
      O.TgtTerm = G.str(TIt->second);
      O.Matched = SIt->second == TIt->second;
      if (auto BIt = LastSrcBind.find(SN); BIt != LastSrcBind.end())
        O.SourceBinding = BIt->second;
      if (auto DIt = TT.LocalDef.find(TN); DIt != TT.LocalDef.end())
        O.TargetPath = DIt->second;
      Rep.Outputs.push_back(std::move(O));
    }
    (void)Push;

    for (const auto &[R, SrcContents] : SS.Region) {
      OutputRecord O;
      O.Name = R;
      bool InPlaceArr = std::find(Spec.InPlaceArrays.begin(),
                                  Spec.InPlaceArrays.end(),
                                  R) != Spec.InPlaceArrays.end();
      bool InPlaceCell = std::find(Spec.InPlaceCells.begin(),
                                   Spec.InPlaceCells.end(),
                                   R) != Spec.InPlaceCells.end();
      O.Kind = InPlaceArr ? "array" : InPlaceCell ? "cell" : "frame";
      TermId Tgt = TT.Region.at(R);
      O.SrcHash = G.hashOf(SrcContents);
      O.TgtHash = G.hashOf(Tgt);
      O.SrcTerm = G.str(SrcContents);
      O.TgtTerm = G.str(Tgt);
      O.Matched = SrcContents == Tgt;
      if (auto BIt = LastSrcBind.find(R); BIt != LastSrcBind.end())
        O.SourceBinding = BIt->second;
      if (auto DIt = TT.RegionDef.find(R); DIt != TT.RegionDef.end())
        O.TargetPath = DIt->second;
      Rep.Outputs.push_back(std::move(O));
    }

    for (const OutputRecord &O : Rep.Outputs)
      if (!O.Matched) {
        Rep.TheVerdict = Verdict::Refuted;
        Rep.Reason = "output '" + O.Name + "' [" + O.Kind +
                     "] differs between model and target";
        return;
      }
    Rep.TheVerdict = Verdict::Proved;
  }
};

} // namespace

const char *verdictName(Verdict V) {
  switch (V) {
  case Verdict::Proved:
    return "proved";
  case Verdict::Refuted:
    return "refuted";
  case Verdict::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

std::string TvReport::str() const {
  std::string Out = "translation validation of '" + Fn + "': ";
  switch (TheVerdict) {
  case Verdict::Proved:
    Out += "PROVED";
    break;
  case Verdict::Refuted:
    Out += "REFUTED";
    break;
  case Verdict::Inconclusive:
    Out += "INCONCLUSIVE";
    break;
  }
  Out += " (" + std::to_string(Loops.size()) + " loops, " +
         std::to_string(Bindings.size()) + " bindings, " +
         std::to_string(NumTerms) + " terms)\n";
  if (!Reason.empty())
    Out += "  reason: " + Reason + "\n";
  for (const LoopRecord &L : Loops)
    Out += "  loop #" + std::to_string(L.Ordinal) + " -> binding '" +
           L.Binding + "': fold " + hex64(L.FoldHash) + ", " +
           std::to_string(L.Carried) + " carried, " +
           std::to_string(L.Regions) + " regions\n";
  for (const OutputRecord &O : Outputs) {
    if (O.Matched) {
      Out += "  output '" + O.Name + "' [" + O.Kind + "]: ok " +
             hex64(O.SrcHash) + "\n";
      continue;
    }
    Out += "  output '" + O.Name + "' [" + O.Kind + "]: MISMATCH\n";
    Out += "    model:  " + O.SrcTerm + "\n";
    if (!O.SourceBinding.empty())
      Out += "            (bound at " + O.SourceBinding + ")\n";
    Out += "    target: " + O.TgtTerm + "\n";
    if (!O.TargetPath.empty())
      Out += "            (defined at " + O.TargetPath + ")\n";
  }
  return Out;
}

TvReport validateTranslation(const ir::SourceFn &Src, const sep::FnSpec &Spec,
                             const bedrock::Function &Fn,
                             const analysis::EntryFactList &Hints,
                             const guard::Budget *Budget) {
  Validator V(Src, Spec, Fn, Hints, Budget);
  return V.run();
}

} // namespace tv
} // namespace relc
