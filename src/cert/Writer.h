//===- cert/Writer.h - Canonical certificate serialization ------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The single place certificates are turned into bytes. Output is
// canonical: fixed key order, fixed two-space indentation, one key per
// line — so a given Certificate always renders byte-identically, warm
// cache runs replay cold runs exactly, and `-j N` equals `-j 1` (the
// byte-identity contracts CI diffs). The old path — `.tv.json` string
// assembly by hand inside tv/Tv.cpp — is removed; the TV driver now only
// produces the typed report, and everything on disk goes through here.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CERT_WRITER_H
#define RELC_CERT_WRITER_H

#include "cert/Cert.h"

namespace relc {

namespace tv {
struct TvReport;
}

namespace cert {

class Writer {
public:
  /// Canonical v2 JSON for \p C (schema documented in Cert.h).
  static std::string write(const Certificate &C);
};

/// Assembles a Certificate from a TV report plus the content key of the
/// (model, fnspec, code) triple the report is about. Pure field
/// transcription: needs only the tv report *types*, never the driver.
Certificate fromTvReport(const tv::TvReport &Rep, const ContentKey &Key);

} // namespace cert
} // namespace relc

#endif // RELC_CERT_WRITER_H
