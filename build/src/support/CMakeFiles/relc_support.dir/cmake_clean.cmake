file(REMOVE_RECURSE
  "CMakeFiles/relc_support.dir/SectionCount.cpp.o"
  "CMakeFiles/relc_support.dir/SectionCount.cpp.o.d"
  "CMakeFiles/relc_support.dir/StringExtras.cpp.o"
  "CMakeFiles/relc_support.dir/StringExtras.cpp.o.d"
  "librelc_support.a"
  "librelc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
