//===- rulemeta/Pattern.cpp - Selection-pattern algebra --------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "rulemeta/Pattern.h"
#include "rulemeta/RuleMeta.h"

namespace relc {
namespace rulemeta {

const char *reasonName(Reason R) {
  switch (R) {
  case Reason::RuleShadowed:
    return "rule-shadowed";
  case Reason::RuleOverlap:
    return "rule-overlap";
  case Reason::RuleDead:
    return "rule-dead";
  case Reason::UncoveredConstruct:
    return "uncovered-construct";
  case Reason::RuleCycle:
    return "rule-cycle";
  case Reason::StaleDerivation:
    return "stale-derivation";
  }
  return "unknown";
}

std::string Finding::str() const {
  return std::string(reasonName(Why)) + ": " + Subject + ": " + Detail;
}

std::string Report::str() const {
  std::string Out;
  for (const Finding &F : Findings)
    Out += (Out.empty() ? "" : "\n") + F.str();
  return Out;
}

SelPattern SelPattern::of(const core::GoalPattern &P) {
  SelPattern S;
  for (ir::BoundForm::Kind K : P.Kinds)
    S.KindBits |= 1ULL << unsigned(K);
  S.MinNames = P.MinNames;
  S.MaxNames = P.MaxNames == core::GoalPattern::kAnyArity ? ~0ULL : P.MaxNames;
  return S;
}

SelPattern SelPattern::of(const core::ExprGoalPattern &P) {
  SelPattern S;
  for (ir::Expr::Kind K : P.Kinds)
    S.KindBits |= 1ULL << unsigned(K);
  // Expression bindings have no name arity; leave the degenerate [0, any].
  S.Conditional = !P.MatchConds.empty();
  return S;
}

std::string kindBitName(unsigned Bit, bool Stmt) {
  return Stmt ? ir::boundKindName(ir::BoundForm::Kind(Bit))
              : ir::exprKindName(ir::Expr::Kind(Bit));
}

} // namespace rulemeta
} // namespace relc
