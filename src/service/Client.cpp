//===- service/Client.cpp - relcd wire client ------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/Backoff.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace relc {
namespace service {

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Status Client::connect(const std::string &SocketPath, unsigned TimeoutMs) {
  close();
  sockaddr_un Addr{};
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path))
    return Error("relcd client: socket path unusable: '" + SocketPath + "'");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  auto T0 = std::chrono::steady_clock::now();
  int LastErr = 0;
  for (;;) {
    int S = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (S < 0)
      return Error(std::string("relcd client: socket: ") +
                   std::strerror(errno));
    if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0) {
      Fd = S;
      return Status::success();
    }
    LastErr = errno;
    ::close(S);
    if (msSince(T0) > double(TimeoutMs))
      return Error("relcd client: cannot connect to " + SocketPath + ": " +
                   std::strerror(LastErr));
    // The daemon may still be starting (or restarting): retry shortly.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Result<wire::Message> Client::roundTrip(const wire::Message &Req,
                                        unsigned TimeoutMs) {
  if (Fd < 0)
    return Error("connection-lost: not connected");

  std::string F = wire::frame(wire::encode(Req));
  size_t Off = 0;
  while (Off < F.size()) {
    ssize_t N = ::send(Fd, F.data() + Off, F.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int E = errno;
      close();
      return Error(std::string("connection-lost: send: ") +
                   std::strerror(E));
    }
    Off += size_t(N);
  }

  std::string Buf;
  auto T0 = std::chrono::steady_clock::now();
  for (;;) {
    size_t FrameSize = 0;
    std::string_view Payload;
    wire::FrameStatus FS = wire::splitFrame(Buf, &FrameSize, &Payload);
    if (FS == wire::FrameStatus::Ok) {
      wire::Message Reply;
      std::string Reason;
      if (!wire::decode(Payload, &Reply, &Reason)) {
        close();
        return Error(Reason + ": reply payload rejected");
      }
      return Reply;
    }
    if (FS != wire::FrameStatus::NeedMore) {
      close();
      return Error(std::string(wire::frameStatusReason(FS)) +
                   ": reply frame rejected");
    }

    double Remaining = double(TimeoutMs) - msSince(T0);
    if (Remaining <= 0) {
      close();
      return Error("request-timeout: no complete reply within " +
                   std::to_string(TimeoutMs) + " ms");
    }
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, int(Remaining < 100 ? Remaining + 1 : 100));
    if (R < 0 && errno != EINTR) {
      close();
      return Error(std::string("connection-lost: poll: ") +
                   std::strerror(errno));
    }
    if (R <= 0)
      continue;
    char Tmp[65536];
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int E = errno;
      close();
      return Error(std::string("connection-lost: recv: ") +
                   std::strerror(E));
    }
    if (N == 0) {
      close();
      return Buf.empty()
                 ? Error("connection-lost: server closed the connection")
                 : Error("truncated-frame: server closed mid-reply");
    }
    Buf.append(Tmp, size_t(N));
  }
}

Result<wire::Message> Client::roundTripWithRetry(
    const std::string &SocketPath, const wire::Message &Req,
    const RetryPolicy &Policy, unsigned TimeoutMs, unsigned *Retries) {
  backoff::Schedule Delay({Policy.BaseMs, Policy.CapMs, Policy.Seed});
  const unsigned Attempts = Policy.Attempts ? Policy.Attempts : 1;
  Result<wire::Message> Last = Error("connection-lost: not attempted");
  for (unsigned A = 0; A < Attempts; ++A) {
    if (A) {
      if (Retries)
        ++*Retries;
      unsigned D = Delay.next();
      if (Policy.SleepFn)
        Policy.SleepFn(D);
      else
        std::this_thread::sleep_for(std::chrono::milliseconds(D));
    }
    if (!connected()) {
      // One quick connect probe per attempt; the backoff loop owns the
      // pacing (connect()'s internal retry window stays short so a
      // down daemon costs ~one refused connect per attempt).
      if (Status S = connect(SocketPath, 50); !S) {
        Last = S.takeError();
        continue;
      }
    }
    Result<wire::Message> R = roundTrip(Req, TimeoutMs);
    if (!R) {
      Last = std::move(R); // Lost connection: reconnect and retry.
      continue;
    }
    if (R->TheKind == wire::Kind::ErrorReply &&
        R->Error.Reason == "server-busy") {
      Last = std::move(R); // Backpressure: transient by contract.
      continue;
    }
    return R;
  }
  return Last;
}

} // namespace service
} // namespace relc
