# Empty dependencies file for cgen_tests.
# This may be replaced when dependencies are built.
