# CMAKE generated file: DO NOT EDIT!
# Timestamp file for custom commands dependencies management for relc_generate_c.
