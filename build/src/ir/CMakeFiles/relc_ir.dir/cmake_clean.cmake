file(REMOVE_RECURSE
  "CMakeFiles/relc_ir.dir/Build.cpp.o"
  "CMakeFiles/relc_ir.dir/Build.cpp.o.d"
  "CMakeFiles/relc_ir.dir/Check.cpp.o"
  "CMakeFiles/relc_ir.dir/Check.cpp.o.d"
  "CMakeFiles/relc_ir.dir/Expr.cpp.o"
  "CMakeFiles/relc_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/relc_ir.dir/Interp.cpp.o"
  "CMakeFiles/relc_ir.dir/Interp.cpp.o.d"
  "CMakeFiles/relc_ir.dir/Prog.cpp.o"
  "CMakeFiles/relc_ir.dir/Prog.cpp.o.d"
  "CMakeFiles/relc_ir.dir/Value.cpp.o"
  "CMakeFiles/relc_ir.dir/Value.cpp.o.d"
  "librelc_ir.a"
  "librelc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
