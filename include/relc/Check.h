//===- relc/Check.h - Public certificate-checking surface -------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The public facade over independent certificate checking:
// cert::Rederive::check re-derives every hash a certificate records —
// content key, per-binding traces, loop summaries (replaying recorded
// witnesses, no search), output channels — against a fresh compile,
// with no translation-validation driver in the link. The daemon trust
// story rests on this surface: whatever relcd (or any cache) claims, a
// checker built on relc/Check.h accepts only what it re-derived itself.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_API_CHECK_H
#define RELC_API_CHECK_H

#include "cert/Rederive.h"

#endif // RELC_API_CHECK_H
