file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/CompilerTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/CompilerTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/CondStackTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/CondStackTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ExprCompileTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/ExprCompileTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ExtensionsTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/ExtensionsTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/LoopRulesTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/LoopRulesTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/RandomProgramTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/RandomProgramTest.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
