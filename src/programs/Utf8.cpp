//===- programs/Utf8.cpp - Branchless UTF-8 decoding -------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Branchless UTF-8 decoding in the style of the well-known lookup-table
// decoder: a length table indexed by the top five bits of the lead byte,
// mask/shift tables indexed by the sequence length, and an error word
// assembled from range and continuation checks — no data-dependent
// branches in the hot loop.
//
// The driver model decodes a whole buffer, XOR-folding codepoints into an
// accumulator and OR-folding error bits; buffers shorter than four bytes
// from the end are finished by a scalar tail loop. The ABI requires
// len ≥ 4, supplied to the solver as an entry-fact hint — the paper's
// "incidental property" mechanism (§3.4.2).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

using namespace ir;

namespace {

std::vector<uint64_t> lengthTable() {
  // Index: lead byte >> 3. 0 marks continuation/invalid lead bytes.
  std::vector<uint64_t> T(32, 0);
  for (unsigned I = 0; I < 16; ++I)
    T[I] = 1; // 0x00-0x7F
  for (unsigned I = 24; I < 28; ++I)
    T[I] = 2; // 0xC0-0xDF
  T[28] = T[29] = 3; // 0xE0-0xEF
  T[30] = 4;         // 0xF0-0xF7
  return T;
}

} // namespace

ProgramDef makeUtf8() {
  ProgramDef P;
  P.Name = "utf8";
  P.Description = "Branchless UTF-8 decoding";
  P.SourceFile = "src/programs/Utf8.cpp";
  P.EndToEnd = true;
  P.MinLen = 4;

  // RELC-SECTION-BEGIN: program-utf8-source
  FnBuilder FB("utf8_model", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  FB.table("u8_len", EltKind::U8, lengthTable());
  FB.table("u8_mask", EltKind::U8, {0x00, 0x7f, 0x1f, 0x0f, 0x07});
  FB.table("u8_shiftc", EltKind::U8, {0, 18, 12, 6, 0});
  FB.table("u8_mins", EltKind::U32, {4194304, 0, 128, 2048, 65536});
  FB.table("u8_shifte", EltKind::U8, {0, 6, 4, 2, 0});

  // One decoded codepoint per iteration, branchlessly.
  ProgBuilder Loop;
  Loop.let("b0", b2w(aget("s", v("i"))))
      .let("t", b2w(tget("u8_len", shrw(v("b0"), cw(3)))))
      .let("b1", b2w(aget("s", addw(v("i"), cw(1)))))
      .let("b2", b2w(aget("s", addw(v("i"), cw(2)))))
      .let("b3", b2w(aget("s", addw(v("i"), cw(3)))))
      .let("cp", orw(orw(shlw(andw(v("b0"), b2w(tget("u8_mask", v("t")))),
                              cw(18)),
                         shlw(andw(v("b1"), cw(0x3f)), cw(12))),
                     orw(shlw(andw(v("b2"), cw(0x3f)), cw(6)),
                         andw(v("b3"), cw(0x3f)))))
      .let("cp", shrw(v("cp"), b2w(tget("u8_shiftc", v("t")))))
      .let("err", shlw(bool2w(ltu(v("cp"), tget("u8_mins", v("t")))), cw(6)))
      .let("err", orw(v("err"),
                      shlw(bool2w(eqw(shrw(v("cp"), cw(11)), cw(0x1b))),
                           cw(7))))
      .let("err", orw(v("err"),
                      shlw(bool2w(ltu(cw(0x10ffff), v("cp"))), cw(8))))
      .let("err", orw(v("err"), shrw(andw(v("b1"), cw(0xc0)), cw(2))))
      .let("err", orw(v("err"), shrw(andw(v("b2"), cw(0xc0)), cw(4))))
      .let("err", orw(v("err"), shrw(v("b3"), cw(6))))
      .let("err", xorw(v("err"), cw(0x2a)))
      .let("err", shrw(v("err"), b2w(tget("u8_shifte", v("t")))))
      .let("h", xorw(v("h"), v("cp")))
      .let("e", orw(v("e"), v("err")))
      .let("i", addw(v("i"), addw(v("t"), bool2w(eqw(v("t"), cw(0))))));

  // Tail: remaining bytes decode as single units (non-ASCII is an error).
  ProgBuilder Tail;
  Tail.let("h2", xorw(v("h2"), b2w(aget("s", v("j")))))
      .let("e2", orw(v("e2"),
                     bool2w(ltu(cw(0x7f), b2w(aget("s", v("j")))))));

  ProgBuilder Body;
  Body.let("n", subw(v("len"), cw(3)))
      .letMulti({"i", "h", "e"},
                mkWhile({acc("i", cw(0)), acc("h", cw(0)), acc("e", cw(0))},
                        ltu(v("i"), v("n")), std::move(Loop).ret({"i", "h",
                                                                  "e"}),
                        subw(v("len"), v("i"))))
      .letMulti({"h2", "e2"},
                mkRange("j", v("i"), v("len"),
                        {acc("h2", v("h")), acc("e2", v("e"))},
                        std::move(Tail).ret({"h2", "e2"})))
      .let("r", orw(shlw(andw(v("e2"), cw(0xffffffff)), cw(32)),
                    andw(v("h2"), cw(0xffffffff))));
  P.Model = std::move(FB).done(std::move(Body).ret({"r"}));
  // RELC-SECTION-END: program-utf8-source

  P.Spec = sep::FnSpec("utf8");
  P.Spec.arrayArg("s").lenArg("len", "s").retScalar("r");

  // RELC-SECTION-BEGIN: program-utf8-hints
  // requires-clause hint: the ABI demands len ≥ 4 (decoders that read four
  // bytes per step need the buffer padded); the fact licenses n = len − 3
  // and through it every i+k bound in the hot loop.
  P.Hints.EntryFacts.push_back([](sep::CompState &St) {
    St.Facts.addLe(solver::lc(4), solver::ls("len_s"),
                   "requires: length s >= 4");
  });
  // RELC-SECTION-END: program-utf8-hints

  // Inputs must satisfy the requires clause: pad every buffer to >= 4.
  P.VOpts.MakeInputs = [](const ir::SourceFn &Fn, Rng &R, size_t SizeHint) {
    std::vector<ir::Value> In = validate::defaultInputs(
        Fn, R, SizeHint < 4 ? 4 : SizeHint);
    return In;
  };

  return P;
}

} // namespace programs
} // namespace relc
