//===- support/CommandLine.h - Table-driven flag parsing --------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// One table-driven command-line parser shared by every relc tool
// (relc-gen, relc-lint, relc-check), replacing the per-tool hand-rolled
// argv loops that had drifted apart. The contract all three tools had
// already converged on is preserved exactly:
//
//   - every option is accepted in both -flag and --flag spelling;
//   - value options consume the following argument (-out <dir>);
//   - -h / -help print a generated help page and exit 0;
//   - an unknown option is an error (exit 2), now with a typo
//     suggestion ("did you mean '-out'?") computed by edit distance;
//   - non-dash arguments go to an optional positional handler
//     (relc-lint's and relc-check's program names).
//
// The table is also the single source of the help text, so flags can no
// longer exist without documentation or vice versa.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_COMMANDLINE_H
#define RELC_SUPPORT_COMMANDLINE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace relc {
namespace cl {

/// What parse() decided; the tool maps this onto its exit code.
enum class ParseResult {
  Ok,    ///< All arguments consumed; run the tool.
  Help,  ///< -h/-help was given and the help page printed; exit 0.
  Error, ///< Bad argument; message printed to stderr; exit 2.
};

class OptionTable {
public:
  /// \p Tool names the binary in messages ("relc-gen"); \p Overview is
  /// printed (verbatim, with a trailing blank line) at the top of -help.
  OptionTable(std::string Tool, std::string Overview);

  //===--------------------------------------------------------------------===//
  // Table construction. \p Names lists every accepted single-dash
  // spelling ("-j", "-jobs"); the first is canonical in messages.
  //===--------------------------------------------------------------------===//

  /// A boolean option: presence sets \p Target.
  void flag(std::vector<std::string> Names, bool *Target, std::string Help);

  /// A string-valued option: consumes the next argument into \p Target.
  void str(std::vector<std::string> Names, std::string *Target,
           std::string Meta, std::string Help);

  /// An unsigned option with a minimum (job counts): consumes the next
  /// argument, rejecting non-numeric or < \p Min values.
  void num(std::vector<std::string> Names, unsigned *Target, unsigned Min,
           std::string Meta, std::string Help);

  /// An enumerated option: consumes the next argument into \p Target,
  /// rejecting anything not listed in \p Allowed (the error names every
  /// accepted value). \p Target's initial value is the default and is
  /// left untouched when the flag is absent.
  void choice(std::vector<std::string> Names, std::string *Target,
              std::vector<std::string> Allowed, std::string Meta,
              std::string Help);

  /// A custom option: \p Consume parses the (possibly absent) value.
  /// \p HasValue decides whether the next argument is consumed.
  void custom(std::vector<std::string> Names, bool HasValue, std::string Meta,
              std::string Help,
              std::function<bool(const std::string &Value, std::string *Err)>
                  Consume);

  /// Handler for non-dash arguments, shown as "[<Meta>...]" in the usage
  /// line. Returning false (with \p Err set) aborts parsing with exit 2.
  void positional(std::string Meta, std::string Help,
                  std::function<bool(const std::string &Arg, std::string *Err)>
                      Consume);

  //===--------------------------------------------------------------------===//
  // Parsing and rendering.
  //===--------------------------------------------------------------------===//

  /// Parses argv[Begin..argc). Help goes to stdout; errors to stderr.
  /// \p Begin defaults to 1 (skip the binary name); subcommand drivers
  /// pass 2 to skip the subcommand word as well.
  ParseResult parse(int Argc, char **Argv, int Begin = 1) const;

  /// "usage: <tool> [options] [<meta>...]".
  std::string usageLine() const;

  /// The full generated help page.
  std::string helpText() const;

  /// Closest known option to \p Unknown within edit distance 2, or "".
  std::string suggestion(const std::string &Unknown) const;

private:
  struct Option {
    std::vector<std::string> Names; ///< Single-dash canonical spellings.
    bool HasValue = false;
    std::string Meta; ///< "<dir>", "<n>", ... (value options only).
    std::string Help; ///< May be multi-line; lines after the first wrap.
    std::function<bool(const std::string &, std::string *)> Consume;
  };

  std::string Tool;
  std::string Overview;
  std::vector<Option> Options;
  std::string PosMeta, PosHelp;
  std::function<bool(const std::string &, std::string *)> PosConsume;

  const Option *find(const std::string &Name) const;
};

/// A named set of subcommands, each with its own OptionTable — the
/// `relcd serve|ping|stats|shutdown` driver. argv[1] selects the
/// subcommand; everything after it is parsed by that subcommand's table
/// (so per-subcommand `-help` comes for free), and an unknown subcommand
/// gets the same edit-distance typo suggestions unknown flags get.
class SubcommandSet {
public:
  /// \p Tool names the binary in messages ("relcd"); \p Overview heads
  /// the top-level help page.
  SubcommandSet(std::string Tool, std::string Overview);

  /// Registers subcommand \p Name and returns its table (tool name
  /// "<tool> <name>"). \p Brief is its one-line help entry. The returned
  /// reference stays valid for the SubcommandSet's lifetime.
  OptionTable &add(std::string Name, std::string Brief, std::string Overview);

  /// What dispatch() decided.
  struct Dispatch {
    ParseResult Result = ParseResult::Error;
    std::string Name; ///< Selected subcommand ("" when none was reached).
  };

  /// Selects the subcommand named by argv[1] and parses the rest with its
  /// table. No argv[1], `-h`/`-help`, or `help` prints the top-level help
  /// page (Result = Help); an unknown subcommand prints a suggestion and
  /// errors. `help <sub>` prints that subcommand's help page.
  Dispatch dispatch(int Argc, char **Argv) const;

  /// "usage: <tool> <command> [options]".
  std::string usageLine() const;

  /// The top-level help page listing every subcommand.
  std::string helpText() const;

  /// Closest subcommand name to \p Unknown within edit distance 2, or "".
  std::string suggestion(const std::string &Unknown) const;

private:
  struct Sub {
    std::string Name;
    std::string Brief;
    std::unique_ptr<OptionTable> Table;
  };

  std::string Tool;
  std::string Overview;
  std::vector<Sub> Subs;

  const Sub *find(const std::string &Name) const;
};

} // namespace cl
} // namespace relc

#endif // RELC_SUPPORT_COMMANDLINE_H
