//===- stackm/StackMachine.cpp - The §2 demonstration pair ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "stackm/StackMachine.h"

#include "support/Rng.h"

#include <algorithm>

namespace relc {
namespace stackm {

SExprPtr sInt(int64_t Value) { return std::make_shared<SInt>(Value); }
SExprPtr sAdd(SExprPtr Lhs, SExprPtr Rhs) {
  return std::make_shared<SAdd>(std::move(Lhs), std::move(Rhs));
}
SExprPtr sMul(SExprPtr Lhs, SExprPtr Rhs) {
  return std::make_shared<SMul>(std::move(Lhs), std::move(Rhs));
}

int64_t evalS(const SExpr &E) {
  if (const auto *I = dyn_cast<SInt>(&E))
    return I->value();
  if (const auto *A = dyn_cast<SAdd>(&E))
    return evalS(*A->lhs()) + evalS(*A->rhs());
  const auto *M = cast<SMul>(&E);
  return evalS(*M->lhs()) * evalS(*M->rhs());
}

std::string TOp::str() const {
  switch (TheKind) {
  case Kind::Push:
    return "Push " + std::to_string(Imm);
  case Kind::PopAdd:
    return "PopAdd";
  case Kind::PopMul:
    return "PopMul";
  }
  return "?";
}

std::string str(const TProgram &P) {
  std::string Out = "[";
  for (size_t I = 0; I < P.size(); ++I) {
    if (I != 0)
      Out += "; ";
    Out += P[I].str();
  }
  return Out + "]";
}

std::vector<int64_t> evalT(const TProgram &P, std::vector<int64_t> Stack) {
  return evalT(P, std::move(Stack), nullptr);
}

std::vector<int64_t> evalT(const TProgram &P, std::vector<int64_t> Stack,
                           size_t *MaxDepth) {
  size_t Max = Stack.size();
  // 𝜎Op folded over the program, as in the paper. Invalid pops are no-ops.
  for (const TOp &Op : P) {
    switch (Op.TheKind) {
    case TOp::Kind::Push:
      Stack.push_back(Op.Imm);
      Max = std::max(Max, Stack.size());
      break;
    case TOp::Kind::PopAdd:
    case TOp::Kind::PopMul: {
      if (Stack.size() < 2)
        break;
      int64_t Z2 = Stack.back();
      Stack.pop_back();
      int64_t Z1 = Stack.back();
      Stack.pop_back();
      Stack.push_back(Op.TheKind == TOp::Kind::PopAdd ? Z1 + Z2 : Z1 * Z2);
      break;
    }
    }
  }
  if (MaxDepth)
    *MaxDepth = Max;
  return Stack;
}

//===----------------------------------------------------------------------===//
// Traditional compiler.
//===----------------------------------------------------------------------===//

Result<TProgram> compileStoT(const SExpr &E) {
  if (const auto *I = dyn_cast<SInt>(&E))
    return TProgram{TOp::push(I->value())};
  if (const auto *A = dyn_cast<SAdd>(&E)) {
    Result<TProgram> L = compileStoT(*A->lhs());
    if (!L)
      return L.takeError();
    Result<TProgram> R = compileStoT(*A->rhs());
    if (!R)
      return R.takeError();
    TProgram Out = L.take();
    TProgram Rhs = R.take();
    Out.insert(Out.end(), Rhs.begin(), Rhs.end());
    Out.push_back(TOp::popAdd());
    return Out;
  }
  // The monolithic compiler is closed: SMul is out of its language. This is
  // exactly the contrast §2.3 draws with the open-ended relational compiler.
  return Error("StoT: unsupported construct: " + E.str());
}

//===----------------------------------------------------------------------===//
// Derivations.
//===----------------------------------------------------------------------===//

std::string Derivation::str(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  std::string Out = Pad + RuleName + "  ⊢  " + stackm::str(Emitted) + "  ~  " +
                    (Source ? Source->str() : "?") + "\n";
  for (const auto &C : Children)
    Out += C->str(Indent + 2);
  return Out;
}

unsigned Derivation::size() const {
  unsigned N = 1;
  for (const auto &C : Children)
    N += C->size();
  return N;
}

//===----------------------------------------------------------------------===//
// Rules: one object per lemma.
//===----------------------------------------------------------------------===//

namespace {

/// StoT_RInt: [TPush z] ~ SInt z.
class IntRule : public SRule {
public:
  std::string name() const override { return "StoT_RInt"; }
  bool matches(const SExpr &Goal) const override { return isa<SInt>(&Goal); }
  std::vector<SExprPtr> premises(const SExpr &) const override { return {}; }
  TProgram assemble(const SExpr &Goal,
                    const std::vector<TProgram> &) const override {
    return {TOp::push(cast<SInt>(&Goal)->value())};
  }
};

/// StoT_RAdd: t1 ~ s1 -> t2 ~ s2 -> t1 ++ t2 ++ [TPopAdd] ~ SAdd s1 s2.
class AddRule : public SRule {
public:
  std::string name() const override { return "StoT_RAdd"; }
  bool matches(const SExpr &Goal) const override { return isa<SAdd>(&Goal); }
  std::vector<SExprPtr> premises(const SExpr &Goal) const override {
    const auto *A = cast<SAdd>(&Goal);
    return {A->lhsPtr(), A->rhsPtr()};
  }
  TProgram assemble(const SExpr &,
                    const std::vector<TProgram> &Parts) const override {
    TProgram Out = Parts[0];
    Out.insert(Out.end(), Parts[1].begin(), Parts[1].end());
    Out.push_back(TOp::popAdd());
    return Out;
  }
};

/// Extension: t1 ~ s1 -> t2 ~ s2 -> t1 ++ t2 ++ [TPopMul] ~ SMul s1 s2.
class MulRule : public SRule {
public:
  std::string name() const override { return "Ext_RMul"; }
  bool matches(const SExpr &Goal) const override { return isa<SMul>(&Goal); }
  std::vector<SExprPtr> premises(const SExpr &Goal) const override {
    const auto *M = cast<SMul>(&Goal);
    return {M->lhsPtr(), M->rhsPtr()};
  }
  TProgram assemble(const SExpr &,
                    const std::vector<TProgram> &Parts) const override {
    TProgram Out = Parts[0];
    Out.insert(Out.end(), Parts[1].begin(), Parts[1].end());
    Out.push_back(TOp::popMul());
    return Out;
  }
};

/// True iff \p E is built only from supported constructs (so evalS is its
/// meaning under the trusted semantics).
bool isClosedArith(const SExpr &E) {
  if (isa<SInt>(&E))
    return true;
  if (const auto *A = dyn_cast<SAdd>(&E))
    return isClosedArith(*A->lhs()) && isClosedArith(*A->rhs());
  if (const auto *M = dyn_cast<SMul>(&E))
    return isClosedArith(*M->lhs()) && isClosedArith(*M->rhs());
  return false;
}

/// Extension: for any closed constant subtree s, [TPush (𝜎S s)] ~ s.
/// Demonstrates a semantic (not purely syntactic) rule: its side condition
/// is discharged by evaluation, and the derivation records the folded value
/// so the checker can re-discharge it.
class ConstFoldRule : public SRule {
public:
  std::string name() const override { return "Ext_RConstFold"; }
  bool matches(const SExpr &Goal) const override {
    // Only worth applying when it actually folds a compound term.
    return !isa<SInt>(&Goal) && isClosedArith(Goal);
  }
  std::vector<SExprPtr> premises(const SExpr &) const override { return {}; }
  TProgram assemble(const SExpr &Goal,
                    const std::vector<TProgram> &) const override {
    return {TOp::push(evalS(Goal))};
  }
};

} // namespace

std::unique_ptr<SRule> makeIntRule() { return std::make_unique<IntRule>(); }
std::unique_ptr<SRule> makeAddRule() { return std::make_unique<AddRule>(); }
std::unique_ptr<SRule> makeMulRule() { return std::make_unique<MulRule>(); }
std::unique_ptr<SRule> makeConstFoldRule() {
  return std::make_unique<ConstFoldRule>();
}

SRuleSet SRuleSet::base() {
  SRuleSet RS;
  RS.add(makeIntRule());
  RS.add(makeAddRule());
  return RS;
}

void SRuleSet::add(std::unique_ptr<SRule> Rule) {
  Rules.push_back(std::move(Rule));
}

void SRuleSet::addFront(std::unique_ptr<SRule> Rule) {
  Rules.insert(Rules.begin(), std::move(Rule));
}

//===----------------------------------------------------------------------===//
// Proof-search driver.
//===----------------------------------------------------------------------===//

Result<CompiledS> compileRelational(const SRuleSet &Rules, SExprPtr Source) {
  assert(Source && "null source");
  // First-applicable-rule, no backtracking: predictable search (§3.1).
  for (const auto &Rule : Rules.rules()) {
    if (!Rule->matches(*Source))
      continue;
    std::vector<SExprPtr> Premises = Rule->premises(*Source);
    std::vector<TProgram> Parts;
    auto Node = std::make_unique<Derivation>();
    for (const SExprPtr &P : Premises) {
      Result<CompiledS> Sub = compileRelational(Rules, P);
      if (!Sub)
        return Sub.takeError().note("while proving premise of " +
                                    Rule->name() + " for " + Source->str());
      Parts.push_back(Sub->Program);
      Node->Children.push_back(std::move(Sub->Proof));
    }
    TProgram Out = Rule->assemble(*Source, Parts);
    Node->RuleName = Rule->name();
    Node->Source = Source;
    Node->Emitted = Out;
    Node->Goal = "?t ~ " + Source->str();
    return CompiledS{std::move(Out), std::move(Node)};
  }
  return Error("unsolved goal: ?t ~ " + Source->str() +
               " (no applicable rule; register a lemma for this construct)");
}

//===----------------------------------------------------------------------===//
// Derivation replay: the trusted checker.
//===----------------------------------------------------------------------===//

static TProgram concatWith(const std::vector<const TProgram *> &Parts,
                           TOp Last) {
  TProgram Out;
  for (const TProgram *P : Parts)
    Out.insert(Out.end(), P->begin(), P->end());
  Out.push_back(Last);
  return Out;
}

Status checkDerivation(const Derivation &D) {
  if (!D.Source)
    return Error("derivation node without source term");

  // Children must be valid derivations first (inside-out checking).
  for (const auto &C : D.Children) {
    Status S = checkDerivation(*C);
    if (!S)
      return S.takeError().note("in subderivation of " + D.RuleName);
  }

  const SExpr &Src = *D.Source;
  auto Mismatch = [&](const std::string &Why) -> Status {
    return Error("derivation check failed for rule " + D.RuleName + ": " +
                 Why + " (goal " + D.Goal + ")");
  };

  if (D.RuleName == "StoT_RInt") {
    const auto *I = dyn_cast<SInt>(&Src);
    if (!I)
      return Mismatch("conclusion is not SInt");
    if (!D.Children.empty())
      return Mismatch("StoT_RInt has no premises");
    if (!(D.Emitted == TProgram{TOp::push(I->value())}))
      return Mismatch("emitted program is not [Push z]");
    return Status::success();
  }

  if (D.RuleName == "StoT_RAdd" || D.RuleName == "Ext_RMul") {
    bool IsAdd = D.RuleName == "StoT_RAdd";
    const SExpr *L = nullptr, *R = nullptr;
    if (const auto *A = dyn_cast<SAdd>(&Src); A && IsAdd) {
      L = A->lhs();
      R = A->rhs();
    } else if (const auto *M = dyn_cast<SMul>(&Src); M && !IsAdd) {
      L = M->lhs();
      R = M->rhs();
    } else {
      return Mismatch("conclusion does not match rule head");
    }
    if (D.Children.size() != 2)
      return Mismatch("expected exactly two premises");
    if (D.Children[0]->Source.get() != L &&
        D.Children[0]->Source->str() != L->str())
      return Mismatch("first premise certifies the wrong subterm");
    if (D.Children[1]->Source.get() != R &&
        D.Children[1]->Source->str() != R->str())
      return Mismatch("second premise certifies the wrong subterm");
    TProgram Expect =
        concatWith({&D.Children[0]->Emitted, &D.Children[1]->Emitted},
                   IsAdd ? TOp::popAdd() : TOp::popMul());
    if (!(D.Emitted == Expect))
      return Mismatch("emitted program is not t1 ++ t2 ++ [op]");
    return Status::success();
  }

  if (D.RuleName == "Ext_RConstFold") {
    if (!D.Children.empty())
      return Mismatch("Ext_RConstFold has no premises");
    if (!isClosedArith(Src))
      return Mismatch("side condition failed: source is not closed");
    if (!(D.Emitted == TProgram{TOp::push(evalS(Src))}))
      return Mismatch("folded constant does not match 𝜎S of the source");
    return Status::success();
  }

  return Mismatch("unknown rule (not in the trusted schema set)");
}

Status checkEquivalence(const TProgram &P, const SExpr &E) {
  int64_t Expect = evalS(E);
  Rng R(0xd3adb33f);
  // ∀ zs, 𝜎T t zs = 𝜎S s :: zs — tested on the empty stack plus random ones.
  for (unsigned Trial = 0; Trial < 32; ++Trial) {
    std::vector<int64_t> Stack;
    for (uint64_t I = 0, N = Trial == 0 ? 0 : R.below(6); I < N; ++I)
      Stack.push_back(static_cast<int64_t>(R.next()));
    std::vector<int64_t> Want = Stack;
    Want.push_back(Expect);
    std::vector<int64_t> Got = evalT(P, Stack);
    if (Got != Want)
      return Error("equivalence check failed: 𝜎T(t, zs) != 𝜎S(s) :: zs for " +
                   E.str());
  }
  return Status::success();
}

} // namespace stackm
} // namespace relc
