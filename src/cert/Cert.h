//===- cert/Cert.h - The versioned certificate surface ----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// First-class, versioned equivalence certificates. The paper's central
// claim is that the compiler need not be trusted because every run emits
// a checkable artifact; in Coq that artifact is a proof term the kernel
// re-checks. Here it is a `Certificate`: the translation validator's
// term-graph hashes (per source binding, per loop summary, per output
// channel), the loop-match *witness* the validator's search found, and
// content hashes pinning the exact (model, fnspec, code) triple the
// verdict is about.
//
// This header is the schema. `cert::Writer` (Writer.h) serializes it
// canonically, `cert::Reader` (Reader.h) parses it back (including the
// legacy v1 files the TV driver used to assemble by hand), and
// `cert::Rederive` (Rederive.h) is the independent checker that re-derives
// every hash from the model and the command tree without trusting the TV
// driver — the de Bruijn move: a small checker audits a large searcher.
//
// Schema history:
//   v1  "format": "relc-tv-certificate-v1" — hashes and traces, but no
//       content hashes, no producer identity, and no loop witness; such
//       files are readable (Reader compatibility path) but cannot be
//       independently re-checked, so relc-check rejects them as
//       `unverifiable-v1`.
//   v2  "schema_version": 2 — adds producer identity, model/fnspec/code
//       content hashes (support/Hash FNV-1a over the canonical
//       renderings, the same key the certificate cache uses), per-loop
//       source paths and match witnesses, and per-layer verdict text.
//       A v2 file may additionally carry an optional "codelint" section
//       (versioned independently, cert::CodelintRec) recording the
//       target-side analyzer's verdicts; when present, relc-check
//       re-derives it from the emitted code via relc_codelint_core and
//       rejects on any difference (`codelint-mismatch`).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CERT_CERT_H
#define RELC_CERT_CERT_H

#include "ir/Prog.h"
#include "sep/Spec.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace relc {

namespace bedrock {
struct Function;
}

namespace sep {
class CompState;
}

namespace codelint {
struct Report;
}

namespace cert {

/// The schema version this toolchain writes.
constexpr unsigned kSchemaVersion = 2;

/// Producer identity stamped into every emitted certificate.
constexpr const char *kProducer = "relc-tv";

/// Content-hash triple naming the exact inputs a certificate is about —
/// the same triple the certificate cache keys verdicts on.
struct ContentKey {
  uint64_t ModelHash = 0; ///< Model rendering + compile-hint fact digest.
  uint64_t SpecHash = 0;  ///< Fnspec rendering (ABI, returns, in-place).
  uint64_t CodeHash = 0;  ///< Emitted Bedrock2 function rendering.

  bool operator==(const ContentKey &O) const {
    return ModelHash == O.ModelHash && SpecHash == O.SpecHash &&
           CodeHash == O.CodeHash;
  }
};

/// Entry-fact providers, as the compiler and analyzer consume them
/// (analysis::EntryFactList and core::CompileHints::EntryFacts are this
/// same type; cert names it independently to stay below both layers).
using EntryFacts = std::vector<std::function<void(sep::CompState &)>>;

/// Computes the content key for (model+hints, fnspec, code). This is THE
/// key function: the certificate cache, the certificate writer, and the
/// independent checker all derive their hashes through it, so "the same
/// program" means the same thing everywhere.
ContentKey contentKey(const ir::SourceFn &Model, const EntryFacts &Hints,
                      const sep::FnSpec &Spec, const bedrock::Function &Code);

//===----------------------------------------------------------------------===//
// Certificate records (mirroring the TV trace, but owned by cert so the
// schema cannot drift silently under the validator's internals).
//===----------------------------------------------------------------------===//

/// One source binding's normalized value hash.
struct BindingRec {
  std::string Path; ///< "2", "4.then.0", ... (binding index path).
  std::string Name; ///< Bound name(s), comma-joined for multi-binds.
  uint64_t Hash = 0;
};

/// One matched loop pair: the model's summary plus the search's witness.
struct LoopRec {
  unsigned Ordinal = 0;
  std::string Binding;    ///< The model binding the loop came from.
  std::string Path;       ///< Source binding path of the loop.
  uint64_t FoldHash = 0;  ///< Hash of the shared Fold summary node.
  unsigned Carried = 0;
  unsigned Regions = 0;
  /// The match witness: target local implementing carried position j
  /// (size == Carried for a proved certificate), the regions the target
  /// loop stores to, and the While statement's path. With the witness
  /// recorded, the checker replays the match as a deterministic
  /// verification — no bijection search.
  std::vector<std::string> WitnessLocals;
  std::vector<std::string> WitnessRegions;
  std::string TargetPath;
};

/// One fnspec output channel's comparison.
struct OutputRec {
  std::string Name;
  std::string Kind; ///< "scalar", "array", "cell", or "frame".
  uint64_t SrcHash = 0, TgtHash = 0;
  bool Matched = false;
  std::string SourceBinding; ///< Last model binding of Name.
  std::string TargetPath;    ///< Last target statement defining it.
};

/// The optional target-side codelint section (DESIGN.md §4.9): the
/// analyzer's three verdicts plus the resource numbers they certify.
/// Versioned independently of the certificate schema so the analyzer can
/// evolve without a schema bump; the checker re-derives the whole record
/// from the emitted code and compares field-for-field.
struct CodelintRec {
  unsigned Version = 0;     ///< codelint::kCodelintVersion at write time.
  std::string Mem;          ///< "safe" / "unknown" / "unsafe".
  std::string Stack;
  std::string Steps;
  uint64_t Accesses = 0;    ///< Memory accesses proved in-bounds.
  uint64_t LocalsBytes = 0; ///< Worst-case locals footprint.
  uint64_t ScratchBytes = 0;///< Worst-case live stackalloc bytes.
  uint64_t OperandDepth = 0;///< stackm max operand-stack depth (else 0).
  uint64_t StepBound = 0;   ///< Step envelope when Steps == "safe".

  bool operator==(const CodelintRec &O) const {
    return Version == O.Version && Mem == O.Mem && Stack == O.Stack &&
           Steps == O.Steps && Accesses == O.Accesses &&
           LocalsBytes == O.LocalsBytes && ScratchBytes == O.ScratchBytes &&
           OperandDepth == O.OperandDepth && StepBound == O.StepBound;
  }
};

/// Projects an analyzer report into the certificate record (stamping the
/// current analyzer version). Both the pipeline's writer and the checker's
/// re-derivation go through this one function, so "the same analysis"
/// means the same thing on both sides.
CodelintRec codelintRecOf(const codelint::Report &R);

struct Certificate {
  unsigned SchemaVersion = kSchemaVersion;
  std::string Producer = kProducer;
  std::string Function; ///< Target function name.
  ContentKey Key;       ///< Zero (unusable) for v1 files.
  std::string Verdict;  ///< "proved" / "refuted" / "inconclusive".
  std::string Reason;   ///< Refutation / inconclusiveness explanation.
  uint64_t NumTerms = 0; ///< Informational: the producer's graph size
                         ///< (not re-derivable — the search interns
                         ///< candidate terms the checker never builds).
  std::vector<LoopRec> Loops;
  std::vector<BindingRec> Bindings;
  std::vector<OutputRec> Outputs;
  /// Present iff the pipeline's codelint layer ran to completion
  /// (un-degraded, budget not exhausted) when the certificate was written.
  std::optional<CodelintRec> Codelint;

  bool proved() const { return Verdict == "proved"; }
};

//===----------------------------------------------------------------------===//
// Named rejection reasons (the checker's entire output vocabulary; CI and
// the tamper-corpus tests match on these exact strings).
//===----------------------------------------------------------------------===//

enum class Reject : uint8_t {
  MissingCertificate,   ///< No certificate file for the program.
  MalformedCertificate, ///< Not parseable as any known schema.
  UnknownSchemaVersion, ///< schema_version from a future toolchain.
  UnverifiableV1,       ///< v1 file: readable, but carries no content
                        ///< hashes or witness — cannot be re-checked.
  FunctionMismatch,     ///< Certificate names a different function.
  StaleModel,           ///< Model hash differs from the suite's model.
  StaleSpec,            ///< Fnspec hash differs.
  StaleCode,            ///< Code hash differs from the fresh compile.
  VerdictNotProved,     ///< Only proved certificates are acceptable.
  TruncatedTrace,       ///< Binding trace shorter/longer than derived.
  BindingTraceMismatch, ///< A binding path/name/hash differs.
  LoopSummaryMismatch,  ///< A loop's fold hash or shape differs.
  LoopWitnessMismatch,  ///< The recorded witness fails verification.
  OutputMismatch,       ///< An output channel's record differs.
  CodelintMismatch,     ///< The codelint section differs from what the
                        ///< checker re-derives from the emitted code.
  RederivationFailed,   ///< The checker could not model the program.
  // Binary-image rejections (cert/Binary.h). The mmap'd image is
  // untrusted input: each of these names one way it can lie.
  TruncatedImage,       ///< Image shorter than its header claims.
  IntegrityMismatch,    ///< Trailing integrity hash does not cover the
                        ///< image bytes.
  BadMagic,             ///< Leading magic is not a relc binary cert.
  OffsetOutOfRange,     ///< A record or string slice escapes the image.
};

/// Stable kebab-case name ("missing-certificate", ...).
const char *rejectName(Reject R);

/// One certificate check's outcome.
struct CheckResult {
  bool Accepted = false;
  Reject Why = Reject::RederivationFailed; ///< Meaningful when rejected.
  std::string Detail;                      ///< Human explanation.

  static CheckResult accept() { return {true, Reject::RederivationFailed, ""}; }
  static CheckResult reject(Reject R, std::string Detail) {
    return {false, R, std::move(Detail)};
  }
};

} // namespace cert
} // namespace relc

#endif // RELC_CERT_CERT_H
