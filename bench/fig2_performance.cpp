//===- bench/fig2_performance.cpp - Figure 2: generated vs handwritten -----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 2: cycles per byte on 1 MiB inputs for the seven
// benchmark programs, relationally generated C ("Rupicola") against
// handwritten C, both compiled by the same host compiler at the same
// optimization level. Error bars are 95% confidence intervals over
// repeated runs (the paper uses 1000 runs of 1 MiB; we default to 200,
// which gives comparable intervals).
//
// Outputs both google-benchmark rows (bytes/sec + cycles_per_byte
// counters) and, afterwards, the paper-shaped summary table with the
// Rupicola/handwritten ratio per program.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "ref_impls.h"
#include "relc_generated.h"

#include <benchmark/benchmark.h>

#include <cassert>
#include <cstring>

using namespace relc_bench;

namespace {

constexpr size_t kBufSize = 1 << 20; // 1 MiB, as in the paper.
constexpr unsigned kReps = 200;

struct Task {
  const char *Name;
  std::vector<uint8_t> (*MakeInput)(size_t, uint64_t);
  /// Runs one full pass over the buffer; result folded into a sink to
  /// defeat dead-code elimination. Mutating tasks work on a scratch copy.
  uint64_t (*RunGenerated)(uint8_t *, size_t);
  uint64_t (*RunHandwritten)(uint8_t *, size_t);
  bool Mutates;
};

uint64_t genFnv1a(uint8_t *S, size_t N) {
  return relc_fnv1a(uintptr_t(S), N);
}
uint64_t refFnv1aRun(uint8_t *S, size_t N) { return ref_fnv1a(S, N); }

uint64_t genUtf8(uint8_t *S, size_t N) { return relc_utf8(uintptr_t(S), N); }
uint64_t refUtf8Run(uint8_t *S, size_t N) { return ref_utf8(S, N); }

uint64_t genUpstr(uint8_t *S, size_t N) {
  relc_upstr(uintptr_t(S), N);
  return S[0];
}
uint64_t refUpstrRun(uint8_t *S, size_t N) {
  ref_upstr(S, N);
  return S[0];
}

// m3s is a scalar kernel; the driver scrambles every 32-bit word of the
// buffer (identical driver on both sides, so the comparison isolates the
// kernel + call).
uint64_t genM3s(uint8_t *S, size_t N) {
  uint64_t Acc = 0;
  for (size_t I = 0; I + 4 <= N; I += 4) {
    uint32_t K;
    std::memcpy(&K, S + I, 4);
    Acc ^= relc_m3s(K);
  }
  return Acc;
}
uint64_t refM3sRun(uint8_t *S, size_t N) {
  uint64_t Acc = 0;
  for (size_t I = 0; I + 4 <= N; I += 4) {
    uint32_t K;
    std::memcpy(&K, S + I, 4);
    Acc ^= ref_m3s(K);
  }
  return Acc;
}

uint64_t genIp(uint8_t *S, size_t N) { return relc_ip_chk(uintptr_t(S), N); }
uint64_t refIpRun(uint8_t *S, size_t N) { return ref_ip_chk(S, N); }

uint64_t genFasta(uint8_t *S, size_t N) {
  relc_fasta(uintptr_t(S), N);
  return S[0];
}
uint64_t refFastaRun(uint8_t *S, size_t N) {
  ref_fasta(S, N);
  return S[0];
}

uint64_t genCrc32(uint8_t *S, size_t N) {
  return relc_crc32(uintptr_t(S), N);
}
uint64_t refCrc32Run(uint8_t *S, size_t N) { return ref_crc32(S, N); }

const Task kTasks[] = {
    {"fnv1a", randomBytes, genFnv1a, refFnv1aRun, false},
    {"utf8", utf8Bytes, genUtf8, refUtf8Run, false},
    {"upstr", asciiBytes, genUpstr, refUpstrRun, true},
    {"m3s", randomBytes, genM3s, refM3sRun, false},
    {"ip", randomBytes, genIp, refIpRun, false},
    {"fasta", dnaBytes, genFasta, refFastaRun, true},
    {"crc32", randomBytes, genCrc32, refCrc32Run, false},
};

/// Cross-checks that both implementations agree before any timing: the
/// bench refuses to compare semantically different programs.
void crossCheck() {
  for (const Task &T : kTasks) {
    std::vector<uint8_t> In = T.MakeInput(4096, 42);
    std::vector<uint8_t> A = In, B = In;
    uint64_t RA = T.RunGenerated(A.data(), A.size());
    uint64_t RB = T.RunHandwritten(B.data(), B.size());
    if (RA != RB || A != B) {
      std::fprintf(stderr,
                   "fig2: generated and handwritten '%s' disagree; refusing "
                   "to benchmark\n",
                   T.Name);
      std::exit(1);
    }
  }
}

void benchOne(benchmark::State &State, const Task &T, bool Generated) {
  std::vector<uint8_t> Input = T.MakeInput(kBufSize, 0xf19u + Generated);
  std::vector<uint8_t> Scratch = Input;
  uint64_t Sink = 0;
  for (auto _ : State) {
    if (T.Mutates)
      Scratch = Input; // Copy excluded? No: kept inside; both sides pay it.
    Sink ^= (Generated ? T.RunGenerated : T.RunHandwritten)(Scratch.data(),
                                                            Scratch.size());
    benchmark::DoNotOptimize(Sink);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(kBufSize));
  // cycles/byte from a clean measurement pass (no copy overhead).
  std::vector<uint8_t> Buf = Input;
  auto Runner = [&] {
    if (T.Mutates)
      std::memcpy(Buf.data(), Input.data(), Input.size());
    uint64_t R =
        (Generated ? T.RunGenerated : T.RunHandwritten)(Buf.data(),
                                                        Buf.size());
    benchmark::DoNotOptimize(R);
  };
  Stats S = cyclesPerByte(Runner, kBufSize, 24);
  State.counters["cycles_per_byte"] = S.Mean;
}

void registerAll() {
  for (const Task &T : kTasks) {
    benchmark::RegisterBenchmark(
        (std::string("fig2/") + T.Name + "/rupicola").c_str(),
        [&T](benchmark::State &S) { benchOne(S, T, true); });
    benchmark::RegisterBenchmark(
        (std::string("fig2/") + T.Name + "/handwritten_c").c_str(),
        [&T](benchmark::State &S) { benchOne(S, T, false); });
  }
}

/// The paper-shaped table: per program, cycles/byte ±95% CI for both
/// implementations, plus the ratio (1.00 = parity, the paper's claim).
void paperTable() {
  std::printf("\n=== Figure 2: cycles per byte, 1 MiB input, %u runs, 95%% "
              "CI (lower is better) ===\n",
              kReps);
  std::printf("TSC ~%.2f GHz\n", estimateGHz());
  std::printf("%-8s %22s %22s %8s\n", "program", "Rupicola (generated C)",
              "handwritten C", "ratio");
  for (const Task &T : kTasks) {
    std::vector<uint8_t> Input = T.MakeInput(kBufSize, 0xbeef);
    std::vector<uint8_t> Buf = Input;
    auto Mk = [&](bool Gen) {
      return [&, Gen] {
        if (T.Mutates)
          std::memcpy(Buf.data(), Input.data(), Input.size());
        uint64_t R = (Gen ? T.RunGenerated : T.RunHandwritten)(Buf.data(),
                                                               Buf.size());
        benchmark::DoNotOptimize(R);
      };
    };
    Stats G = cyclesPerByte(Mk(true), kBufSize, kReps);
    Stats H = cyclesPerByte(Mk(false), kBufSize, kReps);
    std::printf("%-8s %13.3f ± %6.3f %13.3f ± %6.3f %7.2fx\n", T.Name,
                G.Mean, G.Ci95, H.Mean, H.Ci95,
                H.Mean > 0 ? G.Mean / H.Mean : 0.0);
  }
  std::printf("(paper: ratios within optimizing-compiler fluctuation of "
              "1.0x across GCC/Clang; one missed vectorization in upstr "
              "with GCC)\n");
}

} // namespace

int main(int argc, char **argv) {
  crossCheck();
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  paperTable();
  return 0;
}
