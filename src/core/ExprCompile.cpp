//===- core/ExprCompile.cpp - Relational expression compiler ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/ExprCompile.h"

#include "core/Compiler.h"

#include <algorithm>

namespace relc {
namespace core {

using bedrock::AccessSize;
using ir::EltKind;
using ir::Ty;
using sep::SymVal;
using solver::lc;
using solver::LinTerm;
using solver::ls;

bedrock::AccessSize accessSize(EltKind Elt) {
  switch (Elt) {
  case EltKind::U8:
    return AccessSize::Byte;
  case EltKind::U16:
    return AccessSize::Two;
  case EltKind::U32:
    return AccessSize::Four;
  case EltKind::U64:
    return AccessSize::Eight;
  }
  return AccessSize::Byte;
}

bedrock::BinOp lowerWordOp(ir::WordOp Op) {
  switch (Op) {
  case ir::WordOp::Add:
    return bedrock::BinOp::Add;
  case ir::WordOp::Sub:
    return bedrock::BinOp::Sub;
  case ir::WordOp::Mul:
    return bedrock::BinOp::Mul;
  case ir::WordOp::DivU:
    return bedrock::BinOp::DivU;
  case ir::WordOp::RemU:
    return bedrock::BinOp::RemU;
  case ir::WordOp::And:
    return bedrock::BinOp::And;
  case ir::WordOp::Or:
    return bedrock::BinOp::Or;
  case ir::WordOp::Xor:
    return bedrock::BinOp::Xor;
  case ir::WordOp::Shl:
    return bedrock::BinOp::Shl;
  case ir::WordOp::LShr:
    return bedrock::BinOp::LShr;
  case ir::WordOp::AShr:
    return bedrock::BinOp::AShr;
  case ir::WordOp::LtU:
    return bedrock::BinOp::LtU;
  case ir::WordOp::LtS:
    return bedrock::BinOp::LtS;
  case ir::WordOp::Eq:
    return bedrock::BinOp::Eq;
  case ir::WordOp::Ne:
    return bedrock::BinOp::Ne;
  }
  return bedrock::BinOp::Add;
}

bedrock::ExprPtr scaledAddress(bedrock::ExprPtr Ptr, bedrock::ExprPtr Index,
                               EltKind Elt) {
  if (Elt == EltKind::U8)
    return bedrock::add(std::move(Ptr), std::move(Index));
  return bedrock::add(std::move(Ptr),
                      bedrock::mul(std::move(Index),
                                   bedrock::lit(ir::eltSize(Elt))));
}

namespace {

/// Creates a fresh result symbol with the always-valid facts: words are
/// nonnegative, and byte-typed results are ≤ 255.
SymVal freshResult(sep::CompState &St, const std::string &Hint, Ty T) {
  SymVal V = SymVal::sym(St.freshSym(Hint));
  St.Facts.addGe0(V.term(), "word is nonnegative");
  if (T == Ty::Byte)
    St.Facts.addLe(V.term(), lc(255), "byte value");
  if (T == Ty::Bool)
    St.Facts.addLe(V.term(), lc(1), "bool value");
  return V;
}

/// Upper bound for values of an element kind, when it fits int64.
int64_t eltUpperBound(EltKind K) {
  switch (K) {
  case EltKind::U8:
    return 255;
  case EltKind::U16:
    return 65535;
  case EltKind::U32:
    return int64_t(0xffffffffll);
  case EltKind::U64:
    return -1; // No representable bound.
  }
  return -1;
}

//===----------------------------------------------------------------------===//
// Literals and variables.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: expr-lemma-const
class ConstRule : public ExprRule {
public:
  std::string name() const override { return "expr_compile_literal"; }
  ExprGoalPattern pattern() const override {
    ExprGoalPattern P;
    P.Kinds = {ir::Expr::Kind::Const};
    return P;
  }
  bool matches(const CompileCtx &, const ir::Expr &E) const override {
    return isa<ir::Const>(&E);
  }
  Result<CompiledExpr> apply(CompileCtx &, ExprCompiler &, const ir::Expr &E,
                             DerivNode &) override {
    const ir::Value &V = cast<ir::Const>(&E)->value();
    CompiledExpr Out;
    Out.E = bedrock::lit(V.scalar());
    Out.Val = SymVal::constant(V.scalar());
    switch (V.kind()) {
    case ir::Value::Kind::Word:
      Out.Type = Ty::Word;
      break;
    case ir::Value::Kind::Byte:
      Out.Type = Ty::Byte;
      break;
    case ir::Value::Kind::Bool:
      Out.Type = Ty::Bool;
      break;
    default:
      return Error("non-scalar literal in expression");
    }
    return Out;
  }
};
// RELC-SECTION-END: expr-lemma-const

// RELC-SECTION-BEGIN: expr-lemma-var
class VarRule : public ExprRule {
public:
  std::string name() const override { return "expr_compile_var"; }
  ExprGoalPattern pattern() const override {
    ExprGoalPattern P;
    P.Kinds = {ir::Expr::Kind::VarRef};
    P.SideConds = {"var-is-live-scalar"};
    return P;
  }
  bool matches(const CompileCtx &, const ir::Expr &E) const override {
    return isa<ir::VarRef>(&E);
  }
  Result<CompiledExpr> apply(CompileCtx &Ctx, ExprCompiler &, const ir::Expr &E,
                             DerivNode &) override {
    const auto *V = cast<ir::VarRef>(&E);
    auto It = Ctx.State.Locals.find(V->name());
    if (It == Ctx.State.Locals.end())
      return Error("unsolved goal: no local holds the value of '" +
                   V->name() + "'")
          .note(Ctx.State.str());
    if (It->second.TheKind != sep::TargetSlot::Kind::Scalar)
      return Error("'" + V->name() +
                   "' is a pointer; it cannot appear in scalar expressions");
    CompiledExpr Out;
    Out.E = bedrock::var(V->name());
    Out.Val = It->second.Val;
    Out.Type = It->second.ScalarTy;
    return Out;
  }
};
// RELC-SECTION-END: expr-lemma-var

//===----------------------------------------------------------------------===//
// Binary operators.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: expr-lemma-binop
/// Compiles word operators, attaching definitional facts to the result
/// symbol where they are unconditionally valid over ℕ (masks, shifts,
/// division) or where absence of wraparound is provable (addition,
/// subtraction, multiplication). Conservative when nothing is provable:
/// the result is simply opaque.
class BinRule : public ExprRule {
public:
  std::string name() const override { return "expr_compile_binop"; }
  ExprGoalPattern pattern() const override {
    ExprGoalPattern P;
    P.Kinds = {ir::Expr::Kind::Bin};
    P.EmitsExprGoals = true;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Expr &E) const override {
    return isa<ir::Bin>(&E);
  }

  Result<CompiledExpr> apply(CompileCtx &Ctx, ExprCompiler &EC,
                             const ir::Expr &E, DerivNode &D) override {
    const auto *B = cast<ir::Bin>(&E);
    Result<CompiledExpr> L = EC.compileTyped(*B->lhs(), Ty::Word, D);
    if (!L)
      return L.takeError();
    Result<CompiledExpr> R = EC.compileTyped(*B->rhs(), Ty::Word, D);
    if (!R)
      return R.takeError();

    CompiledExpr Out;
    Out.Pre = L->Pre;
    Out.Pre.insert(Out.Pre.end(), R->Pre.begin(), R->Pre.end());
    Out.Type = ir::wordOpIsCompare(B->op()) ? Ty::Bool : Ty::Word;

    // Constant folding keeps symbolic values precise and target code tidy.
    if (L->Val.IsConst && R->Val.IsConst) {
      uint64_t K = ir::evalWordOp(B->op(), L->Val.K, R->Val.K);
      Out.E = bedrock::lit(K);
      Out.Val = SymVal::constant(K);
      return Out;
    }

    Out.E = bedrock::bin(lowerWordOp(B->op()), L->E, R->E);
    Out.Val = freshResult(Ctx.State, "t", Out.Type);
    addDefinitionalFacts(Ctx.State, B->op(), L->Val, R->Val, Out.Val);
    return Out;
  }

private:
  /// Facts connecting the result symbol T to operands A, B.
  static void addDefinitionalFacts(sep::CompState &St, ir::WordOp Op,
                                   const SymVal &A, const SymVal &B,
                                   const SymVal &T) {
    LinTerm TA = A.term(), TB = B.term(), TT = T.term();
    // Budgeted probe: a miss here only loses an optional fact (required
    // side conditions elsewhere still get the solver's full effort).
    auto ProvableLe = [&](const LinTerm &X, const LinTerm &Y) {
      return St.Facts.probeLe(X, Y);
    };
    // After a definitional equation, cache a derived constant bound for
    // the result symbol so later probes stay on the interval fast path.
    auto CacheBound = [&](const LinTerm &Def) {
      if (std::optional<int64_t> UB = St.Facts.intervalUpperBound(Def))
        St.Facts.addLe(TT, solver::lc(*UB), "derived interval bound");
    };
    constexpr int64_t kNoWrap = int64_t(1) << 62;

    switch (Op) {
    case ir::WordOp::Add:
      if (ProvableLe(TA + TB, lc(kNoWrap))) {
        St.Facts.addEq(TT, TA + TB, "definition of +, no wrap");
        CacheBound(TA + TB);
      }
      break;
    case ir::WordOp::Sub:
      if (ProvableLe(TB, TA)) {
        St.Facts.addEq(TT, TA - TB, "definition of -, no borrow");
        CacheBound(TA - TB);
      }
      break;
    case ir::WordOp::Mul: {
      // Only constant factors stay linear.
      const SymVal *Var = nullptr;
      const SymVal *Cst = nullptr;
      if (A.IsConst && !B.IsConst) {
        Cst = &A;
        Var = &B;
      } else if (B.IsConst && !A.IsConst) {
        Cst = &B;
        Var = &A;
      }
      if (Cst && Cst->K > 0 && Cst->K < (uint64_t(1) << 31) &&
          ProvableLe(Var->term(), lc(kNoWrap / int64_t(Cst->K)))) {
        St.Facts.addEq(TT, Var->term().scaled(int64_t(Cst->K)),
                       "definition of *const, no wrap");
        CacheBound(Var->term().scaled(int64_t(Cst->K)));
      }
      break;
    }
    case ir::WordOp::And:
      // x & y ≤ x and x & y ≤ y, unconditionally.
      St.Facts.addLe(TT, TA, "mask bound (lhs)");
      St.Facts.addLe(TT, TB, "mask bound (rhs)");
      break;
    case ir::WordOp::Or:
      // x | y ≤ x + y over ℕ.
      St.Facts.addLe(TT, TA + TB, "or bound");
      break;
    case ir::WordOp::Shl:
      if (B.IsConst && B.K <= 32 &&
          ProvableLe(TA, lc(kNoWrap >> B.K))) {
        St.Facts.addEq(TT, TA.scaled(int64_t(uint64_t(1) << B.K)),
                       "definition of <<const, no wrap");
        CacheBound(TA.scaled(int64_t(uint64_t(1) << B.K)));
      }
      break;
    case ir::WordOp::LShr:
      if (B.IsConst && B.K <= 32) {
        int64_t P = int64_t(uint64_t(1) << B.K);
        // 2^k·t ≤ a ≤ 2^k·t + 2^k − 1, unconditionally over ℕ.
        St.Facts.addLe(TT.scaled(P), TA, "shift-right lower");
        St.Facts.addLe(TA, TT.scaled(P) + lc(P - 1), "shift-right upper");
      }
      St.Facts.addLe(TT, TA, "shift-right shrinks");
      break;
    case ir::WordOp::DivU:
      if (B.IsConst && B.K > 0 && B.K < (uint64_t(1) << 31)) {
        St.Facts.addLe(TT.scaled(int64_t(B.K)), TA, "division lower");
        St.Facts.addLe(TT, TA, "division shrinks");
      }
      break;
    case ir::WordOp::RemU:
      if (B.IsConst && B.K > 0 && B.K < (uint64_t(1) << 31))
        St.Facts.addLe(TT, lc(int64_t(B.K) - 1), "remainder bound");
      St.Facts.addLe(TT, TA, "remainder shrinks");
      break;
    default:
      break; // Xor, AShr, comparisons: only the generic ≥ 0 / ≤ 1 facts.
    }
  }
};
// RELC-SECTION-END: expr-lemma-binop

//===----------------------------------------------------------------------===//
// Casts.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: expr-lemma-cast
class CastRule : public ExprRule {
public:
  std::string name() const override { return "expr_compile_cast"; }
  ExprGoalPattern pattern() const override {
    ExprGoalPattern P;
    P.Kinds = {ir::Expr::Kind::Cast};
    P.EmitsExprGoals = true;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Expr &E) const override {
    return isa<ir::Cast>(&E);
  }
  Result<CompiledExpr> apply(CompileCtx &Ctx, ExprCompiler &EC,
                             const ir::Expr &E, DerivNode &D) override {
    const auto *C = cast<ir::Cast>(&E);
    Result<CompiledExpr> V = EC.compile(*C->operand(), D);
    if (!V)
      return V.takeError();
    CompiledExpr Out = *V;
    switch (C->castKind()) {
    case ir::CastKind::ByteToWord:
      if (Out.Type != Ty::Byte)
        return Error("b2w applied to non-byte expression");
      // Bytes are stored zero-extended in locals; the word is the same.
      Out.Type = Ty::Word;
      return Out;
    case ir::CastKind::BoolToWord:
      if (Out.Type != Ty::Bool)
        return Error("Z.b2z applied to non-bool expression");
      Out.Type = Ty::Word;
      return Out;
    case ir::CastKind::WordToByte: {
      if (Out.Type != Ty::Word)
        return Error("w2b applied to non-word expression");
      // When the operand is already provably a byte, truncation is the
      // identity and no mask is emitted (keeps hot loops tidy).
      if (Out.Val.IsConst) {
        uint64_t K = Out.Val.K & 0xff;
        Out.E = bedrock::lit(K);
        Out.Val = SymVal::constant(K);
        Out.Type = Ty::Byte;
        return Out;
      }
      if (Ctx.State.Facts.entailsLe(Out.Val.term(), lc(255))) {
        D.SideConds.push_back(Out.Val.str() + " <= 255 (w2b is identity)");
        Out.Type = Ty::Byte;
        return Out;
      }
      SymVal T = freshResult(Ctx.State, "b", Ty::Byte);
      Ctx.State.Facts.addLe(T.term(), Out.Val.term(), "truncation shrinks");
      Out.E = bedrock::bin(bedrock::BinOp::And, Out.E, bedrock::lit(0xff));
      Out.Val = T;
      Out.Type = Ty::Byte;
      return Out;
    }
    }
    return Error("unknown cast");
  }
};
// RELC-SECTION-END: expr-lemma-cast

//===----------------------------------------------------------------------===//
// Expression-level conditionals.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: expr-lemma-select
/// Materializes `if c then a else b` through a temporary local and a
/// target-level conditional. The temporary's name is compiler-chosen; the
/// result symbol is opaque apart from its type bound.
class SelectRule : public ExprRule {
public:
  std::string name() const override { return "expr_compile_select"; }
  ExprGoalPattern pattern() const override {
    ExprGoalPattern P;
    P.Kinds = {ir::Expr::Kind::Select};
    P.EmitsExprGoals = true;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Expr &E) const override {
    return isa<ir::Select>(&E);
  }
  Result<CompiledExpr> apply(CompileCtx &Ctx, ExprCompiler &EC,
                             const ir::Expr &E, DerivNode &D) override {
    const auto *S = cast<ir::Select>(&E);
    Result<CompiledExpr> C = EC.compileTyped(*S->cond(), Ty::Bool, D);
    if (!C)
      return C.takeError();
    Result<CompiledExpr> T = EC.compile(*S->thenExpr(), D);
    if (!T)
      return T.takeError();
    Result<CompiledExpr> F = EC.compile(*S->elseExpr(), D);
    if (!F)
      return F.takeError();
    if (T->Type != F->Type)
      return Error("select branches have different types");

    std::string Tmp = Ctx.State.freshLocal("sel");
    SymVal V = freshResult(Ctx.State, "sel", T->Type);
    Ctx.State.Locals[Tmp] = sep::TargetSlot::scalar(V, T->Type);
    // Propagate a common provable bound across the arms (e.g. both arms
    // byte-ranged ⇒ no w2b mask downstream).
    for (int64_t Bound : {int64_t(1), int64_t(255), int64_t(65535),
                          int64_t(0xffffffffll)}) {
      if (Ctx.State.Facts.entailsLe(T->Val.term(), lc(Bound)) &&
          Ctx.State.Facts.entailsLe(F->Val.term(), lc(Bound))) {
        Ctx.State.Facts.addLe(V.term(), lc(Bound), "select arms bound");
        break;
      }
    }

    CompiledExpr Out;
    Out.Pre = C->Pre;
    bedrock::CmdPtr Then = bedrock::seqAll([&] {
      std::vector<bedrock::CmdPtr> Cs = T->Pre;
      Cs.push_back(bedrock::set(Tmp, T->E));
      return Cs;
    }());
    bedrock::CmdPtr Else = bedrock::seqAll([&] {
      std::vector<bedrock::CmdPtr> Cs = F->Pre;
      Cs.push_back(bedrock::set(Tmp, F->E));
      return Cs;
    }());
    Out.Pre.push_back(bedrock::ifThenElse(C->E, Then, Else));
    Out.E = bedrock::var(Tmp);
    Out.Val = V;
    Out.Type = T->Type;
    return Out;
  }
};
// RELC-SECTION-END: expr-lemma-select

//===----------------------------------------------------------------------===//
// Array reads.
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: expr-lemma-arrayget
/// ListArray.get a i — loads from the array clause holding a. The bounds
/// side condition i < length a is discharged by the solver against the
/// facts in scope and recorded in the derivation.
class ArrayGetRule : public ExprRule {
public:
  std::string name() const override { return "expr_compile_arrayget"; }
  ExprGoalPattern pattern() const override {
    ExprGoalPattern P;
    P.Kinds = {ir::Expr::Kind::ArrayGet};
    P.SideConds = {"index-in-bounds"};
    P.EmitsExprGoals = true;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Expr &E) const override {
    return isa<ir::ArrayGet>(&E);
  }
  Result<CompiledExpr> apply(CompileCtx &Ctx, ExprCompiler &EC,
                             const ir::Expr &E, DerivNode &D) override {
    const auto *G = cast<ir::ArrayGet>(&E);
    Result<int> ClauseIdx =
        Ctx.requireClause(G->array(), sep::HeapClause::Kind::Array);
    if (!ClauseIdx)
      return ClauseIdx.takeError();
    const sep::HeapClause &Clause = Ctx.State.Heap[*ClauseIdx];
    Result<std::string> PtrLocal = Ctx.requirePtrLocal(*ClauseIdx);
    if (!PtrLocal)
      return PtrLocal.takeError();

    Result<CompiledExpr> I = EC.compileTyped(*G->index(), Ty::Word, D);
    if (!I)
      return I.takeError();

    Status Bound = Ctx.State.Facts.proveLt(I->Val.term(), Clause.Len);
    if (!Bound)
      return Bound.takeError().note("while compiling " + E.str());
    D.SideConds.push_back(I->Val.str() + " < " + Clause.Len.str() +
                          " (bounds of " + G->array() + ")");

    Ctx.noteFeature("Arrays");
    CompiledExpr Out;
    Out.Pre = I->Pre;
    Out.E = bedrock::load(accessSize(Clause.Elt),
                          scaledAddress(bedrock::var(*PtrLocal), I->E,
                                        Clause.Elt));
    Out.Type = Clause.Elt == EltKind::U8 ? Ty::Byte : Ty::Word;
    Out.Val = freshResult(Ctx.State, G->array() + "_elt", Out.Type);
    if (int64_t UB = eltUpperBound(Clause.Elt); UB > 0 && Out.Type == Ty::Word)
      Ctx.State.Facts.addLe(Out.Val.term(), lc(UB), "element width bound");
    return Out;
  }
};
// RELC-SECTION-END: expr-lemma-arrayget

//===----------------------------------------------------------------------===//
// Inline-table reads (§4.1.2).
//===----------------------------------------------------------------------===//

// RELC-SECTION-BEGIN: expr-lemma-inline-table
/// InlineTable.get t i — compiles to a Bedrock2 inline-table read. Byte
/// tables took tens of lines in the paper; 32-bit-word tables "hundreds"
/// because of missing Bedrock2 lemmas — here both widths share this rule,
/// with the width-specific reasoning confined to the element-bound fact.
class TableGetRule : public ExprRule {
public:
  std::string name() const override { return "expr_compile_inlinetable_get"; }
  ExprGoalPattern pattern() const override {
    ExprGoalPattern P;
    P.Kinds = {ir::Expr::Kind::TableGet};
    P.SideConds = {"index-in-bounds"};
    P.EmitsExprGoals = true;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Expr &E) const override {
    return isa<ir::TableGet>(&E);
  }
  Result<CompiledExpr> apply(CompileCtx &Ctx, ExprCompiler &EC,
                             const ir::Expr &E, DerivNode &D) override {
    const auto *G = cast<ir::TableGet>(&E);
    const ir::TableDef *T = Ctx.srcFn().findTable(G->table());
    if (!T)
      return Error("unsolved goal: no inline table named '" + G->table() +
                   "' on function " + Ctx.srcFn().Name);
    Result<CompiledExpr> I = EC.compileTyped(*G->index(), Ty::Word, D);
    if (!I)
      return I.takeError();

    Status Bound =
        Ctx.State.Facts.proveLt(I->Val.term(), lc(int64_t(T->Elements.size())));
    if (!Bound)
      return Bound.takeError().note("while compiling " + E.str());
    D.SideConds.push_back(I->Val.str() + " < " +
                          std::to_string(T->Elements.size()) + " (bounds of " +
                          G->table() + ")");
    Status Used = Ctx.noteTableUse(G->table());
    if (!Used)
      return Used.takeError();

    Ctx.noteFeature("Inline");
    CompiledExpr Out;
    Out.Pre = I->Pre;
    Out.E = bedrock::tableGet(accessSize(T->Elt), G->table(), I->E);
    Out.Type = T->Elt == EltKind::U8 ? Ty::Byte : Ty::Word;
    Out.Val = freshResult(Ctx.State, G->table() + "_elt", Out.Type);
    // Strong structural fact: the result is bounded by the table maximum.
    uint64_t Max = 0;
    for (uint64_t Elt : T->Elements)
      Max = std::max(Max, Elt & ir::eltMask(T->Elt));
    if (Max <= uint64_t(int64_t(1) << 62))
      Ctx.State.Facts.addLe(Out.Val.term(), lc(int64_t(Max)),
                            "table maximum element");
    return Out;
  }
};
// RELC-SECTION-END: expr-lemma-inline-table

} // namespace

void registerStandardExprRules(ExprRuleSet &RS) {
  RS.add(std::make_unique<ConstRule>());
  RS.add(std::make_unique<VarRule>());
  RS.add(std::make_unique<BinRule>());
  RS.add(std::make_unique<CastRule>());
  RS.add(std::make_unique<SelectRule>());
  RS.add(std::make_unique<ArrayGetRule>());
  RS.add(std::make_unique<TableGetRule>());
}

ExprCompiler::ExprCompiler(CompileCtx &Ctx) : Ctx(Ctx) {
  registerStandardExprRules(Rules);
}

Result<CompiledExpr> ExprCompiler::compile(const ir::Expr &E, DerivNode &D) {
  ExprRule *R = Rules.findMatch(Ctx, E);
  if (!R)
    return Error("unsolved goal: no expression lemma matches\n  EXPR m l ?e (" +
                 E.str() + ")")
        .note(Ctx.State.str());
  DerivNode &Node = D.child(R->name(), "EXPR ?e (" + E.str() + ")");
  Result<CompiledExpr> Out = R->apply(Ctx, *this, E, Node);
  if (!Out)
    return Out.takeError();
  Ctx.noteFeature("Arithmetic");
  return Out;
}

Result<CompiledExpr> ExprCompiler::compileTyped(const ir::Expr &E, Ty Want,
                                                DerivNode &D) {
  Result<CompiledExpr> Out = compile(E, D);
  if (!Out)
    return Out;
  if (Out->Type != Want)
    return Error("expression " + E.str() + " has type " +
                 ir::tyName(Out->Type) + " where " + ir::tyName(Want) +
                 " is required");
  return Out;
}

} // namespace core
} // namespace relc
