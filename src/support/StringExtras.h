//===- support/StringExtras.h - String helpers -----------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_STRINGEXTRAS_H
#define RELC_SUPPORT_STRINGEXTRAS_H

#include <cstdint>
#include <string>
#include <vector>

namespace relc {

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, const std::string &Sep);

/// Lowercase hexadecimal rendering of \p V with a 0x prefix.
std::string hexStr(uint64_t V);

/// Renders a byte as two hex digits (no prefix).
std::string hexByte(uint8_t B);

/// True iff \p Name is a valid C identifier (and not a C keyword).
bool isValidCIdentifier(const std::string &Name);

/// Maps an arbitrary variable name to a valid, collision-annotated C
/// identifier (non-identifier characters become '_' plus a hex code).
std::string sanitizeCIdentifier(const std::string &Name);

/// Escapes \p S for embedding in a JSON string literal (quotes,
/// backslashes, and control characters). Used by every certificate and
/// benchmark JSON emitter so escaping is uniform across artifacts.
std::string jsonEscape(const std::string &S);

/// Inverse of jsonEscape (handles \" \\ \n \t \uXXXX for XXXX < 0x80;
/// other escapes pass through unchanged). Returns false on a truncated
/// escape at end of input.
bool jsonUnescape(const std::string &S, std::string *Out);

/// Levenshtein edit distance between \p A and \p B (insert/delete/
/// substitute, unit cost). Used for command-line typo suggestions.
unsigned editDistance(const std::string &A, const std::string &B);

/// Replaces every occurrence of \p From in \p S with \p To.
std::string replaceAll(std::string S, const std::string &From,
                       const std::string &To);

/// Indents every line of \p S by \p Spaces spaces.
std::string indentLines(const std::string &S, unsigned Spaces);

} // namespace relc

#endif // RELC_SUPPORT_STRINGEXTRAS_H
