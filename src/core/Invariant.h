//===- core/Invariant.h - Loop/join invariant inference ---------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// §3.4.2's predicate-inference heuristic for control-flow join points,
// implemented literally:
//
//   1. Identify the targets of the construct from the names in its binding.
//   2. Classify each target scalar vs. pointer by inspecting the locals and
//      the memory predicate.
//   3. Abstract: scalars abstract over their locals entry (here: a fresh
//      solver symbol), pointers abstract over the clause payload (here:
//      contents are never tracked, so the structural length fact is what
//      remains — exactly the paper's "structural properties ... are
//      automatically captured").
//   4. Close over the results; instantiation is by partial executions of
//      the source combinator (map f (firstn i l) ++ skipn i l, etc.),
//      recorded in the derivation.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CORE_INVARIANT_H
#define RELC_CORE_INVARIANT_H

#include "core/Compiler.h"

#include <map>
#include <string>
#include <vector>

namespace relc {
namespace core {

/// One abstracted target of a loop or conditional.
struct LoopTarget {
  std::string Name;
  bool IsPointer = false;
  int ClauseIdx = -1;          ///< Pointer targets.
  ir::Ty ScalarTy = ir::Ty::Word; ///< Scalar targets.
};

/// The inferred invariant: classified targets plus the printable template
/// of step 4.
struct LoopInvariant {
  std::vector<LoopTarget> Targets;
  std::string Template;
};

/// Steps 1–2: classifies \p TargetNames against the current state. Names
/// not yet bound are scalars whose type comes from \p NewScalarTys (it is
/// an internal error to omit one). Pointer targets must currently be held
/// by some heap clause.
Result<LoopInvariant>
inferInvariant(const CompileCtx &Ctx, const std::vector<std::string> &Names,
               const std::map<std::string, ir::Ty> &NewScalarTys);

/// Step 3 for scalars: rebinds every scalar target's local to a fresh
/// symbol (with its type-bound facts), representing the value at an
/// arbitrary iteration. \p Stage tags the fresh symbols ("body", "post",
/// "join") for readable derivations.
void abstractScalars(CompileCtx &Ctx, const LoopInvariant &Inv,
                     const std::string &Stage);

} // namespace core
} // namespace relc

#endif // RELC_CORE_INVARIANT_H
