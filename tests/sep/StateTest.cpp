//===- tests/sep/StateTest.cpp - Symbolic state -----------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "sep/State.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::sep;

namespace {

CompState smallState() {
  CompState St;
  HeapClause Arr;
  Arr.TheKind = HeapClause::Kind::Array;
  Arr.Ptr = "ptr_s";
  Arr.Payload = "s";
  Arr.Elt = ir::EltKind::U8;
  Arr.Len = solver::ls("len_s");
  St.Heap.push_back(Arr);
  HeapClause Cell;
  Cell.TheKind = HeapClause::Kind::Cell;
  Cell.Ptr = "ptr_c";
  Cell.Payload = "c";
  St.Heap.push_back(Cell);
  St.Locals["s"] = TargetSlot::ptr(SymVal::sym("ptr_s"), 0);
  St.Locals["c"] = TargetSlot::ptr(SymVal::sym("ptr_c"), 1);
  St.Locals["len"] = TargetSlot::scalar(SymVal::sym("len_s"), ir::Ty::Word);
  St.Locals["x"] = TargetSlot::scalar(SymVal::constant(7), ir::Ty::Word);
  return St;
}

TEST(StateTest, FindClauseByPayload) {
  CompState St = smallState();
  EXPECT_EQ(St.findClauseByPayload("s"), 0);
  EXPECT_EQ(St.findClauseByPayload("c"), 1);
  EXPECT_EQ(St.findClauseByPayload("nope"), -1);
}

TEST(StateTest, FindPtrLocal) {
  CompState St = smallState();
  EXPECT_EQ(St.findPtrLocal(0).value_or(""), "s");
  EXPECT_EQ(St.findPtrLocal(1).value_or(""), "c");
  EXPECT_FALSE(St.findPtrLocal(5).has_value());
}

TEST(StateTest, FindScalarChecksSlotKind) {
  CompState St = smallState();
  EXPECT_NE(St.findScalar("len"), nullptr);
  EXPECT_EQ(St.findScalar("s"), nullptr); // Pointer, not scalar.
  EXPECT_EQ(St.findScalar("nope"), nullptr);
}

TEST(StateTest, FindLocalEqualToSyntactic) {
  CompState St = smallState();
  EXPECT_EQ(St.findLocalEqualTo(solver::ls("len_s")).value_or(""), "len");
  EXPECT_EQ(St.findLocalEqualTo(solver::lc(7)).value_or(""), "x");
  EXPECT_FALSE(St.findLocalEqualTo(solver::ls("other")).has_value());
}

TEST(StateTest, FindLocalEqualToSemantic) {
  CompState St = smallState();
  // n is provably equal to len_s through the facts, not syntactically.
  St.Locals["n"] = TargetSlot::scalar(SymVal::sym("n"), ir::Ty::Word);
  St.Facts.addEq(solver::ls("n"), solver::ls("len_s"));
  // The syntactic pass finds "len" first for len_s; ask for n's own value
  // via a third symbol equal to both.
  St.Facts.addEq(solver::ls("m"), solver::ls("n"));
  EXPECT_TRUE(St.findLocalEqualTo(solver::ls("m")).has_value());
}

TEST(StateTest, FreshSymsAndLocalsAreDistinct) {
  CompState St = smallState();
  std::string A = St.freshSym("t");
  std::string B = St.freshSym("t");
  EXPECT_NE(A, B);
  std::string L1 = St.freshLocal("i");
  std::string L2 = St.freshLocal("i");
  EXPECT_NE(L1, L2);
  EXPECT_NE(L1.find('$'), std::string::npos); // Reserved marker.
}

TEST(StateTest, RenderingMentionsLocalsAndHeap) {
  CompState St = smallState();
  std::string S = St.str();
  EXPECT_NE(S.find("array"), std::string::npos);
  EXPECT_NE(S.find("cell"), std::string::npos);
  EXPECT_NE(S.find("len_s"), std::string::npos);
}

} // namespace
