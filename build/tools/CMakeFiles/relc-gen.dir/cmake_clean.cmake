file(REMOVE_RECURSE
  "CMakeFiles/relc-gen.dir/relc-gen.cpp.o"
  "CMakeFiles/relc-gen.dir/relc-gen.cpp.o.d"
  "relc-gen"
  "relc-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
