# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_extension_writer "/root/repo/build/examples/extension_writer")
set_tests_properties(example_extension_writer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ip_end_to_end "/root/repo/build/examples/ip_end_to_end")
set_tests_properties(example_ip_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stackm_demo "/root/repo/build/examples/stackm_demo")
set_tests_properties(example_stackm_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_effects_tour "/root/repo/build/examples/effects_tour")
set_tests_properties(example_effects_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
