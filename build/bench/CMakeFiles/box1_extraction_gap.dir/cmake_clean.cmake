file(REMOVE_RECURSE
  "CMakeFiles/box1_extraction_gap.dir/box1_extraction_gap.cpp.o"
  "CMakeFiles/box1_extraction_gap.dir/box1_extraction_gap.cpp.o.d"
  "box1_extraction_gap"
  "box1_extraction_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/box1_extraction_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
