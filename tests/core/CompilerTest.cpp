//===- tests/core/CompilerTest.cpp - Driver, ABI, diagnostics --------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "CoreTestUtil.h"

using namespace relc;
using namespace relc::ir;
using namespace relc::coretest;

namespace {

TEST(CompilerTest, StraightLineScalarFunction) {
  FnBuilder FB("axpy", Monad::Pure);
  FB.wordParam("a").wordParam("x").wordParam("y");
  ProgBuilder B;
  B.let("t", mulw(v("a"), v("x"))).let("r", addw(v("t"), v("y")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("axpy");
  Spec.scalarArg("a").scalarArg("x").scalarArg("y").retScalar("r");
  core::CompileResult Out;
  ASSERT_CERTIFIES(Fn, Spec, {}, {}, &Out);
  EXPECT_EQ(Out.Fn.Args, (std::vector<std::string>{"a", "x", "y"}));
  EXPECT_EQ(Out.Fn.Rets, (std::vector<std::string>{"r"}));
  EXPECT_EQ(Out.EmittedStmts, 2u);
  EXPECT_TRUE(Out.Features.count("Arithmetic"));
}

TEST(CompilerTest, MultipleScalarReturnsAtTargetLevel) {
  // Bedrock2 supports multiple returns (only C emission restricts them).
  FnBuilder FB("divmod", Monad::Pure);
  FB.wordParam("a").wordParam("b");
  ProgBuilder B;
  B.let("q", binop(WordOp::DivU, v("a"), v("b")))
      .let("r", binop(WordOp::RemU, v("a"), v("b")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"q", "r"}));
  sep::FnSpec Spec("divmod");
  Spec.scalarArg("a").scalarArg("b").retScalar("q").retScalar("r");
  EXPECT_CERTIFIES(Fn, Spec);
}

TEST(CompilerTest, ArrayPutInPlace) {
  FnBuilder FB("set0", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder Then;
  Then.let("s", mkPut("s", cw(0), cb(0xAA)));
  ProgBuilder Else; // Leave unchanged.
  ProgBuilder B;
  B.letMulti({"s"}, mkIf(ltu(cw(0), v("len")), std::move(Then).ret({"s"}),
                         std::move(Else).ret({"s"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"s"}));
  sep::FnSpec Spec("set0");
  Spec.arrayArg("s").lenArg("len", "s").retInPlace("s");
  EXPECT_CERTIFIES(Fn, Spec);
}

TEST(CompilerTest, PutUnderDifferentNameIsUnsolvedGoal) {
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("t", mkPut("s", cw(0), cb(1)));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"s"}));
  sep::FnSpec Spec("f");
  Spec.arrayArg("s").lenArg("len", "s").retInPlace("s");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("same name"), std::string::npos);
}

TEST(CompilerTest, UnprovableBoundsStopCompilation) {
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("x", b2w(aget("s", v("len")))); // One past the end.
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"x"}));
  sep::FnSpec Spec("f");
  Spec.arrayArg("s").lenArg("len", "s").retScalar("x");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("unsolved side condition"),
            std::string::npos);
}

TEST(CompilerTest, EntryFactHintsDischargeRequiresClauses) {
  // s[0] needs len >= 1; the hint supplies it (the ABI promises it).
  FnBuilder FB("first", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("x", b2w(aget("s", cw(0))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"x"}));
  sep::FnSpec Spec("first");
  Spec.arrayArg("s").lenArg("len", "s").retScalar("x");

  core::Compiler C;
  EXPECT_FALSE(bool(C.compileFn(Fn, Spec))); // Without the hint.

  core::CompileHints Hints;
  Hints.EntryFacts.push_back([](sep::CompState &St) {
    St.Facts.addLe(solver::lc(1), solver::ls("len_s"), "requires len >= 1");
  });
  validate::ValidationOptions VO;
  VO.MakeInputs = [](const SourceFn &F, Rng &R, size_t Hint) {
    return validate::defaultInputs(F, R, Hint < 1 ? 1 : Hint);
  };
  EXPECT_CERTIFIES(Fn, Spec, Hints, VO);
}

TEST(CompilerTest, UnsolvedGoalPrintsTheJudgment) {
  // No rule handles a fold bound to two names.
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.letMulti({"a", "b"},
             mkFold("s", "a", "x", cw(0), addw(v("a"), b2w(v("x")))));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"s"}));
  sep::FnSpec Spec("f");
  Spec.arrayArg("s").lenArg("len", "s").retInPlace("s");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  // The checker rejects this earlier (arity); ensure a diagnostic exists.
  EXPECT_FALSE(R.error().str().empty());
}

TEST(CompilerTest, MissingLenLocalIsExplained) {
  // An array argument without any length argument cannot drive a loop.
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8);
  ProgBuilder B;
  B.let("s", mkMap("s", "b", v("b")));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"s"}));
  sep::FnSpec Spec("f");
  Spec.arrayArg("s").retInPlace("s");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("length"), std::string::npos);
}

TEST(CompilerTest, ModelRejectedBeforeCompilation) {
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("y", v("nope"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"y"}));
  sep::FnSpec Spec("f");
  Spec.scalarArg("x").retScalar("y");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("model rejected"), std::string::npos);
}

TEST(CompilerTest, ExternCallLinksTwoCompiledFunctions) {
  // g(x) = x*x, f(x) = g(x) + g(x+1): compile both, link, validate f.
  FnBuilder GB("g_model", Monad::Pure);
  GB.wordParam("x");
  ProgBuilder G;
  G.let("y", mulw(v("x"), v("x")));
  SourceFn GFn = std::move(GB).done(std::move(G).ret({"y"}));
  sep::FnSpec GSpec("square");
  GSpec.scalarArg("x").retScalar("y");

  FnBuilder FBd("f_model", Monad::Pure);
  FBd.wordParam("x");
  ProgBuilder F;
  F.letMulti({"a"}, mkCall("square", {v("x")}, 1))
      .letMulti({"b"}, mkCall("square", {addw(v("x"), cw(1))}, 1))
      .let("r", addw(v("a"), v("b")));
  SourceFn FFn = std::move(FBd).done(std::move(F).ret({"r"}));
  sep::FnSpec FSpec("sumsq");
  FSpec.scalarArg("x").retScalar("r");

  core::Compiler C;
  Result<core::CompileResult> GR = C.compileFn(GFn, GSpec);
  ASSERT_TRUE(bool(GR)) << GR.error().str();
  Result<core::CompileResult> FR = C.compileFn(FFn, FSpec);
  ASSERT_TRUE(bool(FR)) << FR.error().str();
  EXPECT_EQ(FR->ExternalCallees, (std::set<std::string>{"square"}));

  bedrock::Module Linked;
  Linked.Functions.push_back(GR->Fn);
  Linked.Functions.push_back(FR->Fn);
  validate::ValidationOptions VO;
  VO.CalleeModels["square"] = &GFn;
  Status V = validate::validate(FFn, FSpec, *FR, Linked, VO);
  EXPECT_TRUE(bool(V)) << (V ? "" : V.error().str());
}

TEST(CompilerTest, MissingCalleeFailsValidation) {
  FnBuilder FB("f_model", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder F;
  F.letMulti({"a"}, mkCall("square", {v("x")}, 1)).let("r", v("a"));
  SourceFn Fn = std::move(FB).done(std::move(F).ret({"r"}));
  sep::FnSpec Spec("f");
  Spec.scalarArg("x").retScalar("r");
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec);
  ASSERT_TRUE(bool(R));
  bedrock::Module Linked;
  Linked.Functions.push_back(R->Fn); // Callee absent.
  Status V = validate::validate(Fn, Spec, *R, Linked, {});
  ASSERT_FALSE(bool(V));
  EXPECT_NE(V.error().str().find("square"), std::string::npos);
}

TEST(CompilerTest, DerivationRecordsInvariantAndSideConditions) {
  // A ranged loop with an explicit array read: the witness must carry the
  // inferred invariant template and the discharged bounds side condition.
  FnBuilder FB("f", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder Body;
  Body.let("h", addw(v("h"), b2w(aget("s", v("i")))));
  ProgBuilder B;
  B.letMulti({"h"}, mkRange("i", cw(0), v("len"), {acc("h", cw(0))},
                            std::move(Body).ret({"h"})));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"h"}));
  sep::FnSpec Spec("f");
  Spec.arrayArg("s").lenArg("len", "s").retScalar("h");
  core::CompileResult Out;
  ASSERT_CERTIFIES(Fn, Spec, {}, {}, &Out);
  std::string D = Out.Proof->str();
  EXPECT_NE(D.find("invariant template"), std::string::npos);
  EXPECT_NE(D.find("ranged_for"), std::string::npos);
  EXPECT_NE(D.find("(bounds of s)"), std::string::npos);

  // A fold records its invariant instantiation too.
  FnBuilder FB2("g", Monad::Pure);
  FB2.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B2;
  B2.let("h", mkFold("s", "h", "b", cw(0), addw(v("h"), b2w(v("b")))));
  SourceFn Fn2 = std::move(FB2).done(std::move(B2).ret({"h"}));
  sep::FnSpec Spec2("g");
  Spec2.arrayArg("s").lenArg("len", "s").retScalar("h");
  core::CompileResult Out2;
  ASSERT_CERTIFIES(Fn2, Spec2, {}, {}, &Out2);
  EXPECT_NE(Out2.Proof->str().find("fold_left f (firstn i"),
            std::string::npos);
}

TEST(CompilerTest, BlankCompilerKnowsNothing) {
  core::Compiler Blank{core::Compiler::EmptyTag{}};
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("y", v("x"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"y"}));
  sep::FnSpec Spec("f");
  Spec.scalarArg("x").retScalar("y");
  Result<core::CompileResult> R = Blank.compileFn(Fn, Spec);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().str().find("no compilation lemma"), std::string::npos);
}

} // namespace
