//===- tests/cert/RederiveTest.cpp - Independent checker + tamper corpus ---===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The heart of the trust story: cert::Rederive must accept every
// certificate the TV producer emits for the suite, and reject every entry
// of a tamper corpus — bit-flipped hashes, reordered or truncated traces,
// forged witnesses, stale content keys, downgraded/foreign schema
// versions — each with its specific named reason. An accept-everything
// checker or a wrong-reason rejection fails here.
//
//===----------------------------------------------------------------------===//

#include "cert/Reader.h"
#include "cert/Rederive.h"
#include "cert/Writer.h"
#include "codelint/Codelint.h"
#include "programs/Programs.h"
#include "tv/Tv.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

/// A compiled program plus its freshly produced certificate.
struct Produced {
  const programs::ProgramDef *P = nullptr;
  core::CompileResult Compiled;
  cert::Certificate Cert;
};

Produced produce(const char *Name) {
  Produced Out;
  Out.P = programs::findProgram(Name);
  EXPECT_NE(Out.P, nullptr) << Name;
  core::Compiler C;
  Result<core::CompileResult> R =
      C.compileFn(Out.P->Model, Out.P->Spec, Out.P->Hints);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().str());
  Out.Compiled = R.take();
  tv::TvReport Rep = tv::validateTranslation(
      Out.P->Model, Out.P->Spec, Out.Compiled.Fn, Out.P->Hints.EntryFacts);
  EXPECT_TRUE(Rep.proved()) << Rep.str();
  Out.Cert = cert::fromTvReport(
      Rep, cert::contentKey(Out.P->Model, Out.P->Hints.EntryFacts, Out.P->Spec,
                            Out.Compiled.Fn));
  return Out;
}

cert::CheckResult check(const Produced &W, const cert::Certificate &C) {
  return cert::Rederive::check(C, W.P->Model, W.P->Hints.EntryFacts, W.P->Spec,
                               W.Compiled.Fn);
}

/// Expects rejection with exactly \p Why.
void expectReject(const Produced &W, const cert::Certificate &C,
                  cert::Reject Why, const char *Label) {
  cert::CheckResult R = check(W, C);
  EXPECT_FALSE(R.Accepted) << Label << ": tampered certificate accepted";
  if (!R.Accepted)
    EXPECT_EQ(cert::rejectName(R.Why), std::string(cert::rejectName(Why)))
        << Label << ": " << R.Detail;
}

TEST(RederiveTest, AcceptsEverySuiteCertificate) {
  unsigned N = 0;
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    Produced W = produce(P.Name.c_str());
    cert::CheckResult R = check(W, W.Cert);
    EXPECT_TRUE(R.Accepted)
        << P.Name << ": " << cert::rejectName(R.Why) << ": " << R.Detail;
    ++N;
  }
  EXPECT_EQ(N, 7u);
}

TEST(RederiveTest, AcceptsAfterDiskRoundtrip) {
  // The on-disk path: write -> parse -> check, as relc-check does.
  Produced W = produce("crc32");
  cert::ReadError Err;
  std::optional<cert::Certificate> R =
      cert::Reader::parse(cert::Writer::write(W.Cert), &Err);
  ASSERT_TRUE(R.has_value()) << Err.Detail;
  cert::CheckResult CR = check(W, *R);
  EXPECT_TRUE(CR.Accepted) << cert::rejectName(CR.Why) << ": " << CR.Detail;
}

//===----------------------------------------------------------------------===//
// The tamper corpus. Every mutation of an accepted certificate must be
// rejected with its own named reason.
//===----------------------------------------------------------------------===//

TEST(RederiveTest, TamperBindingHashBitFlip) {
  Produced W = produce("crc32");
  ASSERT_FALSE(W.Cert.Bindings.empty());
  cert::Certificate C = W.Cert;
  C.Bindings.back().Hash ^= 1;
  expectReject(W, C, cert::Reject::BindingTraceMismatch, "hash bit-flip");
}

TEST(RederiveTest, TamperBindingsReordered) {
  Produced W = produce("crc32");
  ASSERT_GE(W.Cert.Bindings.size(), 2u);
  cert::Certificate C = W.Cert;
  std::swap(C.Bindings[0], C.Bindings[1]);
  expectReject(W, C, cert::Reject::BindingTraceMismatch, "reorder");
}

TEST(RederiveTest, TamperBindingTraceTruncated) {
  Produced W = produce("crc32");
  ASSERT_FALSE(W.Cert.Bindings.empty());
  cert::Certificate C = W.Cert;
  C.Bindings.pop_back();
  expectReject(W, C, cert::Reject::TruncatedTrace, "binding pop_back");
}

TEST(RederiveTest, TamperLoopRecordDropped) {
  Produced W = produce("crc32");
  ASSERT_FALSE(W.Cert.Loops.empty());
  cert::Certificate C = W.Cert;
  C.Loops.pop_back();
  expectReject(W, C, cert::Reject::TruncatedTrace, "loop pop_back");
}

TEST(RederiveTest, TamperFoldHashFlip) {
  Produced W = produce("crc32");
  ASSERT_FALSE(W.Cert.Loops.empty());
  cert::Certificate C = W.Cert;
  C.Loops[0].FoldHash ^= 1;
  expectReject(W, C, cert::Reject::LoopSummaryMismatch, "fold-hash flip");
}

TEST(RederiveTest, TamperWitnessLocalForged) {
  Produced W = produce("crc32");
  ASSERT_FALSE(W.Cert.Loops.empty());
  ASSERT_FALSE(W.Cert.Loops[0].WitnessLocals.empty());
  cert::Certificate C = W.Cert;
  C.Loops[0].WitnessLocals[0] = "no_such_local";
  expectReject(W, C, cert::Reject::LoopWitnessMismatch, "forged local");
}

TEST(RederiveTest, TamperWitnessLocalsTruncated) {
  Produced W = produce("crc32");
  ASSERT_FALSE(W.Cert.Loops.empty());
  ASSERT_FALSE(W.Cert.Loops[0].WitnessLocals.empty());
  cert::Certificate C = W.Cert;
  C.Loops[0].WitnessLocals.pop_back();
  expectReject(W, C, cert::Reject::LoopWitnessMismatch, "truncated witness");
}

TEST(RederiveTest, TamperWitnessTargetPath) {
  Produced W = produce("crc32");
  ASSERT_FALSE(W.Cert.Loops.empty());
  cert::Certificate C = W.Cert;
  C.Loops[0].TargetPath = "9999";
  expectReject(W, C, cert::Reject::LoopWitnessMismatch, "wrong target path");
}

TEST(RederiveTest, TamperOutputHashFlip) {
  Produced W = produce("crc32");
  ASSERT_FALSE(W.Cert.Outputs.empty());
  cert::Certificate C = W.Cert;
  C.Outputs[0].SrcHash ^= 1;
  expectReject(W, C, cert::Reject::OutputMismatch, "output hash flip");
}

TEST(RederiveTest, TamperVerdictDowngrade) {
  Produced W = produce("crc32");
  cert::Certificate C = W.Cert;
  C.Verdict = "inconclusive";
  expectReject(W, C, cert::Reject::VerdictNotProved, "verdict flip");
}

TEST(RederiveTest, TamperFunctionName) {
  Produced W = produce("crc32");
  cert::Certificate C = W.Cert;
  C.Function = "fnv1a";
  expectReject(W, C, cert::Reject::FunctionMismatch, "function rename");
}

TEST(RederiveTest, TamperStaleContentHashes) {
  Produced W = produce("crc32");
  {
    cert::Certificate C = W.Cert;
    C.Key.ModelHash ^= 1;
    expectReject(W, C, cert::Reject::StaleModel, "model hash");
  }
  {
    cert::Certificate C = W.Cert;
    C.Key.SpecHash ^= 1;
    expectReject(W, C, cert::Reject::StaleSpec, "spec hash");
  }
  {
    cert::Certificate C = W.Cert;
    C.Key.CodeHash ^= 1;
    expectReject(W, C, cert::Reject::StaleCode, "code hash");
  }
}

TEST(RederiveTest, TamperSchemaDowngradeToV1) {
  Produced W = produce("crc32");
  cert::Certificate C = W.Cert;
  C.SchemaVersion = 1;
  expectReject(W, C, cert::Reject::UnverifiableV1, "v1 downgrade");
}

TEST(RederiveTest, TamperSchemaFromTheFuture) {
  Produced W = produce("crc32");
  cert::Certificate C = W.Cert;
  C.SchemaVersion = 99;
  expectReject(W, C, cert::Reject::UnknownSchemaVersion, "future schema");
}

TEST(RederiveTest, TamperCertificateSwappedBetweenPrograms) {
  // fnv1a's (valid!) certificate presented for crc32: caught before any
  // replay by the identity pre-checks.
  Produced Crc = produce("crc32");
  Produced Fnv = produce("fnv1a");
  cert::CheckResult R = check(Crc, Fnv.Cert);
  EXPECT_FALSE(R.Accepted);
  EXPECT_EQ(R.Why, cert::Reject::FunctionMismatch) << R.Detail;
}

//===----------------------------------------------------------------------===//
// The codelint section: accepted when genuine, rejected on any drift —
// the checker recomputes the whole analysis from the core library alone.
//===----------------------------------------------------------------------===//

/// \p W's certificate with a genuinely derived codelint section attached,
/// exactly as the pipeline's certify job embeds it.
cert::Certificate withCodelint(const Produced &W) {
  cert::Certificate C = W.Cert;
  C.Codelint = cert::codelintRecOf(codelint::analyzeFunction(
      W.Compiled.Fn, W.P->Spec, W.P->Model, W.P->Hints.EntryFacts));
  return C;
}

TEST(RederiveTest, AcceptsGenuineCodelintSection) {
  Produced W = produce("crc32");
  cert::Certificate C = withCodelint(W);
  EXPECT_EQ(C.Codelint->Mem, "safe");
  cert::CheckResult R = check(W, C);
  EXPECT_TRUE(R.Accepted) << cert::rejectName(R.Why) << ": " << R.Detail;

  // And through the on-disk path, as relc-check sees it.
  std::optional<cert::Certificate> Re =
      cert::Reader::parse(cert::Writer::write(C));
  ASSERT_TRUE(Re.has_value());
  cert::CheckResult R2 = check(W, *Re);
  EXPECT_TRUE(R2.Accepted) << cert::rejectName(R2.Why) << ": " << R2.Detail;
}

TEST(RederiveTest, TamperCodelintVerdictUpgradeForged) {
  // Claiming "safe" where the analyzer derives something else — or any
  // other verdict drift — must not survive re-derivation.
  Produced W = produce("crc32");
  cert::Certificate C = withCodelint(W);
  C.Codelint->Steps = "unknown";
  expectReject(W, C, cert::Reject::CodelintMismatch, "verdict drift");
}

TEST(RederiveTest, TamperCodelintStepBoundFlip) {
  Produced W = produce("crc32");
  cert::Certificate C = withCodelint(W);
  C.Codelint->StepBound ^= 1;
  expectReject(W, C, cert::Reject::CodelintMismatch, "step bound flip");
}

TEST(RederiveTest, TamperCodelintLocalsBytes) {
  Produced W = produce("crc32");
  cert::Certificate C = withCodelint(W);
  C.Codelint->LocalsBytes += 8;
  expectReject(W, C, cert::Reject::CodelintMismatch, "locals bytes");
}

TEST(RederiveTest, TamperCodelintVersionForged) {
  // A section stamped with a foreign analyzer version cannot re-derive:
  // the checker always recomputes with the linked kCodelintVersion.
  Produced W = produce("crc32");
  cert::Certificate C = withCodelint(W);
  C.Codelint->Version = 99;
  expectReject(W, C, cert::Reject::CodelintMismatch, "version forge");
}

TEST(RederiveTest, TamperTextLevelBitFlipInHash) {
  // Tamper the serialized bytes, not the struct: flip one hex digit of
  // the first fold_hash in the JSON itself, reload, check.
  Produced W = produce("crc32");
  std::string Text = cert::Writer::write(W.Cert);
  size_t P = Text.find("\"fold_hash\": \"0x");
  ASSERT_NE(P, std::string::npos);
  size_t Digit = P + std::string("\"fold_hash\": \"0x").size();
  Text[Digit] = Text[Digit] == 'f' ? '0' : 'f';
  cert::ReadError Err;
  std::optional<cert::Certificate> C = cert::Reader::parse(Text, &Err);
  ASSERT_TRUE(C.has_value()) << Err.Detail;
  expectReject(W, *C, cert::Reject::LoopSummaryMismatch, "text-level flip");
}

} // namespace
