# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/stackm_tests[1]_include.cmake")
include("/root/repo/build/tests/solver_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/bedrock_tests[1]_include.cmake")
include("/root/repo/build/tests/sep_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/cgen_tests[1]_include.cmake")
include("/root/repo/build/tests/validate_tests[1]_include.cmake")
include("/root/repo/build/tests/programs_tests[1]_include.cmake")
include("/root/repo/build/tests/reflect_tests[1]_include.cmake")
include("/root/repo/build/tests/extraction_tests[1]_include.cmake")
