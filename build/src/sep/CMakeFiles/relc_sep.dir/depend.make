# Empty dependencies file for relc_sep.
# This may be replaced when dependencies are built.
