//===- pipeline/CertCache.cpp - Content-addressed certificate cache --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CertCache.h"

#include "pipeline/Hash.h"
#include "support/StringExtras.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace relc {
namespace pipeline {

namespace {

constexpr const char *FormatTag = "relc-cert-cache-v1";

/// The canonical payload string the integrity hash covers: every field in
/// a fixed order, length-prefixed so no two payloads collide structurally.
std::string payloadString(const CertKey &Key, const CertEntry &E) {
  auto Field = [](const std::string &S) {
    return std::to_string(S.size()) + ":" + S + ";";
  };
  std::string P = Field(FormatTag);
  P += Field(Key.fileStem());
  P += Field(E.Program);
  P += Field(hex16(E.OptsHash));
  P += Field(E.ReplayOk ? "1" : "0");
  P += Field(E.AnalysisOk ? "1" : "0");
  P += Field(std::to_string(E.AnalysisWarnings));
  P += Field(E.AnalysisDiags);
  P += Field(E.TvRan ? "1" : "0");
  P += Field(E.TvVerdict);
  P += Field(std::to_string(E.TvLoops));
  P += Field(std::to_string(E.TvTerms));
  P += Field(E.TvCertificate);
  P += Field(E.DifferentialOk ? "1" : "0");
  return P;
}

} // namespace

std::string CertKey::fileStem() const {
  return hex16(ModelHash) + "-" + hex16(SpecHash) + "-" + hex16(CodeHash);
}

std::string CertCache::pathFor(const CertKey &Key) const {
  return Dir + "/" + Key.fileStem() + ".cert.json";
}

std::string CertCache::serialize(const CertKey &Key, const CertEntry &E) {
  // Keys sorted, one per line: byte-stable and diffable. The integrity
  // hash covers the canonical payload (which includes the key), so a
  // flipped bit anywhere — including in the hashes themselves — is caught.
  uint64_t Integrity = fnv1a64(payloadString(Key, E));
  std::string J = "{\n";
  J += "  \"analysis_diags\": \"" + jsonEscape(E.AnalysisDiags) + "\",\n";
  J += "  \"analysis_ok\": " + std::string(E.AnalysisOk ? "true" : "false") +
       ",\n";
  J += "  \"analysis_warnings\": " + std::to_string(E.AnalysisWarnings) +
       ",\n";
  J += "  \"code_hash\": \"" + hex16(Key.CodeHash) + "\",\n";
  J += "  \"differential_ok\": " +
       std::string(E.DifferentialOk ? "true" : "false") + ",\n";
  J += "  \"format\": \"" + std::string(FormatTag) + "\",\n";
  J += "  \"integrity\": \"" + hex16(Integrity) + "\",\n";
  J += "  \"model_hash\": \"" + hex16(Key.ModelHash) + "\",\n";
  J += "  \"opts_hash\": \"" + hex16(E.OptsHash) + "\",\n";
  J += "  \"program\": \"" + jsonEscape(E.Program) + "\",\n";
  J += "  \"replay_ok\": " + std::string(E.ReplayOk ? "true" : "false") +
       ",\n";
  J += "  \"spec_hash\": \"" + hex16(Key.SpecHash) + "\",\n";
  J += "  \"tv_certificate\": \"" + jsonEscape(E.TvCertificate) + "\",\n";
  J += "  \"tv_loops\": " + std::to_string(E.TvLoops) + ",\n";
  J += "  \"tv_ran\": " + std::string(E.TvRan ? "true" : "false") + ",\n";
  J += "  \"tv_terms\": " + std::to_string(E.TvTerms) + ",\n";
  J += "  \"tv_verdict\": \"" + jsonEscape(E.TvVerdict) + "\"\n";
  J += "}\n";
  return J;
}

namespace {

/// Line-oriented parse of the exact shape serialize() writes: each field
/// on its own '  "name": value' line. Returns false on any deviation —
/// strictness is the point (anything unexpected means "re-derive").
bool parseFields(const std::string &Text,
                 std::map<std::string, std::string> *Out) {
  std::istringstream In(Text);
  std::string Line;
  bool First = true, Closed = false;
  while (std::getline(In, Line)) {
    if (First) {
      if (Line != "{")
        return false;
      First = false;
      continue;
    }
    if (Line == "}") {
      Closed = true;
      continue;
    }
    if (Closed || First)
      return false;
    size_t NameStart = Line.find('"');
    if (NameStart == std::string::npos)
      return false;
    size_t NameEnd = Line.find('"', NameStart + 1);
    if (NameEnd == std::string::npos)
      return false;
    std::string Name = Line.substr(NameStart + 1, NameEnd - NameStart - 1);
    size_t Colon = Line.find(':', NameEnd);
    if (Colon == std::string::npos)
      return false;
    std::string Value = Line.substr(Colon + 1);
    // Trim surrounding spaces and the trailing comma.
    while (!Value.empty() && (Value.front() == ' '))
      Value.erase(Value.begin());
    while (!Value.empty() && (Value.back() == ',' || Value.back() == ' '))
      Value.pop_back();
    if (!Out->emplace(Name, Value).second)
      return false; // Duplicate field.
  }
  return Closed && !First;
}

bool getString(const std::map<std::string, std::string> &F,
               const std::string &Name, std::string *Out) {
  auto It = F.find(Name);
  if (It == F.end())
    return false;
  const std::string &V = It->second;
  if (V.size() < 2 || V.front() != '"' || V.back() != '"')
    return false;
  return jsonUnescape(V.substr(1, V.size() - 2), Out);
}

bool getBool(const std::map<std::string, std::string> &F,
             const std::string &Name, bool *Out) {
  auto It = F.find(Name);
  if (It == F.end())
    return false;
  if (It->second == "true")
    *Out = true;
  else if (It->second == "false")
    *Out = false;
  else
    return false;
  return true;
}

bool getU64(const std::map<std::string, std::string> &F,
            const std::string &Name, uint64_t *Out) {
  auto It = F.find(Name);
  if (It == F.end() || It->second.empty())
    return false;
  uint64_t V = 0;
  for (char C : It->second) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + uint64_t(C - '0');
  }
  *Out = V;
  return true;
}

bool getHex(const std::map<std::string, std::string> &F,
            const std::string &Name, uint64_t *Out) {
  std::string S;
  if (!getString(F, Name, &S))
    return false;
  return parseHex(S, Out);
}

} // namespace

std::optional<CertEntry> CertCache::deserialize(const std::string &Text,
                                                CertKey *KeyOut) {
  std::map<std::string, std::string> F;
  if (!parseFields(Text, &F))
    return std::nullopt;

  std::string Format;
  if (!getString(F, "format", &Format) || Format != FormatTag)
    return std::nullopt;

  CertKey Key;
  CertEntry E;
  uint64_t Integrity = 0;
  if (!getHex(F, "model_hash", &Key.ModelHash) ||
      !getHex(F, "spec_hash", &Key.SpecHash) ||
      !getHex(F, "code_hash", &Key.CodeHash) ||
      !getHex(F, "opts_hash", &E.OptsHash) ||
      !getHex(F, "integrity", &Integrity) ||
      !getString(F, "program", &E.Program) ||
      !getBool(F, "replay_ok", &E.ReplayOk) ||
      !getBool(F, "analysis_ok", &E.AnalysisOk) ||
      !getU64(F, "analysis_warnings", &E.AnalysisWarnings) ||
      !getString(F, "analysis_diags", &E.AnalysisDiags) ||
      !getBool(F, "tv_ran", &E.TvRan) ||
      !getString(F, "tv_verdict", &E.TvVerdict) ||
      !getU64(F, "tv_loops", &E.TvLoops) ||
      !getU64(F, "tv_terms", &E.TvTerms) ||
      !getString(F, "tv_certificate", &E.TvCertificate) ||
      !getBool(F, "differential_ok", &E.DifferentialOk))
    return std::nullopt;

  if (fnv1a64(payloadString(Key, E)) != Integrity)
    return std::nullopt;
  if (KeyOut)
    *KeyOut = Key;
  return E;
}

std::optional<CertEntry> CertCache::lookup(const CertKey &Key,
                                           uint64_t OptsHash,
                                           CacheStats *Stats) const {
  auto Miss = [&]() -> std::optional<CertEntry> {
    if (Stats)
      ++Stats->Misses;
    return std::nullopt;
  };
  if (!enabled())
    return Miss();

  std::string Path = pathFor(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Miss();
  std::ostringstream Buf;
  Buf << In.rdbuf();

  CertKey StoredKey;
  std::optional<CertEntry> E = deserialize(Buf.str(), &StoredKey);
  if (!E || !(StoredKey == Key)) {
    // Unparseable, integrity-failed, or misfiled: discard, never trust.
    std::error_code EC;
    std::filesystem::remove(Path, EC);
    if (Stats)
      ++Stats->CorruptDiscarded;
    return Miss();
  }
  if (E->OptsHash != OptsHash)
    return Miss(); // Same inputs, different validation options.
  if (Stats)
    ++Stats->Hits;
  return E;
}

Status CertCache::store(const CertKey &Key, const CertEntry &Entry,
                        CacheStats *Stats) const {
  if (!enabled())
    return Status::success();
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return Error("certificate cache: cannot create '" + Dir +
                 "': " + EC.message());

  std::string Path = pathFor(Key);
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Error("certificate cache: cannot write '" + Tmp + "'");
    Out << serialize(Key, Entry);
    if (!Out.flush())
      return Error("certificate cache: write to '" + Tmp + "' failed");
  }
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    return Error("certificate cache: cannot rename '" + Tmp + "' into place: " +
                 EC.message());
  if (Stats)
    ++Stats->Stores;
  return Status::success();
}

} // namespace pipeline
} // namespace relc
