//===- tools/relc-lint.cpp - Standalone static analyzer driver -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Runs the static layers of the certification pipeline as a strict gate:
// compiles the named benchmark programs (or all of them) through the one
// audited service surface (service::certify via relc/Certify.h), feeds
// the generated Bedrock2 code to the relc::analysis verifier, and runs
// the relc::tv translation validator. Prints the full report for each
// program and exits nonzero if *any* diagnostic — error or warning — was
// produced, or if any program fails to come out *Proved* equivalent to
// its model (for the curated suite, Inconclusive is also a regression:
// every suite program lies inside the validated fragment). Registered
// over every benchmark program as ctest cases, so a rule change that
// makes the generated code sloppy (dead stores, unprovable bounds) or
// semantically drifts it from the model fails the test suite even when
// the sampled differential vectors happen to pass.
//
// With -certs <dir> the gate additionally audits the on-disk equivalence
// certificates: each linted program's <dir>/<name>.tv.json must exist,
// parse, and pass cert::Rederive's independent re-derivation against the
// freshly compiled code. A missing certificate is a named
// "missing-certificate" diagnostic, not a silent pass — an empty or
// absent certificate directory fails the gate.
//
// -j N runs programs (and their analysis/TV layers) concurrently on the
// job-graph scheduler; reports are buffered per program and printed in
// argument order, so every -j produces byte-identical output. The lint
// gate always certifies live (never the certificate cache): its job is
// producing fresh full reports; -cache-dir/-no-cache are accepted for
// cross-tool flag uniformity only. Flags accept both - and -- forms.
//
// With -rules the gate additionally runs the rule-metatheory analyses
// (relc::rulemeta, same findings as relc-rulint): registry-level
// shadowing/coverage/dead-rule/termination checks plus each linted
// program's derivation witness replayed against the live registry. Every
// finding counts as a diagnostic.
//
// With -code the gate additionally runs the target-side codelint analyses
// (relc::codelint) over each program's emitted code and demands the strict
// verdict: every program must come out *Safe* on all three analyses
// (memory safety, stack bound, step bound). Unknown — which the
// certification pipeline tolerates as "not refuted" — is a diagnostic
// here, the same tightening the TV gate applies to Inconclusive.
//
// The final summary line names every enabled gate
// ("relc-lint: gates [analysis+tv+...]: ...") so logs show at a glance
// what a clean run actually checked.
//
// Usage: relc-lint [-q] [-no-tv] [-rules] [-certs <dir>] [-code] [-j <n>]
//                  [<program>...]
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"
#include "relc/Cert.h"
#include "relc/Certify.h"
#include "relc/Check.h"
#include "rulemeta/RuleMeta.h"
#include "support/CommandLine.h"
#include "support/Hash.h"
#include "support/ToolFlags.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace relc;

int main(int argc, char **argv) {
  bool Quiet = false, NoTv = false, Rules = false, RulintReport = false;
  bool Code = false;
  std::string CertsDir;
  unsigned Jobs = 1;
  cl::CacheDirFlags Cache;
  std::vector<std::string> Names;

  cl::OptionTable T(
      "relc-lint",
      "Strict static gate over the benchmark suite: every linted program\n"
      "must compile, come out of the static analyzer with zero\n"
      "diagnostics, and be proved equivalent to its model by the\n"
      "translation validator. With no program arguments, lints every\n"
      "registered program.");
  T.flag({"-q"}, &Quiet, "print reports only for programs with findings");
  T.flag({"-no-tv"}, &NoTv, "skip the translation-validation gate");
  T.flag({"-rules"}, &Rules,
         "also run the rule-metatheory analyses (relc-rulint):\n"
         "shadowed/overlapping/dead rules, uncovered constructs,\n"
         "the termination audit, and each linted program's\n"
         "derivation replayed against the live registry; every\n"
         "finding is a diagnostic");
  T.flag({"-rulint-report"}, &RulintReport,
         "with -rules, print the registry summary (rule counts\n"
         "and fingerprint) even when clean");
  T.flag({"-code"}, &Code,
         "also run the target-side codelint analyses (memory\n"
         "safety, stack bound, step bound) over the emitted code;\n"
         "any verdict below Safe — including Unknown — is a\n"
         "diagnostic");
  T.str({"-certs"}, &CertsDir, "<dir>",
        "also audit each program's on-disk certificate in <dir>;\n"
        "a missing or rejected certificate is a diagnostic");
  cl::addJobsFlag(T, Jobs, "lint");
  cl::addCacheDirFlags(T, Cache, /*Consults=*/false);
  T.positional("program", "lint only the named programs (default: all)",
               [&Names](const std::string &A, std::string *Err) {
                 if (!programs::findProgram(A)) {
                   *Err = "unknown program '" + A + "'";
                   return false;
                 }
                 Names.push_back(A);
                 return true;
               });

  switch (T.parse(argc, argv)) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }
  bool Tv = !NoTv;

  service::Request Req;
  Req.Programs = Names; // empty = the whole registered suite
  Req.Jobs = Jobs;
  Req.Validate = false; // Compile only; validation is the other layers' job.
  Req.Analyze = true;
  Req.Tv = Tv;
  Req.Codelint = Code;
  // No cache (Req.CacheDir stays ""): the gate's job is fresh full
  // reports.

  service::Response Resp = service::certify(Req);
  if (Resp.Exit == 2) {
    std::fprintf(stderr, "relc-lint: %s\n", Resp.UsageError.c_str());
    return 2;
  }
  if (!Resp.JobsNote.empty())
    std::fprintf(stderr, "relc-lint: %s\n", Resp.JobsNote.c_str());

  unsigned TotalDiags = 0;

  // -rules: the metatheory gate. Registry-level analyses run once; the
  // per-program derivation audit reuses the freshly compiled witnesses.
  core::RuleSet RuleRS;
  core::ExprRuleSet RuleES;
  if (Rules) {
    core::registerStandardRules(RuleRS);
    core::registerStandardExprRules(RuleES);
    rulemeta::Report R = rulemeta::analyzeRegistry(RuleRS, RuleES);
    for (const rulemeta::Finding &F : R.Findings)
      std::fprintf(stderr, "[registry] %s\n", F.str().c_str());
    TotalDiags += unsigned(R.Findings.size());
    if (RulintReport && R.clean())
      std::printf("registry clean: %zu statement rules, %zu expression "
                  "rules, fingerprint %s\n",
                  RuleRS.size(), RuleES.size(),
                  hash::hex16(core::standardRegistryFingerprint()).c_str());
  }

  for (const service::ProgramReply &PR : Resp.Programs) {
    const pipeline::ProgramOutcome &O = PR.Outcome;
    if (!O.CompileOk) {
      std::fprintf(stderr, "[%s] compilation failed:\n%s\n",
                   O.Def->Name.c_str(), O.CompileError.c_str());
      return 2;
    }
    if (!Quiet || !O.AReport.Diags.empty())
      std::printf("%s", O.AReport.str().c_str());
    TotalDiags += unsigned(O.AReport.Diags.size());

    if (Rules) {
      rulemeta::Report Audit = rulemeta::auditDerivation(
          O.Def->Model, O.Def->Spec, *O.Compiled.Proof, RuleRS);
      for (const rulemeta::Finding &F : Audit.Findings)
        std::fprintf(stderr, "[%s] %s\n", O.Def->Name.c_str(),
                     F.str().c_str());
      TotalDiags += unsigned(Audit.Findings.size());
    }

    if (Tv) {
      if (!Quiet || !O.TvRep.proved())
        std::printf("%s", O.TvRep.str().c_str());
      if (!O.TvRep.proved()) // Strict gate: the suite must prove, not just
        ++TotalDiags;        // fail-to-refute.
    }

    if (Code) {
      bool Safe = O.ClReport.overall() == codelint::Verdict::Safe;
      if (!Quiet || !Safe)
        std::printf("%s", O.ClReport.str().c_str());
      if (!Safe) // Strict gate: Unknown is a regression too — every suite
        ++TotalDiags; // program lies inside the analyzable fragment.
    }

    if (!CertsDir.empty()) {
      const programs::ProgramDef &P = *O.Def;
      std::string Path = CertsDir + "/" + P.Name + ".tv.json";
      cert::ReadError RE;
      std::optional<cert::Certificate> Cert = cert::Reader::readFile(Path, &RE);
      if (!Cert) {
        std::fprintf(stderr, "[%s] certificate %s: %s: %s\n", P.Name.c_str(),
                     Path.c_str(), cert::rejectName(RE.Why), RE.Detail.c_str());
        ++TotalDiags;
        continue;
      }
      cert::CheckResult CR = cert::Rederive::check(
          *Cert, P.Model, P.Hints.EntryFacts, P.Spec, O.Compiled.Fn);
      if (!CR.Accepted) {
        std::fprintf(stderr, "[%s] certificate %s: %s: %s\n", P.Name.c_str(),
                     Path.c_str(), cert::rejectName(CR.Why), CR.Detail.c_str());
        ++TotalDiags;
      } else if (!Quiet) {
        std::printf("[%s] certificate accepted (%zu bindings, %zu loops)\n",
                    P.Name.c_str(), Cert->Bindings.size(), Cert->Loops.size());
      }
    }
  }

  // The summary line names every enabled gate so a clean log still shows
  // what was actually checked (and ctest pins the format).
  std::string Gates = "analysis";
  if (Tv)
    Gates += "+tv";
  if (Rules)
    Gates += "+rules";
  if (!CertsDir.empty())
    Gates += "+certs";
  if (Code)
    Gates += "+code";
  if (TotalDiags) {
    std::fprintf(stderr, "relc-lint: gates [%s]: %u diagnostic(s)\n",
                 Gates.c_str(), TotalDiags);
    return 1;
  }
  std::printf("relc-lint: gates [%s]: clean\n", Gates.c_str());
  return 0;
}
