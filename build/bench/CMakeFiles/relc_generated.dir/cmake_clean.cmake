file(REMOVE_RECURSE
  "../generated/crc32.c"
  "../generated/fasta.c"
  "../generated/fnv1a.c"
  "../generated/ip.c"
  "../generated/m3s.c"
  "../generated/relc_generated.h"
  "../generated/upstr.c"
  "../generated/utf8.c"
  "../lib/librelc_generated.a"
  "../lib/librelc_generated.pdb"
  "CMakeFiles/relc_generated.dir/__/generated/crc32.c.o"
  "CMakeFiles/relc_generated.dir/__/generated/crc32.c.o.d"
  "CMakeFiles/relc_generated.dir/__/generated/fasta.c.o"
  "CMakeFiles/relc_generated.dir/__/generated/fasta.c.o.d"
  "CMakeFiles/relc_generated.dir/__/generated/fnv1a.c.o"
  "CMakeFiles/relc_generated.dir/__/generated/fnv1a.c.o.d"
  "CMakeFiles/relc_generated.dir/__/generated/ip.c.o"
  "CMakeFiles/relc_generated.dir/__/generated/ip.c.o.d"
  "CMakeFiles/relc_generated.dir/__/generated/m3s.c.o"
  "CMakeFiles/relc_generated.dir/__/generated/m3s.c.o.d"
  "CMakeFiles/relc_generated.dir/__/generated/upstr.c.o"
  "CMakeFiles/relc_generated.dir/__/generated/upstr.c.o.d"
  "CMakeFiles/relc_generated.dir/__/generated/utf8.c.o"
  "CMakeFiles/relc_generated.dir/__/generated/utf8.c.o.d"
  "CMakeFiles/relc_generated.dir/ref/ext_hooks.c.o"
  "CMakeFiles/relc_generated.dir/ref/ext_hooks.c.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang C)
  include(CMakeFiles/relc_generated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
