//===- tools/relc-gen.cpp - Generate C for the benchmark suite -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the pipeline: compiles every registered
// benchmark program with the relational compiler, certifies the results
// (derivation replay, static analysis, translation validation, target-side
// codelint, differential testing — see pipeline/Pipeline.h), and emits the
// certified C into an output directory (consumed by the Figure 2 bench at
// build time). With -print-bedrock or -print-deriv it dumps the
// intermediate artifacts instead.
//
// Since the relcd daemon landed, this tool is a thin presenter over the
// one audited request/response surface (service::certify via
// relc/Certify.h): it assembles a service::Request from its flags, prints
// each ProgramReply's outcome in registration order, and writes the
// artifact files. The certificates it writes are byte-identical to the
// ones relcd serves on the wire — both come out of the same Response.
//
// Certification runs on the job-graph scheduler: -j N executes programs
// and their independent layers concurrently; -j 1 (the default) is the
// serial reference. Output is buffered per program and flushed in
// registration order, so every -j produces byte-identical streams and
// artifacts. Verdicts are reused across runs through the content-
// addressed certificate cache (default $RELC_CACHE_DIR, else
// .relc-cache/; precedence documented in support/ToolFlags.h): a warm
// run skips re-certification for programs whose model, fnspec, and
// emitted code hashes all match a previously certified run. The C itself
// is re-emitted from a fresh compile every time — the cache holds
// verdicts, never code.
//
// Every flag is accepted in both single- and double-dash form.
//
//===----------------------------------------------------------------------===//

#include "relc/Cert.h"
#include "relc/Certify.h"
#include "support/CommandLine.h"
#include "support/Fault.h"
#include "support/ToolFlags.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace relc;

// Exit-code taxonomy (stable; scripts may rely on it — decided in
// service::certify, shared with relc-lint and relcd):
//   0  every program fully certified at full strength
//   1  at least one genuine failure (compile error, refuted or rejected
//      certification, failed differential)
//   2  usage error (bad flag, bad fault spec, unknown -only program,
//      unwritable output dir)
//   3  no genuine failures, but at least one outcome was *degraded* — a
//      budget ran out or an injected fault fired. With --keep-going,
//      programs whose only problems are degraded outcomes land here
//      instead of 1; a program certified with a budget-truncated TV
//      (differential carried it) lands here too.
int main(int argc, char **argv) {
  std::string OutDir = "generated";
  std::string Only;
  std::string CertFormat = "auto";
  bool PrintBedrock = false, PrintDeriv = false, NoValidate = false;
  bool NoAnalyze = false, AnalysisReport = false;
  bool NoTv = false, TvReport = false;
  bool KeepGoing = false;
  unsigned Jobs = 1;
  cl::CacheDirFlags Cache;
  cl::BudgetFlags Budgets;

  // RELC_FAULT_SPEC arms the registry before flags, so --fault (parsed
  // below) can override it wholesale.
  if (Status S = fault::armFromEnv(); !S) {
    std::fprintf(stderr, "relc-gen: RELC_FAULT_SPEC: %s\n",
                 S.error().str().c_str());
    return 2;
  }

  cl::OptionTable T(
      "relc-gen",
      "Compiles the registered benchmark programs, certifies each result\n"
      "(derivation replay, static analysis, translation validation,\n"
      "differential testing), and writes the certified C plus the\n"
      "per-program .tv.json equivalence certificates to the output\n"
      "directory.");
  T.str({"-out"}, &OutDir, "<dir>", "output directory (default: generated)");
  T.str({"-only"}, &Only, "<name>", "process only the named program");
  T.flag({"-print-bedrock"}, &PrintBedrock, "dump the generated Bedrock2 code");
  T.flag({"-print-deriv"}, &PrintDeriv, "dump the derivation witness");
  T.flag({"-no-validate"}, &NoValidate,
         "skip derivation replay and differential\n"
         "certification (layers 1 and 4)");
  T.flag({"-no-analyze"}, &NoAnalyze,
         "skip the standalone static-analysis gate");
  T.flag({"-analysis-report"}, &AnalysisReport,
         "print each program's full analysis report\n"
         "(forces live certification; disables the cache)");
  T.flag({"-no-tv"}, &NoTv,
         "skip the standalone translation-validation\n"
         "gate (and the .tv.json certificates)");
  T.choice({"-cert-format"}, &CertFormat, {"json", "bin", "auto"}, "<fmt>",
           "which certificate artifacts to write:\n"
           "'json' = canonical .tv.json only, 'bin' =\n"
           "binary .certbin only, 'auto' = both\n"
           "(default: auto)");
  T.flag({"-tv-report"}, &TvReport,
         "print each program's full TV match trace\n"
         "(forces live certification; disables the cache)");
  cl::addJobsFlag(T, Jobs, "certification");
  cl::addCacheDirFlags(T, Cache);
  cl::addBudgetFlags(T, Budgets);
  T.flag({"-keep-going"}, &KeepGoing,
         "report programs whose only problems are\n"
         "degraded outcomes (budgets, injected faults)\n"
         "as DEGRADED (exit 3) instead of failures");
  cl::addFaultFlag(T);

  switch (T.parse(argc, argv)) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  bool Validate = !NoValidate, Analyze = !NoAnalyze, Tv = !NoTv;

  std::error_code EC;
  std::filesystem::create_directories(OutDir, EC);
  if (EC) {
    std::fprintf(stderr, "cannot create output directory %s: %s\n",
                 OutDir.c_str(), EC.message().c_str());
    return 2;
  }

  service::Request R;
  if (!Only.empty())
    R.Programs.push_back(Only);
  R.Jobs = Jobs;
  // The full-report flags need the live analysis / TV reports, which a
  // cached verdict cannot reproduce — force live certification.
  if (!AnalysisReport && !TvReport)
    R.CacheDir = cl::resolveCacheDir(Cache);
  R.Validate = Validate;
  // validate() has always run analysis and TV as its layers 2 and 3;
  // -no-analyze / -no-tv only control the standalone gates below.
  R.Analyze = Analyze || Validate;
  R.Tv = Tv || Validate;
  R.LayerTimeoutMs = Budgets.LayerTimeoutMs;
  R.TvStepBudget = Budgets.TvStepBudget;
  R.KeepGoing = KeepGoing;
  R.WantCertJson = CertFormat != "bin";
  R.WantCertBin = CertFormat != "json";
  R.EmitC = true;

  service::Response Resp = service::certify(R);
  if (Resp.Exit == 2) {
    std::fprintf(stderr, "relc-gen: %s\n", Resp.UsageError.c_str());
    return 2;
  }
  if (!Resp.JobsNote.empty())
    std::fprintf(stderr, "relc-gen: %s\n", Resp.JobsNote.c_str());

  bool WriteFailed = false;

  // Cache-store failures are absorbed per program (the verdict stands),
  // but a misconfigured cache directory silently re-certifies everything
  // on every run. Surface the first failure once, as a named warning.
  bool WarnedCacheStore = false;

  for (const service::ProgramReply &PR : Resp.Programs) {
    const pipeline::ProgramOutcome &O = PR.Outcome;
    const programs::ProgramDef &P = *O.Def;

    if (!O.CacheStoreError.empty() && !WarnedCacheStore) {
      std::fprintf(stderr,
                   "relc-gen: warning: cache-dir-unwritable: could not "
                   "persist [%s]'s verdict: %s\n",
                   P.Name.c_str(), O.CacheStoreError.c_str());
      WarnedCacheStore = true;
    }

    // --keep-going: a program whose only problems are degraded outcomes
    // (budget exhaustion, injected faults, scheduler-boundary deaths) is
    // reported as DEGRADED and lands on exit 3, not 1. Nothing genuinely
    // failed certification — but nothing fully certified either, so no C
    // is emitted for it.
    if (PR.Status == service::ProgramStatus::Degraded) {
      std::fprintf(stderr, "[%s] DEGRADED:\n%s\n", P.Name.c_str(),
                   PR.Error.c_str());
      continue;
    }

    if (!O.CompileOk) {
      std::fprintf(stderr, "[%s] FAILED:\n%s\n", P.Name.c_str(),
                   O.CompileError.c_str());
      continue;
    }
    // Layer failures under -validate carry the full note chain, exactly
    // as validate::validate renders them.
    if (Validate && !O.ValidationError.empty()) {
      std::fprintf(stderr, "[%s] FAILED:\n%s\n", P.Name.c_str(),
                   O.ValidationError.c_str());
      continue;
    }

    std::printf("[%s] ok: %u source bindings -> %u target statements, "
                "derivation of %u rule applications, %u side conditions%s\n",
                P.Name.c_str(), O.Compiled.SourceBindings,
                O.Compiled.EmittedStmts, O.Compiled.Proof->size(),
                O.Compiled.Proof->countSideConds(),
                Validate ? ", validated" : "");

    if (Analyze) {
      if (AnalysisReport) {
        std::printf("%s", O.AReport.str().c_str());
      } else if (!O.AnalysisDiags.empty()) {
        std::istringstream Diags(O.AnalysisDiags);
        std::string Line;
        while (std::getline(Diags, Line))
          std::fprintf(stderr, "[%s] %s\n", P.Name.c_str(), Line.c_str());
      }
      if (!O.Analysis.Ok) {
        std::fprintf(stderr,
                     "[%s] FAILED: static analysis found %u error(s)\n",
                     P.Name.c_str(), O.AReport.numErrors());
        continue;
      }
    }

    if (Tv) {
      if (TvReport)
        std::printf("%s", O.TvRep.str().c_str());
      else
        std::printf("[%s] tv: %s (%zu loops, %u terms)\n", P.Name.c_str(),
                    O.TvVerdictName.c_str(), size_t(O.TvLoops),
                    unsigned(O.TvTerms));
      if (!O.Tv.Ok) {
        std::fprintf(stderr, "[%s] FAILED: translation validation refuted "
                             "the compilation:\n%s",
                     P.Name.c_str(), O.TvRep.str().c_str());
        continue;
      }
      // Certificate artifacts, per --cert-format: the canonical JSON, the
      // binary image, or (auto) both. Both encode the same Certificate and
      // rederive identically under relc-check — and both are exactly the
      // bytes relcd puts on the wire for this program.
      if (CertFormat != "bin") {
        std::ofstream Cert(OutDir + "/" + P.Name + ".tv.json");
        Cert << PR.CertJson;
      }
      if (CertFormat != "json") {
        std::ofstream Cert(OutDir + "/" + P.Name + cert::kBinExtension,
                           std::ios::binary);
        Cert << PR.CertBin;
      }
    }

    // Target-side codelint verdict: one deterministic line, reproducible
    // from the cache (a warm run replays the stored verdict name).
    if (!O.CodelintVerdictName.empty())
      std::printf("[%s] codelint: %s\n", P.Name.c_str(),
                  O.CodelintVerdictName.c_str());
    if (O.Codelint.Enabled && (O.Codelint.Ran || O.Codelint.FromCache) &&
        !O.Codelint.Ok) {
      // Only reachable with -no-validate (layer 4 otherwise renders the
      // failure into ValidationError, caught above).
      std::fprintf(stderr, "[%s] FAILED:\n%s\n", P.Name.c_str(),
                   O.ValidationError.c_str());
      continue;
    }

    // Certified, but some layer only got a truncated run (e.g. TV hit its
    // step budget and fell through to differential): say so, emit the C
    // anyway — the certification itself is sound — and exit 3.
    if (O.anyDegraded())
      std::fprintf(stderr, "[%s] note: %s; certification was carried by "
                           "the remaining layers\n",
                   P.Name.c_str(), O.firstDegradedNote().c_str());

    if (PrintBedrock)
      std::printf("%s\n", O.Compiled.Fn.str().c_str());
    if (PrintDeriv)
      std::printf("%s\n", O.Compiled.Proof->str().c_str());

    if (PR.CCode.empty()) {
      // service::certify flipped the status to Failed and rendered the
      // emission error ("C emission failed: ...").
      std::fprintf(stderr, "[%s] %s\n", P.Name.c_str(), PR.Error.c_str());
      continue;
    }

    std::string Path = OutDir + "/" + P.Name + ".c";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "[%s] cannot write %s\n", P.Name.c_str(),
                   Path.c_str());
      WriteFailed = true;
      continue;
    }
    Out << "/* Generated by relc (relational compilation); certified by\n"
           " * derivation replay and differential validation. Do not edit. */\n"
        << PR.CCode;
  }

  std::ofstream H(OutDir + "/relc_generated.h");
  H << "/* Generated by relc; aggregate declarations. */\n"
    << "#ifndef RELC_GENERATED_H\n#define RELC_GENERATED_H\n"
    << "#ifdef __cplusplus\nextern \"C\" {\n#endif\n"
    << Resp.CHeader << "#ifdef __cplusplus\n}\n#endif\n#endif\n";

  return WriteFailed ? 1 : Resp.Exit;
}
