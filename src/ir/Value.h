//===- ir/Value.h - Source-language values ---------------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The value domain of FunLang, the purely functional source language (the
// deep embedding of the paper's "lowered Gallina" subset, Figure 1). Values
// are words, bytes, booleans, unit, and homogeneous lists; multi-results are
// tuples. Lists model both Gallina lists and the ListArray/Cell wrappers
// whose layout the compiler chooses.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_IR_VALUE_H
#define RELC_IR_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace relc {
namespace ir {

/// Scalar element kinds for arrays, lists and inline tables. The kind fixes
/// the memory layout the compiler will choose (1/2/4/8 bytes per element).
enum class EltKind : uint8_t { U8 = 1, U16 = 2, U32 = 4, U64 = 8 };

/// Number of bytes occupied by one element of kind \p K.
inline unsigned eltSize(EltKind K) { return unsigned(K); }

/// Maximum value representable in kind \p K.
inline uint64_t eltMask(EltKind K) {
  return K == EltKind::U64 ? ~uint64_t(0)
                           : ((uint64_t(1) << (8 * unsigned(K))) - 1);
}

/// A FunLang value.
class Value {
public:
  enum class Kind { Word, Byte, Bool, Unit, List, Tuple };

  Value() : TheKind(Kind::Unit) {}

  static Value word(uint64_t W) { return Value(Kind::Word, W); }
  static Value byte(uint8_t B) { return Value(Kind::Byte, B); }
  static Value boolean(bool B) { return Value(Kind::Bool, B ? 1 : 0); }
  static Value unit() { return Value(); }
  static Value list(EltKind Elt, std::vector<Value> Elems) {
    Value V(Kind::List, 0);
    V.Elt = Elt;
    V.Elems = std::move(Elems);
    return V;
  }
  static Value byteList(const std::vector<uint8_t> &Bytes) {
    std::vector<Value> Elems;
    Elems.reserve(Bytes.size());
    for (uint8_t B : Bytes)
      Elems.push_back(byte(B));
    return list(EltKind::U8, std::move(Elems));
  }
  static Value tuple(std::vector<Value> Elems) {
    Value V(Kind::Tuple, 0);
    V.Elems = std::move(Elems);
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isScalar() const {
    return TheKind == Kind::Word || TheKind == Kind::Byte ||
           TheKind == Kind::Bool;
  }

  uint64_t asWord() const {
    assert(TheKind == Kind::Word && "not a word");
    return Scalar;
  }
  uint8_t asByte() const {
    assert(TheKind == Kind::Byte && "not a byte");
    return uint8_t(Scalar);
  }
  bool asBool() const {
    assert(TheKind == Kind::Bool && "not a bool");
    return Scalar != 0;
  }
  /// Any scalar, widened to a word.
  uint64_t scalar() const {
    assert(isScalar() && "not a scalar");
    return Scalar;
  }

  EltKind listElt() const {
    assert(TheKind == Kind::List && "not a list");
    return Elt;
  }
  const std::vector<Value> &elems() const {
    assert((TheKind == Kind::List || TheKind == Kind::Tuple) && "no elements");
    return Elems;
  }
  std::vector<Value> &elems() {
    assert((TheKind == Kind::List || TheKind == Kind::Tuple) && "no elements");
    return Elems;
  }

  /// List contents as raw bytes (lists of U8 only).
  std::vector<uint8_t> asBytes() const;

  /// List contents widened to words (any scalar element kind).
  std::vector<uint64_t> asWords() const;

  bool operator==(const Value &O) const;
  bool operator!=(const Value &O) const { return !(*this == O); }

  std::string str() const;

private:
  Value(Kind K, uint64_t Scalar) : TheKind(K), Scalar(Scalar) {}

  Kind TheKind;
  uint64_t Scalar = 0;
  EltKind Elt = EltKind::U8;
  std::vector<Value> Elems;
};

} // namespace ir
} // namespace relc

#endif // RELC_IR_VALUE_H
