//===- tests/tv/TvFailureInjectionTest.cpp - Beyond sampled testing --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The companion of tests/analysis/SeededBugsTest.cpp's analysis-vs-
// differential argument, one layer up: a miscompilation that the sampled
// differential battery *provably cannot* catch — a trigger value chosen,
// after enumerating the battery's deterministic input vectors, to lie
// outside all of them — but that the translation validator rejects for
// all inputs. This is the test that justifies layer 3's existence: layer
// 4 checks finitely many points, tv::validateTranslation checks the
// function.
//
//===----------------------------------------------------------------------===//

#include "ir/Build.h"
#include "tv/Tv.h"
#include "validate/Validate.h"

#include <gtest/gtest.h>

#include <set>

using namespace relc;
using namespace relc::ir;
using namespace relc::bedrock;

namespace {

TEST(TvFailureInjectionTest, TriggerOutsideSampledVectorsOnlyTvCatches) {
  // Model: the identity function on one word.
  FnBuilder FB("ident", Monad::Pure);
  FB.wordParam("x");
  ProgBuilder B;
  B.let("r", v("x"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  sep::FnSpec Spec("ident");
  Spec.scalarArg("x").retScalar("r");

  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(Fn, Spec, {});
  ASSERT_TRUE(bool(R)) << (R ? "" : R.error().str());

  // Enumerate the battery: the differential driver is deterministic (fixed
  // seed), so recording the inputs of one run enumerates exactly the
  // vectors every future run with these options will test.
  std::set<uint64_t> SampledX;
  validate::ValidationOptions Opts;
  Opts.MakeInputs = [&SampledX](const SourceFn &F, Rng &Rg,
                                size_t SizeHint) {
    std::vector<Value> In = validate::defaultInputs(F, Rg, SizeHint);
    SampledX.insert(In[0].scalar());
    return In;
  };

  bedrock::Module Clean;
  Clean.Functions.push_back(R->Fn);
  Status CleanRun =
      validate::differentialCertify(Fn, Spec, *R, Clean, Opts);
  ASSERT_TRUE(bool(CleanRun)) << CleanRun.error().str();
  ASSERT_FALSE(SampledX.empty());

  // A trigger provably outside the battery.
  uint64_t Magic = 0xDEADBEEFCAFEF00Dull;
  while (SampledX.count(Magic))
    ++Magic;

  // The miscompilation: correct everywhere except the one untested point.
  core::CompileResult &Broken = *R;
  Broken.Fn.Body =
      seq(Broken.Fn.Body,
          ifThenElse(bin(BinOp::Eq, var("x"), lit(Magic)),
                     set("r", lit(0)), skip()));

  // Differential testing accepts it: every sampled x differs from the
  // trigger, by construction. (Same options -> the very same vectors.)
  bedrock::Module M;
  M.Functions.push_back(Broken.Fn);
  std::set<uint64_t> SecondRun;
  validate::ValidationOptions Opts2;
  Opts2.MakeInputs = [&SecondRun](const SourceFn &F, Rng &Rg,
                                  size_t SizeHint) {
    std::vector<Value> In = validate::defaultInputs(F, Rg, SizeHint);
    SecondRun.insert(In[0].scalar());
    return In;
  };
  Status Sampled = validate::differentialCertify(Fn, Spec, Broken, M, Opts2);
  EXPECT_TRUE(bool(Sampled))
      << "differential testing was supposed to miss this defect: "
      << Sampled.error().str();
  EXPECT_EQ(SampledX, SecondRun); // The battery really is deterministic.
  EXPECT_EQ(SecondRun.count(Magic), 0u);

  // Translation validation rejects it for all inputs — no vectors needed.
  tv::TvReport Rep = tv::validateTranslation(Fn, Spec, Broken.Fn);
  ASSERT_TRUE(Rep.refuted()) << Rep.str();
  EXPECT_NE(Rep.Reason.find("'r'"), std::string::npos) << Rep.Reason;

  // And the full pipeline therefore fails on the tampered artifact even
  // though its own sampled layer would have passed.
  Status Pipeline = validate::validate(Fn, Spec, Broken, M, Opts2);
  ASSERT_FALSE(bool(Pipeline));
  EXPECT_NE(Pipeline.error().str().find("translation validation"),
            std::string::npos)
      << Pipeline.error().str();
}

} // namespace
