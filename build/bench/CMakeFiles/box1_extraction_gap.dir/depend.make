# Empty dependencies file for box1_extraction_gap.
# This may be replaced when dependencies are built.
