//===- tests/service/ProtocolTest.cpp - Wire schema v1 ---------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The relcd wire protocol in isolation (no sockets): frame/splitFrame
// round trips, encode/decode for every message kind, and — pinned to
// their exact kebab-case reasons — every way a frame can be refused:
// bad-magic, unknown-schema-version, oversized-frame, malformed-frame,
// unknown-request-kind (truncated-frame and request-timeout are
// connection-level and live in ServiceTest). Hostile inputs (garbage,
// truncation at every byte, absurd counts) must produce named rejections,
// never crashes or allocations proportional to attacker-chosen counts.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

using namespace relc;
using namespace relc::service;

namespace {

wire::CertifyRequest sampleRequest() {
  wire::CertifyRequest R;
  R.Programs = {"fnv1a", "crc32"};
  R.Validate = true;
  R.Analyze = false;
  R.Tv = true;
  R.Codelint = false;
  R.KeepGoing = true;
  R.WantCertJson = false;
  R.WantCertBin = true;
  R.LayerTimeoutMs = 1234;
  R.TvStepBudget = 0xdeadbeefcafeull;
  return R;
}

std::string encodeFramed(const wire::Message &M) {
  return wire::frame(wire::encode(M));
}

/// Splits + decodes one framed message, asserting the frame is whole.
wire::Message decodeFramed(const std::string &F) {
  size_t FrameSize = 0;
  std::string_view Payload;
  EXPECT_EQ(wire::splitFrame(F, &FrameSize, &Payload), wire::FrameStatus::Ok);
  EXPECT_EQ(FrameSize, F.size());
  wire::Message M;
  std::string Reason;
  EXPECT_TRUE(wire::decode(Payload, &M, &Reason)) << Reason;
  return M;
}

TEST(ProtocolTest, CertifyRequestRoundTrip) {
  wire::Message In;
  In.TheKind = wire::Kind::CertifyRequest;
  In.Certify = sampleRequest();
  wire::Message Out = decodeFramed(encodeFramed(In));
  ASSERT_EQ(Out.TheKind, wire::Kind::CertifyRequest);
  EXPECT_EQ(Out.Certify.Programs, In.Certify.Programs);
  EXPECT_EQ(Out.Certify.Validate, In.Certify.Validate);
  EXPECT_EQ(Out.Certify.Analyze, In.Certify.Analyze);
  EXPECT_EQ(Out.Certify.Tv, In.Certify.Tv);
  EXPECT_EQ(Out.Certify.Codelint, In.Certify.Codelint);
  EXPECT_EQ(Out.Certify.KeepGoing, In.Certify.KeepGoing);
  EXPECT_EQ(Out.Certify.WantCertJson, In.Certify.WantCertJson);
  EXPECT_EQ(Out.Certify.WantCertBin, In.Certify.WantCertBin);
  EXPECT_EQ(Out.Certify.LayerTimeoutMs, In.Certify.LayerTimeoutMs);
  EXPECT_EQ(Out.Certify.TvStepBudget, In.Certify.TvStepBudget);
}

TEST(ProtocolTest, CertifyReplyRoundTrip) {
  wire::Message In;
  In.TheKind = wire::Kind::CertifyReply;
  In.Reply.Exit = 3;
  wire::ProgramResult P;
  P.Name = "fnv1a";
  P.Status = 1;
  P.From = 2;
  P.Error = "";
  P.DegradedNote = "tv step budget exhausted";
  P.TvVerdict = "inconclusive";
  P.CodelintVerdict = "safe";
  P.CertJson = "{\"schema\":2}";
  P.CertBin = std::string("\x00\x01\x02\xff binary", 11); // Embedded NULs.
  In.Reply.Programs.push_back(P);
  In.Reply.CacheHits = 5;
  In.Reply.CacheMisses = 2;
  In.Reply.CacheStores = 2;

  wire::Message Out = decodeFramed(encodeFramed(In));
  ASSERT_EQ(Out.TheKind, wire::Kind::CertifyReply);
  EXPECT_EQ(Out.Reply.Exit, 3);
  EXPECT_EQ(Out.Reply.CacheHits, 5u);
  EXPECT_EQ(Out.Reply.CacheMisses, 2u);
  EXPECT_EQ(Out.Reply.CacheStores, 2u);
  ASSERT_EQ(Out.Reply.Programs.size(), 1u);
  const wire::ProgramResult &Q = Out.Reply.Programs[0];
  EXPECT_EQ(Q.Name, P.Name);
  EXPECT_EQ(Q.Status, P.Status);
  EXPECT_EQ(Q.From, P.From);
  EXPECT_EQ(Q.DegradedNote, P.DegradedNote);
  EXPECT_EQ(Q.TvVerdict, P.TvVerdict);
  EXPECT_EQ(Q.CodelintVerdict, P.CodelintVerdict);
  EXPECT_EQ(Q.CertJson, P.CertJson);
  EXPECT_EQ(Q.CertBin, P.CertBin); // Byte-exact, NULs preserved.
}

TEST(ProtocolTest, KindOnlyMessagesRoundTrip) {
  for (wire::Kind K :
       {wire::Kind::PingRequest, wire::Kind::StatsRequest,
        wire::Kind::ShutdownRequest, wire::Kind::ShutdownReply}) {
    wire::Message In;
    In.TheKind = K;
    wire::Message Out = decodeFramed(encodeFramed(In));
    EXPECT_EQ(Out.TheKind, K);
  }
}

TEST(ProtocolTest, PongStatsErrorRoundTrip) {
  wire::Message Pong;
  Pong.TheKind = wire::Kind::PongReply;
  Pong.ThePong = {7, 1, 0x0cc54a61e044b695ull, 4242};
  wire::Message Out = decodeFramed(encodeFramed(Pong));
  ASSERT_EQ(Out.TheKind, wire::Kind::PongReply);
  EXPECT_EQ(Out.ThePong.ApiVersion, 7u);
  EXPECT_EQ(Out.ThePong.SchemaVersion, 1u);
  EXPECT_EQ(Out.ThePong.RegistryFingerprint, 0x0cc54a61e044b695ull);
  EXPECT_EQ(Out.ThePong.Pid, 4242u);

  wire::Message Stats;
  Stats.TheKind = wire::Kind::StatsReply;
  Stats.TheStats.Requests = 10;
  Stats.TheStats.CertifyRequests = 4;
  Stats.TheStats.MemoHits = 3;
  Stats.TheStats.Workers = 4;
  Stats.TheStats.WorkerSpawns = 9;
  Stats.TheStats.WorkerRestarts = 5;
  Stats.TheStats.WorkerSpawnFailures = 1;
  Stats.TheStats.WorkerCrashes = 3;
  Stats.TheStats.WorkerOoms = 1;
  Stats.TheStats.WorkerTimeouts = 1;
  Stats.TheStats.WorkerRetries = 6;
  Stats.TheStats.WorkerDegraded = 2;
  Stats.TheStats.Drains = 1;
  Stats.TheStats.CacheDir = "/tmp/cache";
  Out = decodeFramed(encodeFramed(Stats));
  ASSERT_EQ(Out.TheKind, wire::Kind::StatsReply);
  EXPECT_EQ(Out.TheStats.Requests, 10u);
  EXPECT_EQ(Out.TheStats.CertifyRequests, 4u);
  EXPECT_EQ(Out.TheStats.MemoHits, 3u);
  EXPECT_EQ(Out.TheStats.Workers, 4u);
  EXPECT_EQ(Out.TheStats.WorkerSpawns, 9u);
  EXPECT_EQ(Out.TheStats.WorkerRestarts, 5u);
  EXPECT_EQ(Out.TheStats.WorkerSpawnFailures, 1u);
  EXPECT_EQ(Out.TheStats.WorkerCrashes, 3u);
  EXPECT_EQ(Out.TheStats.WorkerOoms, 1u);
  EXPECT_EQ(Out.TheStats.WorkerTimeouts, 1u);
  EXPECT_EQ(Out.TheStats.WorkerRetries, 6u);
  EXPECT_EQ(Out.TheStats.WorkerDegraded, 2u);
  EXPECT_EQ(Out.TheStats.Drains, 1u);
  EXPECT_EQ(Out.TheStats.CacheDir, "/tmp/cache");

  wire::Message Err;
  Err.TheKind = wire::Kind::ErrorReply;
  Err.Error.Reason = "server-busy";
  Err.Error.Detail = "certify admission cap reached (max-inflight 16)";
  Out = decodeFramed(encodeFramed(Err));
  ASSERT_EQ(Out.TheKind, wire::Kind::ErrorReply);
  EXPECT_EQ(Out.Error.Reason, "server-busy");
  EXPECT_EQ(Out.Error.Detail,
            "certify admission cap reached (max-inflight 16)");
}

//===----------------------------------------------------------------------===//
// Framing rejections, each pinned to its kebab-case reason.
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, NeedMoreOnEveryPrefix) {
  wire::Message M;
  M.TheKind = wire::Kind::PingRequest;
  std::string F = encodeFramed(M);
  // Every proper prefix of a valid frame is NeedMore, never a rejection
  // and never a premature Ok.
  for (size_t N = 0; N < F.size(); ++N) {
    size_t FrameSize = 0;
    std::string_view Payload;
    EXPECT_EQ(wire::splitFrame(std::string_view(F).substr(0, N), &FrameSize,
                               &Payload),
              wire::FrameStatus::NeedMore)
        << "prefix length " << N;
  }
}

TEST(ProtocolTest, BadMagicIsNamedFromTheFirstByte) {
  size_t FrameSize = 0;
  std::string_view Payload;
  // A wrong first byte is rejected immediately — no waiting for 8 bytes
  // that can never become the magic.
  EXPECT_EQ(wire::splitFrame("X", &FrameSize, &Payload),
            wire::FrameStatus::BadMagic);
  EXPECT_EQ(wire::splitFrame("GET / HTTP/1.1\r\n", &FrameSize, &Payload),
            wire::FrameStatus::BadMagic);
  // And a diverging later byte too.
  EXPECT_EQ(wire::splitFrame("RELCSRVX\0\0\0\0", &FrameSize, &Payload),
            wire::FrameStatus::BadMagic);
  EXPECT_STREQ(wire::frameStatusReason(wire::FrameStatus::BadMagic),
               "bad-magic");
}

TEST(ProtocolTest, UnknownSchemaVersionIsNamed) {
  wire::Message M;
  M.TheKind = wire::Kind::PingRequest;
  std::string F = encodeFramed(M);
  F[8] = 99; // Schema u32 little-endian starts at byte 8.
  size_t FrameSize = 0;
  std::string_view Payload;
  EXPECT_EQ(wire::splitFrame(F, &FrameSize, &Payload),
            wire::FrameStatus::UnknownVersion);
  EXPECT_STREQ(wire::frameStatusReason(wire::FrameStatus::UnknownVersion),
               "unknown-schema-version");
}

TEST(ProtocolTest, OversizedFrameIsNamedBeforeAllocation) {
  wire::Message M;
  M.TheKind = wire::Kind::PingRequest;
  std::string F = encodeFramed(M);
  // Declare a payload one past the cap; the header alone must be enough
  // to refuse (no attacker-sized buffering).
  uint32_t Huge = wire::kMaxFramePayload + 1;
  std::memcpy(&F[12], &Huge, 4);
  size_t FrameSize = 0;
  std::string_view Payload;
  EXPECT_EQ(wire::splitFrame(std::string_view(F).substr(0, wire::kHeaderSize),
                             &FrameSize, &Payload),
            wire::FrameStatus::Oversized);
  EXPECT_STREQ(wire::frameStatusReason(wire::FrameStatus::Oversized),
               "oversized-frame");
}

TEST(ProtocolTest, MalformedPayloadsAreNamedNeverCrash) {
  // Truncating a structured payload at EVERY byte must yield
  // "malformed-frame" (the kind byte alone is a valid kind-only message
  // for some kinds, so skip full length and, for those, length 1).
  wire::Message M;
  M.TheKind = wire::Kind::CertifyRequest;
  M.Certify = sampleRequest();
  std::string Payload = wire::encode(M);
  for (size_t N = 1; N < Payload.size(); ++N) {
    wire::Message Out;
    std::string Reason;
    EXPECT_FALSE(
        wire::decode(std::string_view(Payload).substr(0, N), &Out, &Reason))
        << "truncation at " << N;
    EXPECT_EQ(Reason, "malformed-frame") << "truncation at " << N;
  }
  // Empty payload: no kind byte at all.
  wire::Message Out;
  std::string Reason;
  EXPECT_FALSE(wire::decode("", &Out, &Reason));
  EXPECT_EQ(Reason, "malformed-frame");
  // Trailing garbage after a complete message is tampering, not slack.
  std::string Padded = Payload + "x";
  EXPECT_FALSE(wire::decode(Padded, &Out, &Reason));
  EXPECT_EQ(Reason, "malformed-frame");
}

TEST(ProtocolTest, HostileCountsAreMalformedNotAllocated) {
  // A certify request claiming 2^31 programs in a 16-byte payload must
  // be refused by name without attempting the allocation.
  std::string Payload;
  Payload.push_back(char(wire::Kind::CertifyRequest));
  uint32_t Count = 0x80000000u;
  Payload.append(reinterpret_cast<const char *>(&Count), 4);
  wire::Message Out;
  std::string Reason;
  EXPECT_FALSE(wire::decode(Payload, &Out, &Reason));
  EXPECT_EQ(Reason, "malformed-frame");
}

TEST(ProtocolTest, UnknownKindByteIsNamed) {
  std::string Payload(1, char(0x33));
  wire::Message Out;
  std::string Reason;
  EXPECT_FALSE(wire::decode(Payload, &Out, &Reason));
  EXPECT_EQ(Reason, "unknown-request-kind");
}

TEST(ProtocolTest, TwoFramesSplitCleanly) {
  wire::Message A, B;
  A.TheKind = wire::Kind::PingRequest;
  B.TheKind = wire::Kind::StatsRequest;
  std::string Buf = encodeFramed(A) + encodeFramed(B);
  size_t FrameSize = 0;
  std::string_view Payload;
  ASSERT_EQ(wire::splitFrame(Buf, &FrameSize, &Payload),
            wire::FrameStatus::Ok);
  wire::Message M;
  std::string Reason;
  ASSERT_TRUE(wire::decode(Payload, &M, &Reason));
  EXPECT_EQ(M.TheKind, wire::Kind::PingRequest);
  Buf.erase(0, FrameSize);
  ASSERT_EQ(wire::splitFrame(Buf, &FrameSize, &Payload),
            wire::FrameStatus::Ok);
  ASSERT_TRUE(wire::decode(Payload, &M, &Reason));
  EXPECT_EQ(M.TheKind, wire::Kind::StatsRequest);
  EXPECT_EQ(FrameSize, Buf.size());
}

} // namespace
