//===- service/Server.h - relcd daemon core ---------------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The long-lived certification daemon behind tools/relcd: listens on a
// local Unix-domain socket, speaks wire schema v1 (service/Protocol.h),
// and serves every certify request through service::certify — so a
// daemon answer is the *same* audited computation relc-gen performs,
// plus three things only a resident process can offer:
//
//   - warmth: the on-disk certificate cache, the rule-registry
//     fingerprint, and an in-memory reply memo persist across requests,
//     so a repeated request costs a hash lookup, not a recompile;
//   - backpressure: at most MaxInflight certify requests run at once —
//     excess requests get a named "server-busy" reply immediately
//     instead of queueing unboundedly;
//   - budgets: requests that carry no budget get the server's defaults,
//     so no client can wedge the daemon with an unbounded certification;
//   - crash-only isolation (Workers > 0): certifications run in a
//     supervised pool of forked, rlimited workers (service/Supervisor.h)
//     — a segfaulting, OOMing, or runaway job loses one worker and is
//     retried with backoff, degrading to a named worker-* status, never
//     taking down the daemon or its warm caches.
//
// Trust story (DESIGN.md §4.11): the daemon is trusted for transport,
// scheduling, and caching only. The certificates it returns are
// byte-identical to relc-gen's and stand on their own — relc-check
// rederives them with no knowledge that a daemon exists. Degraded or
// faulted requests produce named statuses and are never memoized or
// cached.
//
// Fault sites (relc::fault): svc-accept, svc-read, svc-write (keyed by
// connection ordinal), and svc-dispatch (keyed by the program list) let
// the crash-recovery and fuzz suites kill the daemon's I/O
// deterministically.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVICE_SERVER_H
#define RELC_SERVICE_SERVER_H

#include "service/Protocol.h"
#include "service/Supervisor.h"
#include "support/Result.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace relc {
namespace service {

struct ServerOptions {
  std::string SocketPath = "relcd.sock";
  /// Resolved certificate-cache directory ("" = cache disabled); use
  /// cl::resolveCacheDir so the daemon honors RELC_CACHE_DIR like every
  /// other tool.
  std::string CacheDir;
  unsigned Jobs = 1; ///< Scheduler width per certify request.

  unsigned MaxClients = 64;  ///< Concurrent connections; excess → busy.
  unsigned MaxInflight = 16; ///< Concurrent certifications; excess → busy.
  /// Slow-loris guard: once a frame's first byte arrives, the rest must
  /// follow within this window or the connection gets a named
  /// "request-timeout" reply.
  unsigned ReadTimeoutMs = 10000;

  /// Server-side budget defaults, applied when a request carries 0 —
  /// every dispatched certification is wall-clock bounded.
  unsigned DefaultLayerTimeoutMs = 30000;
  uint64_t DefaultTvStepBudget = 0;

  /// In-memory reply memo capacity (distinct request shapes). Only
  /// fully-certified, un-degraded replies are memoized.
  size_t MemoCapacity = 64;

  // --- Crash-only worker isolation (DESIGN.md §4.12). -------------------
  /// Worker-pool size; 0 = certify in-process on the connection thread
  /// (the pre-supervision behavior). With workers, every certification
  /// runs in a forked, rlimited subprocess — a crashing, OOMing, or
  /// hanging job loses one worker, never the daemon.
  unsigned Workers = 0;
  unsigned WorkerRetries = 2;     ///< Retries per job after a lost worker.
  unsigned JobWallMs = 60000;     ///< Per-attempt worker wall deadline.
  unsigned WorkerBackoffBaseMs = 25;
  unsigned WorkerBackoffCapMs = 1000;
  uint64_t WorkerMemLimitMb = 0;  ///< RLIMIT_AS per worker; 0 = inherit.
  unsigned WorkerCpuLimitSec = 0; ///< RLIMIT_CPU per worker; 0 = inherit.

  /// Graceful-drain window: after requestStop()/SIGTERM the listener
  /// closes immediately, in-flight jobs get up to this long to finish
  /// (new certify requests are refused with "server-busy"), then the
  /// daemon hard-stops and the worker pool is torn down.
  unsigned DrainTimeoutMs = 5000;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Takes the `<socket>.lock` flock (losing the race to a live holder
  /// is the named "socket-in-use" failure), binds the socket (recovering
  /// a stale path left by a killed predecessor — a live unlocked daemon
  /// is the named "address-in-use" failure), spawns the worker pool when
  /// configured, starts the accept loop, and returns.
  Status start();

  /// Blocks until a shutdown request (wire or requestStop()) has been
  /// honored and every connection has drained.
  void wait();

  /// Asynchronously begins the graceful drain (idempotent): the
  /// listener closes, in-flight jobs finish up to DrainTimeoutMs, new
  /// certify requests get "server-busy", then the daemon hard-stops.
  void requestStop();

  /// Drain begun (requestStop/SIGTERM/wire shutdown observed).
  bool draining() const;
  /// Hard stop: drain complete (or deadline passed); connections close.
  bool stopping() const;

  /// Snapshot of the counters the StatsRequest serves.
  wire::Stats stats() const;

  const ServerOptions &options() const { return Opts; }

private:
  void acceptLoop();
  void serveConnection(int Fd, uint64_t ConnId);
  /// Dispatches one decoded request; returns the reply to write.
  wire::Message dispatch(const wire::Message &Req);
  wire::Message handleCertify(const wire::CertifyRequest &Req);
  bool writeFrame(int Fd, uint64_t ConnId, const wire::Message &Reply);

  ServerOptions Opts;
  int ListenFd = -1;
  /// Held for the server's lifetime; flock-owned, never unlinked (an
  /// unlink would reopen the very race the lock closes).
  int LockFd = -1;
  std::thread AcceptThread;
  bool Started = false;
  uint64_t RegistryFingerprint = 0;
  std::unique_ptr<Supervisor> Sup; ///< Non-null iff Opts.Workers > 0.

  std::atomic<bool> Draining{false};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> DrainCount{0};
  std::atomic<unsigned> ActiveConns{0};
  std::atomic<unsigned> Inflight{0};
  std::atomic<uint64_t> NextConnId{0};

  // Counters (wire::Stats).
  std::atomic<uint64_t> Requests{0}, CertifyRequests{0}, MemoHits{0},
      CacheHits{0}, CacheMisses{0}, CacheStores{0}, BusyRejections{0},
      ProtocolRejections{0}, FaultedRequests{0};

  /// Drain coordination: connection threads are detached; the last one
  /// out signals DrainCv.
  mutable std::mutex DrainMu;
  std::condition_variable DrainCv;

  /// The reply memo: canonical-request-digest -> memoized reply, LRU-
  /// capped at MemoCapacity. Degraded/failed replies never enter.
  std::mutex MemoMu;
  std::list<std::pair<uint64_t, wire::CertifyReply>> MemoLru;
  std::map<uint64_t, std::list<std::pair<uint64_t, wire::CertifyReply>>::iterator>
      MemoIndex;
};

} // namespace service
} // namespace relc

#endif // RELC_SERVICE_SERVER_H
