//===- tests/cgen/CEmitTest.cpp - C pretty-printer --------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "cgen/CEmit.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::bedrock;

namespace {

Function fn(const char *Name, CmdPtr Body,
            std::vector<std::string> Args = {},
            std::vector<std::string> Rets = {}) {
  Function F;
  F.Name = Name;
  F.Args = std::move(Args);
  F.Rets = std::move(Rets);
  F.Body = std::move(Body);
  return F;
}

TEST(CEmitTest, VoidFunctionSignature) {
  Result<std::string> C = cgen::emitFunction(
      fn("touch", store(AccessSize::Byte, var("p"), lit(1)), {"p"}));
  ASSERT_TRUE(bool(C));
  EXPECT_NE(C->find("void touch(uintptr_t p)"), std::string::npos);
  EXPECT_NE(C->find("*(uint8_t *)"), std::string::npos);
}

TEST(CEmitTest, ReturningFunctionSignature) {
  Result<std::string> C = cgen::emitFunction(
      fn("idf", set("r", var("x")), {"x"}, {"r"}));
  ASSERT_TRUE(bool(C));
  EXPECT_NE(C->find("uintptr_t idf(uintptr_t x)"), std::string::npos);
  EXPECT_NE(C->find("return r;"), std::string::npos);
}

TEST(CEmitTest, MultipleReturnsRejected) {
  Result<std::string> C =
      cgen::emitFunction(fn("two", skip(), {}, {"a", "b"}));
  ASSERT_FALSE(bool(C));
  EXPECT_NE(C.error().str().find("one return"), std::string::npos);
}

TEST(CEmitTest, DollarNamesAreSanitized) {
  Result<std::string> C = cgen::emitFunction(
      fn("f", seqAll({set("i$0", lit(1)), set("sel$1", var("i$0"))})));
  ASSERT_TRUE(bool(C));
  EXPECT_EQ(C->find("$"), std::string::npos);
  EXPECT_NE(C->find("i_0"), std::string::npos);
}

TEST(CEmitTest, CollidingSanitizedNamesStayDistinct) {
  // "i$0" and "i_0" sanitize toward the same identifier; emission must
  // keep them apart.
  Result<std::string> C = cgen::emitFunction(
      fn("f", seqAll({set("i$0", lit(1)), set("i_0", lit(2)),
                      set("r", add(var("i$0"), var("i_0")))}),
         {}, {"r"}));
  ASSERT_TRUE(bool(C));
  EXPECT_NE(C->find("i_0_"), std::string::npos);
}

TEST(CEmitTest, VariableShiftsAreMasked) {
  Result<std::string> C = cgen::emitFunction(
      fn("f", set("r", bin(BinOp::Shl, var("x"), var("y"))), {"x", "y"},
         {"r"}));
  ASSERT_TRUE(bool(C));
  EXPECT_NE(C->find("& 63"), std::string::npos);
  // Constant small shifts stay bare.
  Result<std::string> K = cgen::emitFunction(
      fn("g", set("r", bin(BinOp::Shl, var("x"), lit(3))), {"x"}, {"r"}));
  ASSERT_TRUE(bool(K));
  EXPECT_EQ(K->find("& 63"), std::string::npos);
}

TEST(CEmitTest, ComparisonsCastToWord) {
  Result<std::string> C = cgen::emitFunction(
      fn("f", set("r", bin(BinOp::LtS, var("x"), var("y"))), {"x", "y"},
         {"r"}));
  ASSERT_TRUE(bool(C));
  EXPECT_NE(C->find("(int64_t)x < (int64_t)y"), std::string::npos);
}

TEST(CEmitTest, StackallocBecomesScopedArray) {
  Result<std::string> C = cgen::emitFunction(fn(
      "f", stackalloc("p", 16, store(AccessSize::Byte, var("p"), lit(0)))));
  ASSERT_TRUE(bool(C));
  EXPECT_NE(C->find("uint8_t p_buf[16];"), std::string::npos);
  EXPECT_NE(C->find("uintptr_t p = (uintptr_t)p_buf;"), std::string::npos);
}

TEST(CEmitTest, InlineTablesBecomeStaticConstArrays) {
  Function F = fn("f", set("r", tableGet(AccessSize::Four, "t", var("i"))),
                  {"i"}, {"r"});
  F.Tables.push_back(InlineTable{"t", AccessSize::Four, {1, 2, 3}});
  Result<std::string> C = cgen::emitFunction(F);
  ASSERT_TRUE(bool(C));
  EXPECT_NE(C->find("static const uint32_t table_t[3]"), std::string::npos);
  EXPECT_NE(C->find("table_t["), std::string::npos);
}

TEST(CEmitTest, InteractMapsToRuntimeHooks) {
  Result<std::string> C = cgen::emitFunction(
      fn("f", seqAll({interact({"x"}, "read", {}),
                      interact({}, "write", {var("x")})})));
  ASSERT_TRUE(bool(C));
  EXPECT_NE(C->find("x = relc_ext_read();"), std::string::npos);
  EXPECT_NE(C->find("relc_ext_write(x);"), std::string::npos);
}

TEST(CEmitTest, UnknownInteractionRejected) {
  Result<std::string> C =
      cgen::emitFunction(fn("f", interact({}, "launch_missiles", {})));
  EXPECT_FALSE(bool(C));
}

TEST(CEmitTest, ModuleEmissionForwardDeclares) {
  Module M;
  M.Functions.push_back(fn("b", call({}, "a", {})));
  M.Functions.push_back(fn("a", skip()));
  Result<std::string> C = cgen::emitModule(M);
  ASSERT_TRUE(bool(C));
  // Declaration of a precedes the body of b.
  size_t Decl = C->find("void a();");
  size_t BodyB = C->find("void b() {");
  ASSERT_NE(Decl, std::string::npos);
  ASSERT_NE(BodyB, std::string::npos);
  EXPECT_LT(Decl, BodyB);
}

TEST(CEmitTest, GeneratedSuiteStaysCompactAndPrintable) {
  // The whole benchmark suite emits, and each program's C stays in the
  // size class of handwritten code (no blowup from the derivation).
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    Result<programs::CompiledProgram> C =
        programs::compileAndValidate(P, /*RunValidation=*/false);
    ASSERT_TRUE(bool(C)) << P.Name;
    Result<std::string> Code = cgen::emitFunction(C->Result.Fn);
    ASSERT_TRUE(bool(Code)) << P.Name << ": " << Code.error().str();
    unsigned Lines = 1;
    for (char Ch : *Code)
      Lines += Ch == '\n';
    EXPECT_LT(Lines, 120u) << P.Name; // Tables print 8 entries per line.
  }
}

} // namespace
