# Empty compiler generated dependencies file for relc_stackm.
# This may be replaced when dependencies are built.
