//===- service/Service.h - One audited certification surface ----*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The single request/response pair every certification consumer drives
// the pipeline through — relc-gen, relc-lint, the relcd daemon, benches,
// and tests all build a service::Request and read a service::Response,
// instead of each re-plumbing PipelineOptions + ValidationOptions + its
// own exit-code classification. That gives the toolbox ONE audited
// surface: the exit taxonomy (0 certified / 1 failed / 2 usage /
// 3 degraded), the degraded-never-cached rule, and the cache/budget
// semantics are decided here once, and the wire protocol
// (service/Protocol.h) is a direct projection of these structs.
//
// A Response carries both the flat, wire-projectable summary per program
// (status name, provenance, verdict names, certificate bytes) and the
// full pipeline::ProgramOutcome — in-process consumers like relc-lint
// need the live analysis/TV/codelint report objects and the derivation
// witness, which never cross the wire.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVICE_SERVICE_H
#define RELC_SERVICE_SERVICE_H

#include "pipeline/Pipeline.h"

#include <cstdint>
#include <string>
#include <vector>

namespace relc {
namespace service {

/// The service API version, carried in ping replies next to the wire
/// schema version (service/Protocol.h) and the cert schema version.
constexpr uint32_t kApiVersion = 1;

/// One compile-and-certify request. Field defaults are the relc-gen
/// defaults; the daemon overlays its server-side budget defaults before
/// dispatching wire requests.
struct Request {
  /// Program names to certify; empty = the whole registered suite. An
  /// unknown name is a usage error ("unknown-program"), not a silent
  /// no-op.
  std::vector<std::string> Programs;

  // Layer toggles, passed to PipelineOptions verbatim.
  bool Validate = true; ///< Layers 1 and 4 (replay + differential).
  bool Analyze = true;  ///< Layer 2 (dataflow verifier).
  bool Tv = true;       ///< Layer 3 (translation validation).
  bool Codelint = true; ///< Layer 5 (target-side codelint).

  unsigned Jobs = 1;    ///< Scheduler width; 0 = hardware threads.
  std::string CacheDir; ///< Certificate cache; "" disables it.

  // Robustness budgets (0 = unlimited). Degraded outcomes are named and
  // never cached.
  unsigned LayerTimeoutMs = 0;
  uint64_t TvStepBudget = 0;
  bool KeepGoing = false; ///< Classify degraded-only failures as exit 3.

  // Artifact selection — the in-process face of --cert-format.
  bool WantCertJson = true; ///< Fill ProgramReply::CertJson.
  bool WantCertBin = true;  ///< Fill ProgramReply::CertBin.
  bool EmitC = false;       ///< Fill ProgramReply::CCode + Response::CHeader.
};

/// Per-program classification, the exit taxonomy's program-level face.
enum class ProgramStatus : uint8_t {
  Certified,          ///< Fully certified at full strength.
  CertifiedDegraded,  ///< Certified, but a layer ran truncated (exit 3).
  Degraded,           ///< KeepGoing: only degraded problems (exit 3).
  Failed,             ///< Genuine certification failure (exit 1).
};
const char *statusName(ProgramStatus S); ///< "certified", "failed", ...
bool statusFromName(const std::string &Name, ProgramStatus *Out);

/// Where a reply's verdicts came from.
enum class Provenance : uint8_t {
  Live,      ///< Certified live this request.
  DiskCache, ///< Replayed from the on-disk certificate cache.
  Memo,      ///< Served from the daemon's in-memory response memo.
};
const char *provenanceName(Provenance P); ///< "live", "disk-cache", "memo".

/// One program's reply: the flat wire-projectable summary plus the full
/// in-process outcome. Move-only (the outcome owns its witness).
struct ProgramReply {
  std::string Name;
  ProgramStatus Status = ProgramStatus::Failed;
  Provenance From = Provenance::Live;

  /// Rendered first failure (Failed), or the degradation story
  /// (Degraded) — "" for certified programs.
  std::string Error;
  /// First degraded problem's text when any layer was degraded.
  std::string DegradedNote;

  std::string TvVerdict;       ///< verdictName() form ("proved", ...).
  std::string CodelintVerdict; ///< "safe"/"unknown"/"unsafe" ("" if off).

  std::string CertJson; ///< Per Request::WantCertJson.
  std::string CertBin;  ///< Per Request::WantCertBin.
  std::string CCode;    ///< Complete .c file body per Request::EmitC.

  /// The full pipeline outcome, for consumers needing live reports
  /// (relc-lint) or intermediate artifacts (-print-bedrock).
  pipeline::ProgramOutcome Outcome;
};

struct Response {
  /// The stable relc-gen exit taxonomy: 0 = every program certified at
  /// full strength, 1 = genuine failure, 2 = usage error, 3 = degraded.
  int Exit = 0;
  /// Nonempty iff Exit == 2 ("unknown-program: 'x'").
  std::string UsageError;
  /// resolveJobs' clamp note, "" when the request was honored verbatim.
  std::string JobsNote;

  std::vector<ProgramReply> Programs;
  pipeline::PipelineStats Stats;

  /// Aggregate C declaration header (prelude + decls) when EmitC.
  std::string CHeader;
};

/// THE entry point: certifies Request::Programs through
/// pipeline::certifyPrograms and classifies every outcome. Never throws;
/// usage errors come back as Exit == 2.
Response certify(const Request &R);

} // namespace service
} // namespace relc

#endif // RELC_SERVICE_SERVICE_H
