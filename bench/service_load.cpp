//===- bench/service_load.cpp - relcd daemon load benchmark ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Prices what the relcd daemon adds and what it costs: N client threads
// fire thousands of mixed certify requests over the Unix-domain socket —
// ~90% "hot" (repeats of already-certified suite programs, served from
// the daemon's reply memo) and ~10% "cold" (a unique never-exhausting
// TV-step budget salts the request shape, forcing a live certification).
// Reported against the in-process warm path (service::certify with a
// populated disk cache), the number the daemon must stay within 2× of:
// a resident process may add transport, never a recompile.
//
// By default the daemon runs in-process on a scratch socket; -socket
// points the load at an externally started relcd instead (the CI smoke
// job does this), in which case stats come over the wire exactly like
// any other client's would.
//
// Writes BENCH_service.json (sorted keys) for trajectory tracking;
// EXPERIMENTS.md records the committed numbers.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "programs/Programs.h"
#include "service/Client.h"
#include "service/Server.h"
#include "service/Service.h"
#include "support/CommandLine.h"
#include "support/Fault.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace relc;
using namespace relc_bench;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

double percentile(std::vector<double> V, double Q) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  return V[size_t(double(V.size() - 1) * Q + 0.5)];
}

service::wire::Message certifyMsg(std::vector<std::string> Programs,
                                  uint64_t TvStepBudget = 0) {
  service::wire::Message M;
  M.TheKind = service::wire::Kind::CertifyRequest;
  M.Certify.Programs = std::move(Programs);
  M.Certify.TvStepBudget = TvStepBudget;
  return M;
}

/// One stats round trip (works identically against the in-process server
/// and an external daemon).
service::wire::Stats fetchStats(const std::string &Socket) {
  service::Client C;
  if (Status S = C.connect(Socket, 5000); !S) {
    std::fprintf(stderr, "FATAL: stats connect: %s\n", S.error().str().c_str());
    std::exit(1);
  }
  service::wire::Message Req;
  Req.TheKind = service::wire::Kind::StatsRequest;
  Result<service::wire::Message> R = C.roundTrip(Req);
  if (!R || R->TheKind != service::wire::Kind::StatsReply) {
    std::fprintf(stderr, "FATAL: stats round trip failed\n");
    std::exit(1);
  }
  return R->TheStats;
}

} // namespace

int main(int argc, char **argv) {
  std::string Socket;
  unsigned Clients = 32;
  unsigned Requests = 64;
  std::string OutPath = "BENCH_service.json";

  cl::OptionTable T(
      "service_load",
      "Drives a relcd daemon with N client threads of mixed hot/cold\n"
      "certify requests and reports p50/p99 latency, the cache hit rate,\n"
      "and the warm-request ratio against the in-process warm path.\n"
      "Without -socket, a daemon is started in-process on a scratch\n"
      "socket.");
  T.str({"-socket"}, &Socket, "<path>",
        "drive an externally started relcd on this\n"
        "socket instead of an in-process server");
  T.num({"-clients"}, &Clients, 1, "<n>",
        "concurrent client threads (default: 32)");
  T.num({"-requests"}, &Requests, 1, "<n>",
        "requests per client thread (default: 64)");
  T.str({"-out"}, &OutPath, "<file>",
        "JSON output path (default: BENCH_service.json)");
  switch (T.parse(argc, argv)) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  // Suite program names: the hot side of the mix rotates through them.
  std::vector<std::string> Suite;
  for (const programs::ProgramDef &P : programs::allPrograms())
    Suite.push_back(P.Name);

  // The in-process server, unless an external daemon was named.
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("relc-service-bench-" + std::to_string(uint64_t(::getpid()))))
          .string();
  std::unique_ptr<service::Server> Srv;
  if (Socket.empty()) {
    Socket = (std::filesystem::temp_directory_path() /
              ("relc-service-bench-" + std::to_string(uint64_t(::getpid())) +
               ".sock"))
                 .string();
    std::filesystem::remove(Socket);
    std::filesystem::remove_all(CacheDir);
    service::ServerOptions SO;
    SO.SocketPath = Socket;
    SO.CacheDir = CacheDir;
    SO.MaxClients = 256; // The bench prices latency, not the busy path.
    SO.MaxInflight = 16;
    Srv = std::make_unique<service::Server>(SO);
    if (Status S = Srv->start(); !S) {
      std::fprintf(stderr, "FATAL: server start: %s\n",
                   S.error().str().c_str());
      return 1;
    }
  }

  std::printf("relcd service load: %u clients x %u requests (%s daemon)\n\n",
              Clients, Requests, Srv ? "in-process" : "external");

  // --- Baseline: the in-process warm path. One cold run populates the
  // disk cache; the measured reps replay from it — compile + hash +
  // cache read, no re-certification. Budgets mirror the server-side
  // canonicalization so the request shapes match.
  service::Request Warm;
  Warm.Programs = {"fnv1a"};
  Warm.CacheDir = CacheDir;
  Warm.LayerTimeoutMs = 30000;
  {
    service::Response Prime = service::certify(Warm);
    if (Prime.Exit != 0) {
      std::fprintf(stderr, "FATAL: in-process prime exited %d\n", Prime.Exit);
      return 1;
    }
  }
  std::vector<double> BaseSamples;
  for (unsigned I = 0; I < 30; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    service::Response R = service::certify(Warm);
    BaseSamples.push_back(msSince(T0));
    if (R.Exit != 0) {
      std::fprintf(stderr, "FATAL: in-process warm run exited %d\n", R.Exit);
      return 1;
    }
  }
  double InprocWarm = percentile(BaseSamples, 0.5);
  std::printf("  in-process warm (disk-cache replay) : %7.3f ms p50\n",
              InprocWarm);

  // --- Prime the daemon: one certify per suite program warms the disk
  // cache and the reply memo, so the hot side of the load is a memo hit.
  for (const std::string &P : Suite) {
    service::Client C;
    if (Status S = C.connect(Socket, 5000); !S) {
      std::fprintf(stderr, "FATAL: prime connect: %s\n",
                   S.error().str().c_str());
      return 1;
    }
    Result<service::wire::Message> R = C.roundTrip(certifyMsg({P}));
    if (!R || R->TheKind != service::wire::Kind::CertifyReply ||
        R->Reply.Exit != 0) {
      std::fprintf(stderr, "FATAL: priming '%s' failed\n", P.c_str());
      return 1;
    }
  }

  // --- Warm-request p50 over the wire: the number the acceptance pins
  // within 2x of the in-process warm path.
  std::vector<double> WireWarmSamples;
  {
    service::Client C;
    if (Status S = C.connect(Socket, 5000); !S) {
      std::fprintf(stderr, "FATAL: warm connect: %s\n",
                   S.error().str().c_str());
      return 1;
    }
    for (unsigned I = 0; I < 50; ++I) {
      auto T0 = std::chrono::steady_clock::now();
      Result<service::wire::Message> R = C.roundTrip(certifyMsg({"fnv1a"}));
      WireWarmSamples.push_back(msSince(T0));
      if (!R || R->TheKind != service::wire::Kind::CertifyReply) {
        std::fprintf(stderr, "FATAL: warm round trip failed\n");
        return 1;
      }
    }
  }
  double WireWarm = percentile(WireWarmSamples, 0.5);
  std::printf("  daemon warm request (memo hit)      : %7.3f ms p50  "
              "(%.2fx in-process warm)\n\n",
              WireWarm, WireWarm / InprocWarm);

  // --- Mixed load: every 10th request is cold (a unique, never-
  // exhausting TV step budget salts the memo key, forcing a live
  // certification); the rest rotate hot through the primed suite.
  service::wire::Stats Before = fetchStats(Socket);
  std::mutex SampleMu;
  std::vector<double> AllSamples, HotSamples, ColdSamples;
  std::atomic<unsigned> OkReplies{0}, BusyReplies{0}, ErrorReplies{0},
      LostRoundTrips{0};
  auto LoadT0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      service::Client Cl;
      if (!Cl.connect(Socket, 10000))
        return;
      std::vector<double> MyAll, MyHot, MyCold;
      for (unsigned R = 0; R < Requests; ++R) {
        bool Cold = R % 10 == 9;
        service::wire::Message Req =
            Cold ? certifyMsg({"fnv1a"},
                              1000000000ULL + uint64_t(C) * Requests + R)
                 : certifyMsg({Suite[(C + R) % Suite.size()]});
        auto T0 = std::chrono::steady_clock::now();
        Result<service::wire::Message> Reply = Cl.roundTrip(Req);
        double Ms = msSince(T0);
        if (!Reply) {
          LostRoundTrips.fetch_add(1);
          Cl.close();
          if (!Cl.connect(Socket, 10000))
            return;
          continue;
        }
        MyAll.push_back(Ms);
        (Cold ? MyCold : MyHot).push_back(Ms);
        if (Reply->TheKind == service::wire::Kind::CertifyReply &&
            Reply->Reply.Exit == 0)
          OkReplies.fetch_add(1);
        else if (Reply->TheKind == service::wire::Kind::ErrorReply &&
                 Reply->Error.Reason == "server-busy")
          BusyReplies.fetch_add(1);
        else
          ErrorReplies.fetch_add(1);
      }
      std::lock_guard<std::mutex> L(SampleMu);
      AllSamples.insert(AllSamples.end(), MyAll.begin(), MyAll.end());
      HotSamples.insert(HotSamples.end(), MyHot.begin(), MyHot.end());
      ColdSamples.insert(ColdSamples.end(), MyCold.begin(), MyCold.end());
    });
  for (std::thread &Th : Threads)
    Th.join();
  double LoadMs = msSince(LoadT0);
  service::wire::Stats After = fetchStats(Socket);

  uint64_t DCertify = After.CertifyRequests - Before.CertifyRequests;
  uint64_t DMemo = After.MemoHits - Before.MemoHits;
  uint64_t DCacheHits = After.CacheHits - Before.CacheHits;
  double HitRate =
      DCertify ? double(DMemo + DCacheHits) / double(DCertify) : 0.0;

  double P50 = percentile(AllSamples, 0.5);
  double P99 = percentile(AllSamples, 0.99);
  std::printf("  mixed load: %zu replies in %.0f ms (%.0f req/s)\n",
              AllSamples.size(), LoadMs,
              AllSamples.size() / (LoadMs / 1000.0));
  std::printf("    p50 %7.3f ms   p99 %8.3f ms\n", P50, P99);
  std::printf("    hot  p50 %7.3f ms   cold p50 %8.3f ms\n",
              percentile(HotSamples, 0.5), percentile(ColdSamples, 0.5));
  std::printf("    ok %u  busy %u  error %u  lost %u\n", OkReplies.load(),
              BusyReplies.load(), ErrorReplies.load(), LostRoundTrips.load());
  std::printf("    memo hits %llu  cache hits %llu  of %llu certifies  "
              "(hit rate %.3f)\n",
              (unsigned long long)DMemo, (unsigned long long)DCacheHits,
              (unsigned long long)DCertify, HitRate);

  // --- Worker-mode phase (in-process daemons only): the same warm and
  // mixed measurements against a supervised worker pool on the same
  // (already hot) disk cache, with a low-probability transient crash
  // fault armed during the mixed load. Prices what crash-only isolation
  // costs — fork dispatch on the warm path, absorbed retries under
  // chaos — and feeds the supervision counters into the committed JSON.
  const unsigned WorkerPool = 4;
  double WorkerWarm = 0.0, WorkerDispatch = 0.0, WorkerP50 = 0.0,
         WorkerP99 = 0.0;
  uint64_t WorkerCrashInjected = 0, WorkerRetried = 0, WorkerDegraded = 0;
  unsigned WorkerOk = 0, WorkerBusy = 0, WorkerErr = 0, WorkerLost = 0;
  bool WorkerPhase = bool(Srv);
  if (WorkerPhase) {
    std::string WSocket = Socket + ".w";
    std::filesystem::remove(WSocket);
    service::ServerOptions WO;
    WO.SocketPath = WSocket;
    WO.CacheDir = CacheDir; // Warm: the first phase populated it.
    WO.MaxClients = 256;
    WO.MaxInflight = 16;
    WO.Workers = WorkerPool;
    WO.WorkerRetries = 2;
    service::Server WSrv(WO);
    if (Status S = WSrv.start(); !S) {
      std::fprintf(stderr, "FATAL: worker-mode server start: %s\n",
                   S.error().str().c_str());
      return 1;
    }

    // Two warm measurements. "Warm" is the production warm path — the
    // parent reply memo answers without waking a worker, so supervision
    // must leave it untouched; this is the sample the 2x acceptance gate
    // compares against the in-process warm path. "Dispatch" defeats the
    // memo (a unique layer timeout salts the canonical request bytes
    // without touching the semantic disk-cache key), so every sample
    // crosses the socketpair into a forked worker that replays the
    // certificate from the disk cache — the true per-job price of
    // crash-only isolation, reported but not gated.
    std::vector<double> WWarmSamples, WDispatchSamples;
    {
      service::Client C;
      if (Status S = C.connect(WSocket, 5000); !S) {
        std::fprintf(stderr, "FATAL: worker warm connect: %s\n",
                     S.error().str().c_str());
        return 1;
      }
      for (unsigned I = 0; I < 100; ++I) {
        bool Dispatch = I % 2 == 1;
        service::wire::Message Req = certifyMsg({"fnv1a"});
        if (Dispatch)
          Req.Certify.LayerTimeoutMs = 30001 + I;
        auto T0 = std::chrono::steady_clock::now();
        Result<service::wire::Message> R = C.roundTrip(Req);
        (Dispatch ? WDispatchSamples : WWarmSamples).push_back(msSince(T0));
        if (!R || R->TheKind != service::wire::Kind::CertifyReply ||
            R->Reply.Exit != 0) {
          std::fprintf(stderr, "FATAL: worker warm round trip failed\n");
          return 1;
        }
      }
    }
    WorkerWarm = percentile(WWarmSamples, 0.5);
    WorkerDispatch = percentile(WDispatchSamples, 0.5);
    std::printf("\n  worker-mode warm (memo hit)         : %7.3f ms p50  "
                "(%.2fx in-process warm, %u workers)\n",
                WorkerWarm, WorkerWarm / InprocWarm, WorkerPool);
    std::printf("  worker-mode dispatch (cache replay) : %7.3f ms p50\n",
                WorkerDispatch);

    // Mixed load under chaos: each job key's first crash-fault hit kills
    // the worker mid-dispatch (SIGKILL, for real); the retry budget must
    // absorb every one — a supervised pool degrades only when a fault is
    // persistent, and none here is.
    service::wire::Stats WBefore = WSrv.stats();
    fault::ScopedFaults Chaos(
        "svc-worker-crash:transient:n=1:p=0.08:seed=5");
    std::vector<double> WSamples;
    std::mutex WMu;
    std::atomic<unsigned> WOk{0}, WBusy{0}, WErr{0}, WLost{0};
    std::vector<std::thread> WThreads;
    for (unsigned C = 0; C < Clients; ++C)
      WThreads.emplace_back([&, C] {
        service::Client Cl;
        if (!Cl.connect(WSocket, 10000))
          return;
        std::vector<double> Mine;
        for (unsigned R = 0; R < Requests; ++R) {
          bool Cold = R % 10 == 9;
          service::wire::Message Req =
              Cold ? certifyMsg({"fnv1a"},
                                2000000000ULL + uint64_t(C) * Requests + R)
                   : certifyMsg({Suite[(C + R) % Suite.size()]});
          auto T0 = std::chrono::steady_clock::now();
          Result<service::wire::Message> Reply = Cl.roundTrip(Req);
          double Ms = msSince(T0);
          if (!Reply) {
            WLost.fetch_add(1);
            Cl.close();
            if (!Cl.connect(WSocket, 10000))
              return;
            continue;
          }
          Mine.push_back(Ms);
          if (Reply->TheKind == service::wire::Kind::CertifyReply &&
              Reply->Reply.Exit == 0)
            WOk.fetch_add(1);
          else if (Reply->TheKind == service::wire::Kind::ErrorReply &&
                   Reply->Error.Reason == "server-busy")
            WBusy.fetch_add(1);
          else
            WErr.fetch_add(1);
        }
        std::lock_guard<std::mutex> L(WMu);
        WSamples.insert(WSamples.end(), Mine.begin(), Mine.end());
      });
    for (std::thread &Th : WThreads)
      Th.join();
    fault::disarm();
    service::wire::Stats WAfter = WSrv.stats();

    WorkerP50 = percentile(WSamples, 0.5);
    WorkerP99 = percentile(WSamples, 0.99);
    WorkerCrashInjected = (WAfter.WorkerCrashes - WBefore.WorkerCrashes) +
                          (WAfter.WorkerOoms - WBefore.WorkerOoms) +
                          (WAfter.WorkerTimeouts - WBefore.WorkerTimeouts);
    WorkerRetried = WAfter.WorkerRetries - WBefore.WorkerRetries;
    WorkerDegraded = WAfter.WorkerDegraded - WBefore.WorkerDegraded;
    WorkerOk = WOk.load();
    WorkerBusy = WBusy.load();
    WorkerErr = WErr.load();
    WorkerLost = WLost.load();
    std::printf("    worker mixed p50 %7.3f ms   p99 %8.3f ms\n", WorkerP50,
                WorkerP99);
    std::printf("    ok %u  busy %u  error %u  lost %u\n", WorkerOk,
                WorkerBusy, WorkerErr, WorkerLost);
    std::printf("    crashes injected %llu  retries absorbed %llu  "
                "degraded %llu\n",
                (unsigned long long)WorkerCrashInjected,
                (unsigned long long)WorkerRetried,
                (unsigned long long)WorkerDegraded);

    WSrv.requestStop();
    WSrv.wait();
    std::filesystem::remove(WSocket);
  }

  if (Srv) {
    // Clean shutdown of the in-process daemon before reporting.
    service::Client C;
    if (C.connect(Socket, 2000)) {
      service::wire::Message Down;
      Down.TheKind = service::wire::Kind::ShutdownRequest;
      (void)C.roundTrip(Down);
    }
    Srv->requestStop();
    Srv->wait();
    Srv.reset();
    std::filesystem::remove_all(CacheDir);
    std::filesystem::remove(Socket);
  }

  // Sorted keys, so diffs of committed files read cleanly.
  std::ofstream J(OutPath);
  char Buf[160];
  J << "{\n";
  J << "  \"busy_replies\": " << BusyReplies.load() << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"cache_hit_rate\": %.3f,\n", HitRate);
  J << Buf;
  J << "  \"clients\": " << Clients << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"cold_p50_ms\": %.3f,\n",
                percentile(ColdSamples, 0.5));
  J << Buf;
  J << "  \"error_replies\": " << ErrorReplies.load() << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"hot_p50_ms\": %.3f,\n",
                percentile(HotSamples, 0.5));
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"inprocess_warm_ms\": %.3f,\n",
                InprocWarm);
  J << Buf;
  J << "  \"lost_round_trips\": " << LostRoundTrips.load() << ",\n";
  J << "  \"memo_hits\": " << DMemo << ",\n";
  J << "  \"ok_replies\": " << OkReplies.load() << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"p50_ms\": %.3f,\n", P50);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"p99_ms\": %.3f,\n", P99);
  J << Buf;
  J << "  \"requests_per_client\": " << Requests << ",\n";
  J << "  \"requests_total\": " << AllSamples.size() << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"warm_ratio_vs_inprocess\": %.3f,\n",
                WireWarm / InprocWarm);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"warm_wire_p50_ms\": %.3f,\n", WireWarm);
  J << Buf;
  J << "  \"worker_crash_injected\": " << WorkerCrashInjected << ",\n";
  J << "  \"worker_degraded_replies\": " << WorkerDegraded << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"worker_dispatch_p50_ms\": %.3f,\n",
                WorkerDispatch);
  J << Buf;
  J << "  \"worker_lost_round_trips\": " << WorkerLost << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"worker_mixed_p50_ms\": %.3f,\n",
                WorkerP50);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"worker_mixed_p99_ms\": %.3f,\n",
                WorkerP99);
  J << Buf;
  J << "  \"worker_ok_replies\": " << WorkerOk << ",\n";
  J << "  \"worker_phase_run\": " << (WorkerPhase ? 1 : 0) << ",\n";
  J << "  \"worker_retried\": " << WorkerRetried << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"worker_warm_p50_ms\": %.3f,\n",
                WorkerWarm);
  J << Buf;
  std::snprintf(Buf, sizeof(Buf), "  \"worker_warm_ratio_vs_inprocess\": %.3f,\n",
                WorkerPhase ? WorkerWarm / InprocWarm : 0.0);
  J << Buf;
  J << "  \"workers\": " << (WorkerPhase ? WorkerPool : 0) << "\n";
  J << "}\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  // The acceptance gates, enforced here so CI's smoke job is one run:
  // no lost round trips against a healthy daemon, and the warm wire
  // request within 2x of the in-process warm path.
  if (LostRoundTrips.load() > 0) {
    std::fprintf(stderr, "FATAL: %u round trips lost\n", LostRoundTrips.load());
    return 1;
  }
  if (WireWarm > 2.0 * InprocWarm) {
    std::fprintf(stderr, "FATAL: warm wire p50 %.3f ms exceeds 2x in-process "
                         "warm %.3f ms\n",
                 WireWarm, InprocWarm);
    return 1;
  }
  if (WorkerPhase) {
    // Crash-only isolation must be cheap and lossless: the worker-mode
    // warm path stays within the same 2x envelope as the plain wire
    // path, no round trip is lost under injected chaos, and a purely
    // transient fault plan leaves nothing degraded.
    if (WorkerLost > 0) {
      std::fprintf(stderr, "FATAL: %u worker-mode round trips lost\n",
                   WorkerLost);
      return 1;
    }
    if (WorkerWarm > 2.0 * InprocWarm) {
      std::fprintf(stderr,
                   "FATAL: worker-mode warm p50 %.3f ms exceeds 2x "
                   "in-process warm %.3f ms\n",
                   WorkerWarm, InprocWarm);
      return 1;
    }
    if (WorkerDegraded > 0) {
      std::fprintf(stderr,
                   "FATAL: %llu replies degraded under a transient-only "
                   "fault plan\n",
                   (unsigned long long)WorkerDegraded);
      return 1;
    }
  }
  return 0;
}
