//===- tools/relc-check.cpp - Independent certificate checker --------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The auditor for the certificates relc-gen emits: for each benchmark
// program it recompiles the model, reads the program's certificate from
// the certificate directory, and has cert::Rederive independently
// re-derive every recorded hash — content key, per-binding trace, loop
// summaries (replaying the recorded match witness instead of searching),
// and output channels. A certificate that is missing, malformed, stale,
// tampered with, or simply wrong is rejected with a named reason.
//
// Deliberately NOT linked against the TV driver (tv/Tv.cpp): the checker
// must not be able to "ask the producer" — everything it accepts, it
// re-derived itself through the term-graph normalizer. CI asserts the
// absence of driver symbols in this binary with nm.
//
// Exit codes: 0 = every checked certificate accepted; 1 = at least one
// certificate rejected; 2 = usage or infrastructure error (unknown
// program, model fails to compile).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"
#include "relc/Cert.h"
#include "relc/Check.h"
#include "support/CommandLine.h"
#include "support/ToolFlags.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace relc;

int main(int argc, char **argv) {
  std::string CertsDir = "generated";
  std::string CertFormat = "auto";
  bool Quiet = false;
  cl::CacheDirFlags Cache;
  std::vector<const programs::ProgramDef *> Targets;
  std::string PosErr;

  cl::OptionTable T(
      "relc-check",
      "Independently re-checks the equivalence certificates relc-gen\n"
      "emitted: recompiles each model, re-derives every certified hash\n"
      "through the term-graph normalizer, and replays the recorded loop\n"
      "witnesses — without the translation-validation driver. Rejects\n"
      "missing, malformed, stale, or tampered certificates with a named\n"
      "reason.\n"
      "\n"
      "Exit codes: 0 all certificates accepted; 1 some certificate\n"
      "rejected; 2 usage or infrastructure error.");
  T.str({"-certs"}, &CertsDir, "<dir>",
        "certificate directory (default: generated)");
  T.choice({"-cert-format"}, &CertFormat, {"json", "bin", "auto"}, "<fmt>",
           "which certificate to check: 'json' =\n"
           "<program>.tv.json, 'bin' = <program>.certbin,\n"
           "'auto' = the binary image when present, else\n"
           "the JSON (a present-but-invalid image is a\n"
           "rejection, never a silent fallback)\n"
           "(default: auto)");
  T.flag({"-q"}, &Quiet, "print only rejections and the final summary");
  // Cross-tool uniformity (support/ToolFlags.h): the checker accepts the
  // cache flags but its acceptances never come from a cache — everything
  // it accepts, it re-derived itself.
  cl::addCacheDirFlags(T, Cache, /*Consults=*/false);
  T.positional("program", "check only the named programs (default: all)",
               [&Targets](const std::string &A, std::string *Err) {
                 const programs::ProgramDef *P = programs::findProgram(A);
                 if (!P) {
                   *Err = "unknown program '" + A + "'";
                   return false;
                 }
                 Targets.push_back(P);
                 return true;
               });

  switch (T.parse(argc, argv)) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  if (Targets.empty())
    for (const programs::ProgramDef &P : programs::allPrograms())
      Targets.push_back(&P);

  unsigned Rejected = 0;
  for (const programs::ProgramDef *P : Targets) {
    // Recompile the model: the certificate pins the emitted code by
    // content hash, and the re-derivation checks model-vs-code
    // equivalence from scratch.
    core::Compiler C;
    Result<core::CompileResult> R = C.compileFn(P->Model, P->Spec, P->Hints);
    if (!R) {
      std::fprintf(stderr, "[%s] model failed to compile:\n%s\n",
                   P->Name.c_str(), R.takeError().str().c_str());
      return 2;
    }
    core::CompileResult Compiled = R.take();

    // Which face of the certificate to audit. 'auto' prefers the binary
    // image when one exists — and a present-but-invalid image is a named
    // rejection, not a fallback: silently re-reading the JSON would let a
    // tampered image pass unremarked (rejection is never acceptance, and
    // acceptance of a sibling is not acceptance of the image).
    std::string JsonPath = CertsDir + "/" + P->Name + ".tv.json";
    std::string BinPath = CertsDir + "/" + P->Name + cert::kBinExtension;
    bool UseBin = CertFormat == "bin" ||
                  (CertFormat == "auto" &&
                   std::ifstream(BinPath, std::ios::binary).good());
    cert::ReadError RE;
    std::optional<cert::Certificate> Cert =
        UseBin ? cert::BinReader::readFile(BinPath, &RE)
               : cert::Reader::readFile(JsonPath, &RE);
    if (!Cert) {
      std::fprintf(stderr, "[%s] certificate REJECTED: %s: %s\n",
                   P->Name.c_str(), cert::rejectName(RE.Why),
                   RE.Detail.c_str());
      ++Rejected;
      continue;
    }

    cert::CheckResult CR = cert::Rederive::check(
        *Cert, P->Model, P->Hints.EntryFacts, P->Spec, Compiled.Fn);
    if (!CR.Accepted) {
      std::fprintf(stderr, "[%s] certificate REJECTED: %s: %s\n",
                   P->Name.c_str(), cert::rejectName(CR.Why),
                   CR.Detail.c_str());
      ++Rejected;
      continue;
    }
    if (!Quiet)
      std::printf("[%s] certificate accepted: %zu bindings, %zu loops, "
                  "%zu outputs re-derived\n",
                  P->Name.c_str(), Cert->Bindings.size(), Cert->Loops.size(),
                  Cert->Outputs.size());
  }

  if (Rejected) {
    std::fprintf(stderr, "relc-check: %u certificate(s) rejected\n", Rejected);
    return 1;
  }
  if (!Quiet)
    std::printf("relc-check: %zu certificate(s) accepted\n", Targets.size());
  return 0;
}
