//===- ir/Expr.cpp - Pure scalar expressions -------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include "support/StringExtras.h"

namespace relc {
namespace ir {

const char *tyName(Ty T) {
  switch (T) {
  case Ty::Word:
    return "word";
  case Ty::Byte:
    return "byte";
  case Ty::Bool:
    return "bool";
  }
  return "?";
}

const char *wordOpName(WordOp Op) {
  switch (Op) {
  case WordOp::Add:
    return "+";
  case WordOp::Sub:
    return "-";
  case WordOp::Mul:
    return "*";
  case WordOp::DivU:
    return "/";
  case WordOp::RemU:
    return "mod";
  case WordOp::And:
    return "&";
  case WordOp::Or:
    return "|";
  case WordOp::Xor:
    return "^";
  case WordOp::Shl:
    return "<<";
  case WordOp::LShr:
    return ">>";
  case WordOp::AShr:
    return ">>s";
  case WordOp::LtU:
    return "<?";
  case WordOp::LtS:
    return "<s?";
  case WordOp::Eq:
    return "=?";
  case WordOp::Ne:
    return "<>?";
  }
  return "?";
}

bool wordOpIsCompare(WordOp Op) {
  return Op == WordOp::LtU || Op == WordOp::LtS || Op == WordOp::Eq ||
         Op == WordOp::Ne;
}

uint64_t evalWordOp(WordOp Op, uint64_t A, uint64_t B) {
  switch (Op) {
  case WordOp::Add:
    return A + B;
  case WordOp::Sub:
    return A - B;
  case WordOp::Mul:
    return A * B;
  case WordOp::DivU:
    return B == 0 ? ~uint64_t(0) : A / B;
  case WordOp::RemU:
    return B == 0 ? A : A % B;
  case WordOp::And:
    return A & B;
  case WordOp::Or:
    return A | B;
  case WordOp::Xor:
    return A ^ B;
  case WordOp::Shl:
    return A << (B & 63);
  case WordOp::LShr:
    return A >> (B & 63);
  case WordOp::AShr:
    return uint64_t(int64_t(A) >> (B & 63));
  case WordOp::LtU:
    return A < B ? 1 : 0;
  case WordOp::LtS:
    return int64_t(A) < int64_t(B) ? 1 : 0;
  case WordOp::Eq:
    return A == B ? 1 : 0;
  case WordOp::Ne:
    return A != B ? 1 : 0;
  }
  assert(false && "unknown word op");
  return 0;
}

//===----------------------------------------------------------------------===//
// Printing.
//===----------------------------------------------------------------------===//

std::string Const::str() const {
  switch (TheValue.kind()) {
  case Value::Kind::Word:
    return TheValue.asWord() < 1024 ? std::to_string(TheValue.asWord())
                                    : hexStr(TheValue.asWord());
  case Value::Kind::Byte:
    return "0x" + hexByte(TheValue.asByte()) + "%byte";
  case Value::Kind::Bool:
    return TheValue.asBool() ? "true" : "false";
  default:
    return "?";
  }
}

std::string Bin::str() const {
  return "(" + Lhs->str() + " " + wordOpName(Op) + " " + Rhs->str() + ")";
}

std::string Select::str() const {
  return "(if " + Cond->str() + " then " + Then->str() + " else " +
         Else->str() + ")";
}

std::string Cast::str() const {
  switch (CK) {
  case CastKind::ByteToWord:
    return "b2w " + Operand->str();
  case CastKind::WordToByte:
    return "w2b " + Operand->str();
  case CastKind::BoolToWord:
    return "Z.b2z " + Operand->str();
  }
  return "?";
}

std::string ArrayGet::str() const {
  return "ListArray.get " + Array + " " + Index->str();
}

std::string TableGet::str() const {
  return "InlineTable.get " + Table + " " + Index->str();
}

//===----------------------------------------------------------------------===//
// Combinators.
//===----------------------------------------------------------------------===//

ExprPtr cw(uint64_t W) { return std::make_shared<Const>(Value::word(W)); }
ExprPtr cb(uint8_t B) { return std::make_shared<Const>(Value::byte(B)); }
ExprPtr cbool(bool B) { return std::make_shared<Const>(Value::boolean(B)); }
ExprPtr v(std::string Name) {
  return std::make_shared<VarRef>(std::move(Name));
}
ExprPtr binop(WordOp Op, ExprPtr L, ExprPtr R) {
  return std::make_shared<Bin>(Op, std::move(L), std::move(R));
}
ExprPtr addw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::Add, std::move(L), std::move(R));
}
ExprPtr subw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::Sub, std::move(L), std::move(R));
}
ExprPtr mulw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::Mul, std::move(L), std::move(R));
}
ExprPtr andw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::And, std::move(L), std::move(R));
}
ExprPtr orw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::Or, std::move(L), std::move(R));
}
ExprPtr xorw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::Xor, std::move(L), std::move(R));
}
ExprPtr shlw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::Shl, std::move(L), std::move(R));
}
ExprPtr shrw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::LShr, std::move(L), std::move(R));
}
ExprPtr ltu(ExprPtr L, ExprPtr R) {
  return binop(WordOp::LtU, std::move(L), std::move(R));
}
ExprPtr eqw(ExprPtr L, ExprPtr R) {
  return binop(WordOp::Eq, std::move(L), std::move(R));
}
ExprPtr nez(ExprPtr E) { return binop(WordOp::Ne, std::move(E), cw(0)); }
ExprPtr select(ExprPtr C, ExprPtr T, ExprPtr E) {
  return std::make_shared<Select>(std::move(C), std::move(T), std::move(E));
}
ExprPtr b2w(ExprPtr E) {
  return std::make_shared<Cast>(CastKind::ByteToWord, std::move(E));
}
ExprPtr w2b(ExprPtr E) {
  return std::make_shared<Cast>(CastKind::WordToByte, std::move(E));
}
ExprPtr bool2w(ExprPtr E) {
  return std::make_shared<Cast>(CastKind::BoolToWord, std::move(E));
}
ExprPtr aget(std::string Array, ExprPtr Index) {
  return std::make_shared<ArrayGet>(std::move(Array), std::move(Index));
}
ExprPtr tget(std::string Table, ExprPtr Index) {
  return std::make_shared<TableGet>(std::move(Table), std::move(Index));
}

ExprPtr rotl(ExprPtr E, unsigned Amount, unsigned Bits) {
  assert(Bits > 0 && Bits <= 64 && Amount < Bits && "bad rotate");
  uint64_t Mask = Bits == 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
  // (e << a | e >> (bits - a)) & mask; the operand must already fit.
  ExprPtr Hi = shlw(E, cw(Amount));
  ExprPtr Lo = shrw(E, cw(Bits - Amount));
  return andw(orw(std::move(Hi), std::move(Lo)), cw(Mask));
}

const char *exprKindName(Expr::Kind K) {
  switch (K) {
  case Expr::Kind::Const:
    return "const";
  case Expr::Kind::VarRef:
    return "var-ref";
  case Expr::Kind::Bin:
    return "bin";
  case Expr::Kind::Select:
    return "select";
  case Expr::Kind::Cast:
    return "cast";
  case Expr::Kind::ArrayGet:
    return "array-get";
  case Expr::Kind::TableGet:
    return "table-get";
  }
  return "unknown";
}

const std::vector<Expr::Kind> &allExprKinds() {
  static const std::vector<Expr::Kind> Kinds = {
      Expr::Kind::Const,  Expr::Kind::VarRef,   Expr::Kind::Bin,
      Expr::Kind::Select, Expr::Kind::Cast,     Expr::Kind::ArrayGet,
      Expr::Kind::TableGet};
  return Kinds;
}

} // namespace ir
} // namespace relc
