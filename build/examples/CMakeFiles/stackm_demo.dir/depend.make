# Empty dependencies file for stackm_demo.
# This may be replaced when dependencies are built.
