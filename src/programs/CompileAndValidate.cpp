//===- programs/CompileAndValidate.cpp - One-call program certification ----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// In its own translation unit, apart from the program registry: this is
// the only place relc_programs references validate::validate, so binaries
// that just enumerate programs (relc-check, which must stay free of the
// TV driver validate() links) never pull this object out of the archive.
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

Result<CompiledProgram> compileAndValidate(const ProgramDef &P,
                                           bool RunValidation) {
  core::Compiler C;
  Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
  if (!R)
    return R.takeError().note("while compiling program " + P.Name);

  CompiledProgram Out{R.take(), bedrock::Module{}};
  Out.Linked.Functions.push_back(Out.Result.Fn);

  if (RunValidation) {
    validate::ValidationOptions VO = P.VOpts;
    VO.Hints = P.Hints; // The analyzer assumes exactly what the compiler did.
    Status V = validate::validate(P.Model, P.Spec, Out.Result, Out.Linked,
                                  VO);
    if (!V)
      return V.takeError().note("while validating program " + P.Name);
  }
  return Out;
}

} // namespace programs
} // namespace relc
