file(REMOVE_RECURSE
  "librelc_solver.a"
)
