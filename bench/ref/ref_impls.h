/*===- bench/ref/ref_impls.h - Handwritten C references --------------------===
 *
 * Part of relc, a C++ reproduction of "Relational Compilation for
 * Performance-Critical Applications" (PLDI 2022).
 *
 * The handwritten side of Figure 2: idiomatic C implementations of the
 * seven benchmark tasks, written the way a careful C programmer would,
 * independently of the generated code. Signatures use ordinary C types;
 * the bench adapts between these and the generated uintptr_t ABI.
 *
 *===----------------------------------------------------------------------===*/

#ifndef RELC_BENCH_REF_IMPLS_H
#define RELC_BENCH_REF_IMPLS_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

uint64_t ref_fnv1a(const uint8_t *s, size_t len);

/* Decodes the whole buffer (len >= 4); returns (errors<<32)|xor-of-codepoints,
 * the same observable as the generated driver. */
uint64_t ref_utf8(const uint8_t *s, size_t len);

void ref_upstr(uint8_t *s, size_t len);

uint32_t ref_m3s(uint32_t k);

uint16_t ref_ip_chk(const uint8_t *s, size_t len);

void ref_fasta(uint8_t *s, size_t len);

uint32_t ref_crc32(const uint8_t *s, size_t len);

#ifdef __cplusplus
}
#endif

#endif /* RELC_BENCH_REF_IMPLS_H */
