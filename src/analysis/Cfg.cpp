//===- analysis/Cfg.cpp - Control-flow graph over bedrock commands --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include <cassert>

namespace relc {
namespace analysis {

using namespace bedrock;

class CfgBuilder {
public:
  explicit CfgBuilder(Cfg &G) : G(G) { Cur = newBlock(); }

  void run(const Function &Fn) {
    if (Fn.Body)
      lower(Fn.Body.get(), "body");
    G.Blocks[Cur].T = BasicBlock::Term::Exit;
    G.finalize();
  }

private:
  Cfg &G;
  unsigned Cur;

  unsigned newBlock() {
    unsigned Id = unsigned(G.Blocks.size());
    G.Blocks.emplace_back();
    G.Blocks.back().Id = Id;
    return Id;
  }

  void jumpTo(unsigned From, unsigned To) {
    G.Blocks[From].T = BasicBlock::Term::Jump;
    G.Blocks[From].TrueSucc = To;
  }

  void branchTo(unsigned From, const Expr *Cond, const std::string &Path,
                unsigned OnTrue, unsigned OnFalse) {
    BasicBlock &B = G.Blocks[From];
    B.T = BasicBlock::Term::Branch;
    B.Cond = Cond;
    B.CondPath = Path;
    B.TrueSucc = OnTrue;
    B.FalseSucc = OnFalse;
  }

  /// Expands right-nested Seq into a statement list, dropping Skips.
  static void flatten(const Cmd *C, std::vector<const Cmd *> &Out) {
    if (isa<Skip>(C))
      return;
    if (const auto *S = dyn_cast<Seq>(C)) {
      flatten(S->first(), Out);
      flatten(S->second(), Out);
      return;
    }
    Out.push_back(C);
  }

  void lower(const Cmd *C, const std::string &Prefix) {
    std::vector<const Cmd *> List;
    flatten(C, List);
    for (size_t I = 0; I < List.size(); ++I)
      lowerOne(List[I], Prefix + "." + std::to_string(I));
  }

  void lowerOne(const Cmd *C, const std::string &Path) {
    switch (C->kind()) {
    case Cmd::Kind::Skip:
    case Cmd::Kind::Seq:
      assert(false && "flattened away");
      return;
    case Cmd::Kind::Set:
    case Cmd::Kind::Unset:
    case Cmd::Kind::Store:
    case Cmd::Kind::Call:
    case Cmd::Kind::Interact:
      G.Blocks[Cur].Stmts.push_back({CfgStmt::Kind::Simple, C, Path});
      return;
    case Cmd::Kind::If: {
      const auto *I = cast<If>(C);
      unsigned Head = Cur;
      unsigned ThenB = newBlock();
      unsigned ElseB = newBlock();
      branchTo(Head, I->cond(), Path, ThenB, ElseB);
      Cur = ThenB;
      lower(I->thenCmd(), Path + ".then");
      unsigned ThenEnd = Cur;
      Cur = ElseB;
      lower(I->elseCmd(), Path + ".else");
      unsigned ElseEnd = Cur;
      unsigned Join = newBlock();
      jumpTo(ThenEnd, Join);
      jumpTo(ElseEnd, Join);
      Cur = Join;
      return;
    }
    case Cmd::Kind::While: {
      const auto *W = cast<While>(C);
      unsigned Header = newBlock();
      jumpTo(Cur, Header);
      G.Blocks[Header].IsLoopHeader = true;
      unsigned Body = newBlock();
      unsigned ExitB = newBlock();
      branchTo(Header, W->cond(), Path, Body, ExitB);
      Cur = Body;
      lower(W->body(), Path + ".body");
      jumpTo(Cur, Header); // Back edge.
      Cur = ExitB;
      return;
    }
    case Cmd::Kind::Stackalloc: {
      const auto *SA = cast<Stackalloc>(C);
      G.Blocks[Cur].Stmts.push_back({CfgStmt::Kind::StackEnter, C, Path});
      lower(SA->body(), Path + ".body");
      G.Blocks[Cur].Stmts.push_back(
          {CfgStmt::Kind::StackExit, C, Path + ".exit"});
      return;
    }
    }
  }
};

Cfg Cfg::build(const Function &Fn) {
  Cfg G;
  CfgBuilder B(G);
  B.run(Fn);
  return G;
}

void Cfg::finalize() {
  // Predecessors.
  for (const BasicBlock &B : Blocks) {
    if (B.T == BasicBlock::Term::Jump) {
      Blocks[B.TrueSucc].Preds.push_back(B.Id);
    } else if (B.T == BasicBlock::Term::Branch) {
      Blocks[B.TrueSucc].Preds.push_back(B.Id);
      if (B.FalseSucc != B.TrueSucc)
        Blocks[B.FalseSucc].Preds.push_back(B.Id);
    }
  }

  // Reverse post order by iterative DFS.
  std::vector<uint8_t> Seen(Blocks.size(), 0);
  std::vector<unsigned> Post;
  // Stack frames: (block, next successor index to explore).
  std::vector<std::pair<unsigned, unsigned>> Stack;
  Stack.push_back({0, 0});
  Seen[0] = 1;
  while (!Stack.empty()) {
    auto &[Id, Next] = Stack.back();
    const BasicBlock &B = Blocks[Id];
    unsigned Succs[2];
    unsigned NumSuccs = 0;
    if (B.T == BasicBlock::Term::Jump) {
      Succs[NumSuccs++] = B.TrueSucc;
    } else if (B.T == BasicBlock::Term::Branch) {
      Succs[NumSuccs++] = B.TrueSucc;
      if (B.FalseSucc != B.TrueSucc)
        Succs[NumSuccs++] = B.FalseSucc;
    }
    if (Next < NumSuccs) {
      unsigned S = Succs[Next++];
      if (!Seen[S]) {
        Seen[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      Post.push_back(Id);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  RpoPos.assign(Blocks.size(), 0);
  for (unsigned I = 0; I < Rpo.size(); ++I)
    RpoPos[Rpo[I]] = I;
}

std::string Cfg::str() const {
  std::string Out;
  for (const BasicBlock &B : Blocks) {
    Out += "bb" + std::to_string(B.Id);
    if (B.IsLoopHeader)
      Out += " (loop header)";
    Out += ":\n";
    for (const CfgStmt &S : B.Stmts) {
      Out += "  [" + S.Path + "] ";
      switch (S.K) {
      case CfgStmt::Kind::Simple: {
        std::string Line = S.C->str(0);
        if (!Line.empty() && Line.back() == '\n')
          Line.pop_back();
        Out += Line;
        break;
      }
      case CfgStmt::Kind::StackEnter:
        Out += "stack-enter " + cast<Stackalloc>(S.C)->name() + "[" +
               std::to_string(cast<Stackalloc>(S.C)->numBytes()) + "]";
        break;
      case CfgStmt::Kind::StackExit:
        Out += "stack-exit " + cast<Stackalloc>(S.C)->name();
        break;
      }
      Out += "\n";
    }
    switch (B.T) {
    case BasicBlock::Term::Jump:
      Out += "  goto bb" + std::to_string(B.TrueSucc) + "\n";
      break;
    case BasicBlock::Term::Branch:
      Out += "  if " + B.Cond->str() + " then bb" +
             std::to_string(B.TrueSucc) + " else bb" +
             std::to_string(B.FalseSucc) + "\n";
      break;
    case BasicBlock::Term::Exit:
      Out += "  exit\n";
      break;
    }
  }
  return Out;
}

} // namespace analysis
} // namespace relc
