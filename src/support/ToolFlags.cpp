//===- support/ToolFlags.cpp - Shared tool flag tables ---------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/ToolFlags.h"

#include "support/Fault.h"

#include <cstdlib>

namespace relc {
namespace cl {

void addCacheDirFlags(OptionTable &T, CacheDirFlags &F, bool Consults) {
  T.str({"-cache-dir"}, &F.Dir, "<dir>",
        Consults ? "certificate cache directory (default:\n"
                   "$RELC_CACHE_DIR when set, else .relc-cache)"
                 : "certificate cache directory; accepted for\n"
                   "cross-tool uniformity ($RELC_CACHE_DIR), but\n"
                   "this tool's verdicts never consult the cache");
  T.flag({"-no-cache"}, &F.NoCache,
         Consults ? "disable the certificate cache"
                  : "disable the certificate cache (accepted for\n"
                    "cross-tool uniformity; see -cache-dir)");
}

std::string resolveCacheDir(const CacheDirFlags &F) {
  if (F.NoCache)
    return "";
  if (!F.Dir.empty())
    return F.Dir;
  if (const char *Env = std::getenv("RELC_CACHE_DIR"); Env && *Env)
    return Env;
  return ".relc-cache";
}

void addBudgetFlags(OptionTable &T, BudgetFlags &F) {
  T.num({"-layer-timeout-ms"}, &F.LayerTimeoutMs, 0, "<ms>",
        "wall-clock deadline per certification layer\n"
        "per program; exhaustion degrades the layer\n"
        "instead of hanging (default: 0 = unlimited)");
  T.custom({"-tv-step-budget"}, /*HasValue=*/true, "<n>",
           "cap translation validation at <n> normalization\n"
           "/search steps; exhaustion degrades TV to\n"
           "inconclusive (default: 0 = unlimited)",
           [&F](const std::string &V, std::string *Err) {
             if (V.empty() ||
                 V.find_first_not_of("0123456789") != std::string::npos) {
               *Err = "expected a non-negative integer, got '" + V + "'";
               return false;
             }
             F.TvStepBudget = std::strtoull(V.c_str(), nullptr, 10);
             return true;
           });
}

void addFaultFlag(OptionTable &T) {
  T.custom({"-fault"}, /*HasValue=*/true, "<spec>",
           "arm deterministic fault injection, e.g.\n"
           "'cache-write:transient:n=2' or\n"
           "'layer-entry:persistent:match=fnv1a/tv'\n"
           "(overrides RELC_FAULT_SPEC; for testing)",
           [](const std::string &V, std::string *Err) {
             if (Status S = fault::arm(V); !S) {
               *Err = S.error().str();
               return false;
             }
             return true;
           });
}

void addJobsFlag(OptionTable &T, unsigned &Jobs, const std::string &What) {
  T.num({"-j", "-jobs"}, &Jobs, 0, "<n>",
        What + " scheduler width; 1 = serial\n"
               "reference order, 0 = all hardware threads\n"
               "(default: 1)");
}

} // namespace cl
} // namespace relc
