//===- support/Result.h - Error handling without exceptions ----*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A small Expected/Error pair in the spirit of llvm::Expected. The library
// never throws: fallible operations return Result<T>, and infallible
// invariants are enforced with assertions.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_RESULT_H
#define RELC_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace relc {

/// A structured error: a primary message plus a stack of context notes added
/// as the error propagates outward (innermost first).
class Error {
public:
  Error() = default;
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }
  const std::vector<std::string> &notes() const { return Notes; }

  /// Attaches a context note; returns *this to allow chaining on return.
  Error &note(std::string Note) {
    Notes.push_back(std::move(Note));
    return *this;
  }

  /// Renders the message followed by indented context notes.
  std::string str() const {
    std::string Out = Message;
    for (const std::string &N : Notes) {
      Out += "\n  note: ";
      Out += N;
    }
    return Out;
  }

private:
  std::string Message;
  std::vector<std::string> Notes;
};

/// Tag type used to construct failed Results unambiguously.
struct ErrorTag {};

/// Result<T> holds either a value of type T or an Error.
///
/// Unlike llvm::Expected there is no "unchecked" poisoning; callers are
/// expected to branch on operator bool before dereferencing (enforced with
/// assertions in debug builds).
template <typename T> class [[nodiscard]] Result {
public:
  /// Success constructors.
  Result(T Value) : Value(std::move(Value)) {}

  /// Failure constructor.
  Result(Error E) : Err(std::move(E)) { assert(!Value && "both states set"); }

  /// True on success.
  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing failed Result");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing failed Result");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing failed Result");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing failed Result");
    return &*Value;
  }

  /// Moves the value out; only valid on success.
  T take() {
    assert(Value && "taking from failed Result");
    return std::move(*Value);
  }

  Error &error() {
    assert(!Value && "reading error of successful Result");
    return Err;
  }
  const Error &error() const {
    assert(!Value && "reading error of successful Result");
    return Err;
  }

  /// Moves the error out; only valid on failure. Convenient for propagating
  /// an inner failure with added context:
  ///   return R.takeError().note("while compiling loop body");
  Error takeError() {
    assert(!Value && "taking error of successful Result");
    return std::move(Err);
  }

private:
  std::optional<T> Value;
  Error Err;
};

/// Result<void> analogue: success carries no payload.
class [[nodiscard]] Status {
public:
  Status() = default;
  Status(Error E) : Err(std::move(E)), Failed(true) {}

  static Status success() { return Status(); }

  explicit operator bool() const { return !Failed; }

  Error &error() {
    assert(Failed && "reading error of successful Status");
    return Err;
  }
  const Error &error() const {
    assert(Failed && "reading error of successful Status");
    return Err;
  }
  Error takeError() {
    assert(Failed && "taking error of successful Status");
    return std::move(Err);
  }

private:
  Error Err;
  bool Failed = false;
};

} // namespace relc

#endif // RELC_SUPPORT_RESULT_H
