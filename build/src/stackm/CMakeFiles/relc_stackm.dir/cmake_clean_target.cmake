file(REMOVE_RECURSE
  "librelc_stackm.a"
)
