//===- tools/relcd.cpp - Certification-as-a-service daemon -----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The daemon face of the certification pipeline: `relcd serve` binds a
// local Unix-domain socket and answers compile-and-certify requests from
// many concurrent clients (wire schema v1, service/Protocol.h), keeping
// the certificate cache, the rule-registry fingerprint, and an in-memory
// reply memo warm across requests. `ping`, `stats`, and `shutdown` are
// the operator's side of the protocol.
//
// The daemon serves the *same* audited computation relc-gen performs
// (service::certify): certificates on the wire are byte-identical to
// relc-gen's artifacts and are accepted by relc-check unchanged.
// Degraded or faulted requests come back as named statuses and are
// never cached or memoized.
//
// Exit codes: 0 = success; 1 = server/protocol failure (no daemon on
// the socket, error reply); 2 = usage error.
//
//===----------------------------------------------------------------------===//

#include "relc/Certify.h"
#include "support/CommandLine.h"
#include "support/Fault.h"
#include "support/Hash.h"
#include "support/ToolFlags.h"

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

using namespace relc;

namespace {

/// SIGINT/SIGTERM request the same graceful drain a wire shutdown does.
volatile std::sig_atomic_t GotSignal = 0;
void onSignal(int) { GotSignal = 1; }

constexpr const char *kDefaultSocket = "relcd.sock";

void addSocketFlag(cl::OptionTable &T, std::string &Socket) {
  T.str({"-socket"}, &Socket, "<path>",
        "Unix-domain socket path (default: relcd.sock)");
}

int serveMain(const std::string &Socket, const cl::CacheDirFlags &Cache,
              unsigned Jobs, const cl::BudgetFlags &Budgets,
              unsigned MaxClients, unsigned MaxInflight,
              unsigned ReadTimeoutMs) {
  service::ServerOptions SO;
  SO.SocketPath = Socket;
  SO.CacheDir = cl::resolveCacheDir(Cache);
  SO.Jobs = Jobs;
  SO.MaxClients = MaxClients;
  SO.MaxInflight = MaxInflight;
  if (ReadTimeoutMs)
    SO.ReadTimeoutMs = ReadTimeoutMs;
  if (Budgets.LayerTimeoutMs)
    SO.DefaultLayerTimeoutMs = Budgets.LayerTimeoutMs;
  SO.DefaultTvStepBudget = Budgets.TvStepBudget;

  service::Server Srv(SO);
  if (Status S = Srv.start(); !S) {
    std::fprintf(stderr, "relcd: %s\n", S.error().str().c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::printf("relcd: serving on %s (cache %s, max-clients %u, "
              "max-inflight %u)\n",
              SO.SocketPath.c_str(),
              SO.CacheDir.empty() ? "disabled" : SO.CacheDir.c_str(),
              SO.MaxClients, SO.MaxInflight);
  std::fflush(stdout);

  while (!Srv.stopping()) {
    if (GotSignal)
      Srv.requestStop();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Srv.wait();
  std::printf("relcd: shutdown complete\n");
  return 0;
}

/// One request against a running daemon; every failure is named on
/// stderr and maps to exit 1.
int clientRound(const std::string &Socket, service::wire::Kind Kind,
                service::wire::Message *Out) {
  service::Client C;
  if (Status S = C.connect(Socket); !S) {
    std::fprintf(stderr, "relcd: %s\n", S.error().str().c_str());
    return 1;
  }
  service::wire::Message Req;
  Req.TheKind = Kind;
  Result<service::wire::Message> R = C.roundTrip(Req, 10000);
  if (!R) {
    std::fprintf(stderr, "relcd: %s\n", R.error().str().c_str());
    return 1;
  }
  if (R->TheKind == service::wire::Kind::ErrorReply) {
    std::fprintf(stderr, "relcd: server error: %s%s%s\n",
                 R->Error.Reason.c_str(), R->Error.Detail.empty() ? "" : ": ",
                 R->Error.Detail.c_str());
    return 1;
  }
  *Out = std::move(*R);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (Status S = fault::armFromEnv(); !S) {
    std::fprintf(stderr, "relcd: RELC_FAULT_SPEC: %s\n",
                 S.error().str().c_str());
    return 2;
  }

  std::string ServeSocket = kDefaultSocket, PingSocket = kDefaultSocket;
  std::string StatsSocket = kDefaultSocket, ShutdownSocket = kDefaultSocket;
  cl::CacheDirFlags Cache;
  cl::BudgetFlags Budgets;
  unsigned Jobs = 1, MaxClients = 64, MaxInflight = 16, ReadTimeoutMs = 0;

  cl::SubcommandSet Cmds(
      "relcd",
      "Long-lived certification daemon: serves compile-and-certify\n"
      "requests over a local Unix-domain socket (wire schema v1),\n"
      "keeping the certificate cache and rule-registry fingerprint\n"
      "warm across requests. Certificates served on the wire are\n"
      "byte-identical to relc-gen's artifacts.");

  cl::OptionTable &Serve =
      Cmds.add("serve", "run the daemon in the foreground",
               "Binds the socket and serves until a shutdown request or\n"
               "SIGINT/SIGTERM; degraded or faulted requests return named\n"
               "statuses and are never cached.");
  addSocketFlag(Serve, ServeSocket);
  cl::addCacheDirFlags(Serve, Cache);
  cl::addJobsFlag(Serve, Jobs, "per-request certification");
  cl::addBudgetFlags(Serve, Budgets);
  cl::addFaultFlag(Serve);
  Serve.num({"-max-clients"}, &MaxClients, 1, "<n>",
            "concurrent connection cap; excess connections\n"
            "get a named server-busy reply (default: 64)");
  Serve.num({"-max-inflight"}, &MaxInflight, 1, "<n>",
            "concurrent certification cap (backpressure);\n"
            "excess requests get server-busy (default: 16)");
  Serve.num({"-read-timeout-ms"}, &ReadTimeoutMs, 0, "<ms>",
            "slow-loris guard: a started frame must complete\n"
            "within this window (default: 10000)");

  cl::OptionTable &Ping =
      Cmds.add("ping", "check that a daemon is alive",
               "One round trip: prints the daemon's API/schema versions,\n"
               "rule-registry fingerprint, and pid.");
  addSocketFlag(Ping, PingSocket);

  cl::OptionTable &Stats =
      Cmds.add("stats", "print a daemon's request/cache counters",
               "One round trip: request counts, memo and certificate-cache\n"
               "hits, backpressure and protocol rejections.");
  addSocketFlag(Stats, StatsSocket);

  cl::OptionTable &Shutdown =
      Cmds.add("shutdown", "ask a daemon to drain and exit",
               "Sends the shutdown request and waits for the\n"
               "acknowledgement.");
  addSocketFlag(Shutdown, ShutdownSocket);

  cl::SubcommandSet::Dispatch D = Cmds.dispatch(argc, argv);
  switch (D.Result) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  if (D.Name == "serve")
    return serveMain(ServeSocket, Cache, Jobs, Budgets, MaxClients,
                     MaxInflight, ReadTimeoutMs);

  if (D.Name == "ping") {
    service::wire::Message M;
    if (int Rc = clientRound(PingSocket, service::wire::Kind::PingRequest, &M))
      return Rc;
    std::printf("relcd: alive (api %u, schema %u, rules %s, pid %llu)\n",
                M.ThePong.ApiVersion, M.ThePong.SchemaVersion,
                hash::hex16(M.ThePong.RegistryFingerprint).c_str(),
                static_cast<unsigned long long>(M.ThePong.Pid));
    return 0;
  }

  if (D.Name == "stats") {
    service::wire::Message M;
    if (int Rc =
            clientRound(StatsSocket, service::wire::Kind::StatsRequest, &M))
      return Rc;
    const service::wire::Stats &S = M.TheStats;
    std::printf("requests:             %llu\n"
                "certify-requests:     %llu\n"
                "memo-hits:            %llu\n"
                "cache-hits:           %llu\n"
                "cache-misses:         %llu\n"
                "cache-stores:         %llu\n"
                "busy-rejections:      %llu\n"
                "protocol-rejections:  %llu\n"
                "faulted-requests:     %llu\n"
                "active-connections:   %llu\n"
                "cache-dir:            %s\n",
                static_cast<unsigned long long>(S.Requests),
                static_cast<unsigned long long>(S.CertifyRequests),
                static_cast<unsigned long long>(S.MemoHits),
                static_cast<unsigned long long>(S.CacheHits),
                static_cast<unsigned long long>(S.CacheMisses),
                static_cast<unsigned long long>(S.CacheStores),
                static_cast<unsigned long long>(S.BusyRejections),
                static_cast<unsigned long long>(S.ProtocolRejections),
                static_cast<unsigned long long>(S.FaultedRequests),
                static_cast<unsigned long long>(S.ActiveConnections),
                S.CacheDir.empty() ? "(disabled)" : S.CacheDir.c_str());
    return 0;
  }

  if (D.Name == "shutdown") {
    service::wire::Message M;
    if (int Rc = clientRound(ShutdownSocket,
                             service::wire::Kind::ShutdownRequest, &M))
      return Rc;
    std::printf("relcd: shutdown acknowledged\n");
    return 0;
  }

  std::fprintf(stderr, "relcd: internal: unhandled command '%s'\n",
               D.Name.c_str());
  return 2;
}
