file(REMOVE_RECURSE
  "CMakeFiles/validate_tests.dir/validate/FailureInjectionTest.cpp.o"
  "CMakeFiles/validate_tests.dir/validate/FailureInjectionTest.cpp.o.d"
  "CMakeFiles/validate_tests.dir/validate/ValidateTest.cpp.o"
  "CMakeFiles/validate_tests.dir/validate/ValidateTest.cpp.o.d"
  "validate_tests"
  "validate_tests.pdb"
  "validate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
