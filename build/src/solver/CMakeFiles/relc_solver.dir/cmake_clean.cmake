file(REMOVE_RECURSE
  "CMakeFiles/relc_solver.dir/Linear.cpp.o"
  "CMakeFiles/relc_solver.dir/Linear.cpp.o.d"
  "librelc_solver.a"
  "librelc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
