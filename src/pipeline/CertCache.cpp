//===- pipeline/CertCache.cpp - Content-addressed certificate cache --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CertCache.h"

#include "support/Fault.h"
#include "support/Hash.h"
#include "support/StringExtras.h"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <thread>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace relc {
namespace pipeline {

using hash::fnv1a64;
using hash::hex16;
using hash::parseHex;

namespace {

constexpr const char *FormatTag = "relc-cert-cache-v1";

/// The canonical payload string the integrity hash covers: every field in
/// a fixed order, length-prefixed so no two payloads collide structurally.
std::string payloadString(const CertKey &Key, const CertEntry &E) {
  auto Field = [](const std::string &S) {
    return std::to_string(S.size()) + ":" + S + ";";
  };
  std::string P = Field(FormatTag);
  P += Field(Key.fileStem());
  P += Field(E.Program);
  P += Field(hex16(E.OptsHash));
  P += Field(E.ReplayOk ? "1" : "0");
  P += Field(E.AnalysisOk ? "1" : "0");
  P += Field(std::to_string(E.AnalysisWarnings));
  P += Field(E.AnalysisDiags);
  P += Field(E.TvRan ? "1" : "0");
  P += Field(E.TvVerdict);
  P += Field(std::to_string(E.TvLoops));
  P += Field(std::to_string(E.TvTerms));
  P += Field(E.TvCertificate);
  P += Field(E.DifferentialOk ? "1" : "0");
  P += Field(E.CodelintRan ? "1" : "0");
  P += Field(E.CodelintVerdict);
  return P;
}

/// Leading magic of the binary cache image. Distinct from the certificate
/// image magic (cert/Binary.h "RELCCERT"): a cache entry *contains* a
/// certificate image but is not one, and neither reader should ever
/// accept the other's files.
constexpr char CacheBinMagic[8] = {'R', 'E', 'L', 'C', 'C', 'A', 'C', 'H'};
constexpr uint32_t CacheBinVersion = 1;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(char(uint8_t(V >> (8 * I))));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(char(uint8_t(V >> (8 * I))));
}

void putStr(std::string &Out, const std::string &S) {
  putU64(Out, S.size());
  Out += S;
}

/// Bounds-checked forward reader over a binary cache image. Any
/// out-of-range length flips Failed and pins the cursor; callers check
/// once at the end instead of after every field.
struct BinCursor {
  const char *Base;
  size_t Len, At = 0;
  bool Failed = false;

  explicit BinCursor(std::string_view Image)
      : Base(Image.data()), Len(Image.size()) {}

  const char *take(size_t N) {
    if (Failed || N > Len - At) { // At <= Len always, so no overflow.
      Failed = true;
      return nullptr;
    }
    const char *P = Base + At;
    At += N;
    return P;
  }
  uint32_t u32() {
    const char *P = take(4);
    uint32_t V = 0;
    if (P)
      for (int I = 0; I < 4; ++I)
        V |= uint32_t(uint8_t(P[I])) << (8 * I);
    return V;
  }
  uint64_t u64() {
    const char *P = take(8);
    uint64_t V = 0;
    if (P)
      for (int I = 0; I < 8; ++I)
        V |= uint64_t(uint8_t(P[I])) << (8 * I);
    return V;
  }
  bool u8() {
    const char *P = take(1);
    return P && *P == 1;
  }
  std::string str() {
    uint64_t N = u64();
    if (!Failed && N > Len - At) {
      Failed = true;
      return std::string();
    }
    const char *P = take(size_t(N));
    return P ? std::string(P, size_t(N)) : std::string();
  }
};

/// Reads \p Path in one pre-sized gulp — the warm path avoids the
/// stringstream growth dance (and its allocations).
bool readWholeFile(const std::string &Path, std::string *Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::error_code EC;
  uintmax_t Sz = std::filesystem::file_size(Path, EC);
  if (EC)
    return false;
  Out->resize(size_t(Sz));
  return Sz == 0 || bool(In.read(Out->data(), std::streamsize(Sz)));
}

/// A temp-file suffix no two writers share: pid distinguishes processes,
/// the counter distinguishes threads/attempts within one.
std::string uniqueTempSuffix() {
  static std::atomic<uint64_t> Counter{0};
#ifdef _WIN32
  uint64_t Pid = uint64_t(_getpid());
#else
  uint64_t Pid = uint64_t(getpid());
#endif
  return ".tmp." + std::to_string(Pid) + "." +
         std::to_string(Counter.fetch_add(1, std::memory_order_relaxed));
}

} // namespace

CertCache::CertCache(std::string Dir) : Dir(std::move(Dir)) {
  if (enabled())
    sweepStaleTemps();
}

std::string CertKey::fileStem() const {
  return hex16(ModelHash) + "-" + hex16(SpecHash) + "-" + hex16(CodeHash);
}

std::string CertCache::pathFor(const CertKey &Key) const {
  return Dir + "/" + Key.fileStem() + ".cert.json";
}

std::string CertCache::binPathFor(const CertKey &Key) const {
  return Dir + "/" + Key.fileStem() + ".cert.bin";
}

std::string CertCache::serializeBin(const CertKey &Key, const CertEntry &E) {
  std::string Out;
  Out.reserve(128 + E.AnalysisDiags.size() + E.TvCertificate.size() +
              E.TvCertBin.size());
  Out.append(CacheBinMagic, sizeof(CacheBinMagic));
  putU32(Out, CacheBinVersion);
  putU64(Out, Key.ModelHash);
  putU64(Out, Key.SpecHash);
  putU64(Out, Key.CodeHash);
  putU64(Out, E.OptsHash);
  putStr(Out, E.Program);
  Out.push_back(E.ReplayOk ? 1 : 0);
  Out.push_back(E.AnalysisOk ? 1 : 0);
  putU64(Out, E.AnalysisWarnings);
  putStr(Out, E.AnalysisDiags);
  Out.push_back(E.TvRan ? 1 : 0);
  putStr(Out, E.TvVerdict);
  putU64(Out, E.TvLoops);
  putU64(Out, E.TvTerms);
  putStr(Out, E.TvCertificate);
  putStr(Out, E.TvCertBin);
  Out.push_back(E.CodelintRan ? 1 : 0);
  putStr(Out, E.CodelintVerdict);
  Out.push_back(E.DifferentialOk ? 1 : 0);
  putU64(Out, fnv1a64(Out));
  return Out;
}

std::optional<CertEntry> CertCache::deserializeBin(const std::string &Image,
                                                   CertKey *KeyOut) {
  constexpr size_t MinSize = sizeof(CacheBinMagic) + 4 + 8;
  if (Image.size() < MinSize)
    return std::nullopt;
  if (std::memcmp(Image.data(), CacheBinMagic, sizeof(CacheBinMagic)) != 0)
    return std::nullopt;
  // Integrity first: everything after this is trusted to be the bytes a
  // writer produced, so field decoding can't be confused by corruption —
  // only by a version it doesn't speak, which is checked next.
  std::string_view Body(Image.data(), Image.size() - 8);
  uint64_t Stored = 0;
  for (int I = 0; I < 8; ++I)
    Stored |= uint64_t(uint8_t(Image[Image.size() - 8 + size_t(I)]))
              << (8 * I);
  if (fnv1a64(Body) != Stored)
    return std::nullopt;

  BinCursor C(Body);
  C.take(sizeof(CacheBinMagic));
  if (C.u32() != CacheBinVersion)
    return std::nullopt;
  CertKey Key;
  CertEntry E;
  Key.ModelHash = C.u64();
  Key.SpecHash = C.u64();
  Key.CodeHash = C.u64();
  E.OptsHash = C.u64();
  E.Program = C.str();
  E.ReplayOk = C.u8();
  E.AnalysisOk = C.u8();
  E.AnalysisWarnings = C.u64();
  E.AnalysisDiags = C.str();
  E.TvRan = C.u8();
  E.TvVerdict = C.str();
  E.TvLoops = C.u64();
  E.TvTerms = C.u64();
  E.TvCertificate = C.str();
  E.TvCertBin = C.str();
  E.CodelintRan = C.u8();
  E.CodelintVerdict = C.str();
  E.DifferentialOk = C.u8();
  if (C.Failed || C.At != C.Len)
    return std::nullopt; // Short fields or trailing garbage: re-derive.
  if (KeyOut)
    *KeyOut = Key;
  return E;
}

std::string CertCache::serialize(const CertKey &Key, const CertEntry &E) {
  // Keys sorted, one per line: byte-stable and diffable. The integrity
  // hash covers the canonical payload (which includes the key), so a
  // flipped bit anywhere — including in the hashes themselves — is caught.
  uint64_t Integrity = fnv1a64(payloadString(Key, E));
  std::string J = "{\n";
  J += "  \"analysis_diags\": \"" + jsonEscape(E.AnalysisDiags) + "\",\n";
  J += "  \"analysis_ok\": " + std::string(E.AnalysisOk ? "true" : "false") +
       ",\n";
  J += "  \"analysis_warnings\": " + std::to_string(E.AnalysisWarnings) +
       ",\n";
  J += "  \"code_hash\": \"" + hex16(Key.CodeHash) + "\",\n";
  J += "  \"codelint_ran\": " +
       std::string(E.CodelintRan ? "true" : "false") + ",\n";
  J += "  \"codelint_verdict\": \"" + jsonEscape(E.CodelintVerdict) + "\",\n";
  J += "  \"differential_ok\": " +
       std::string(E.DifferentialOk ? "true" : "false") + ",\n";
  J += "  \"format\": \"" + std::string(FormatTag) + "\",\n";
  J += "  \"integrity\": \"" + hex16(Integrity) + "\",\n";
  J += "  \"model_hash\": \"" + hex16(Key.ModelHash) + "\",\n";
  J += "  \"opts_hash\": \"" + hex16(E.OptsHash) + "\",\n";
  J += "  \"program\": \"" + jsonEscape(E.Program) + "\",\n";
  J += "  \"replay_ok\": " + std::string(E.ReplayOk ? "true" : "false") +
       ",\n";
  J += "  \"spec_hash\": \"" + hex16(Key.SpecHash) + "\",\n";
  J += "  \"tv_certificate\": \"" + jsonEscape(E.TvCertificate) + "\",\n";
  J += "  \"tv_loops\": " + std::to_string(E.TvLoops) + ",\n";
  J += "  \"tv_ran\": " + std::string(E.TvRan ? "true" : "false") + ",\n";
  J += "  \"tv_terms\": " + std::to_string(E.TvTerms) + ",\n";
  J += "  \"tv_verdict\": \"" + jsonEscape(E.TvVerdict) + "\"\n";
  J += "}\n";
  return J;
}

namespace {

/// Line-oriented parse of the exact shape serialize() writes: each field
/// on its own '  "name": value' line. Returns false on any deviation —
/// strictness is the point (anything unexpected means "re-derive").
bool parseFields(const std::string &Text,
                 std::map<std::string, std::string> *Out) {
  std::istringstream In(Text);
  std::string Line;
  bool First = true, Closed = false;
  while (std::getline(In, Line)) {
    if (First) {
      if (Line != "{")
        return false;
      First = false;
      continue;
    }
    if (Line == "}") {
      Closed = true;
      continue;
    }
    if (Closed || First)
      return false;
    size_t NameStart = Line.find('"');
    if (NameStart == std::string::npos)
      return false;
    size_t NameEnd = Line.find('"', NameStart + 1);
    if (NameEnd == std::string::npos)
      return false;
    std::string Name = Line.substr(NameStart + 1, NameEnd - NameStart - 1);
    size_t Colon = Line.find(':', NameEnd);
    if (Colon == std::string::npos)
      return false;
    std::string Value = Line.substr(Colon + 1);
    // Trim surrounding spaces and the trailing comma.
    while (!Value.empty() && (Value.front() == ' '))
      Value.erase(Value.begin());
    while (!Value.empty() && (Value.back() == ',' || Value.back() == ' '))
      Value.pop_back();
    if (!Out->emplace(Name, Value).second)
      return false; // Duplicate field.
  }
  return Closed && !First;
}

bool getString(const std::map<std::string, std::string> &F,
               const std::string &Name, std::string *Out) {
  auto It = F.find(Name);
  if (It == F.end())
    return false;
  const std::string &V = It->second;
  if (V.size() < 2 || V.front() != '"' || V.back() != '"')
    return false;
  return jsonUnescape(V.substr(1, V.size() - 2), Out);
}

bool getBool(const std::map<std::string, std::string> &F,
             const std::string &Name, bool *Out) {
  auto It = F.find(Name);
  if (It == F.end())
    return false;
  if (It->second == "true")
    *Out = true;
  else if (It->second == "false")
    *Out = false;
  else
    return false;
  return true;
}

bool getU64(const std::map<std::string, std::string> &F,
            const std::string &Name, uint64_t *Out) {
  auto It = F.find(Name);
  if (It == F.end() || It->second.empty())
    return false;
  uint64_t V = 0;
  for (char C : It->second) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + uint64_t(C - '0');
  }
  *Out = V;
  return true;
}

bool getHex(const std::map<std::string, std::string> &F,
            const std::string &Name, uint64_t *Out) {
  std::string S;
  if (!getString(F, Name, &S))
    return false;
  return parseHex(S, Out);
}

} // namespace

std::optional<CertEntry> CertCache::deserialize(const std::string &Text,
                                                CertKey *KeyOut) {
  std::map<std::string, std::string> F;
  if (!parseFields(Text, &F))
    return std::nullopt;

  std::string Format;
  if (!getString(F, "format", &Format) || Format != FormatTag)
    return std::nullopt;

  CertKey Key;
  CertEntry E;
  uint64_t Integrity = 0;
  if (!getHex(F, "model_hash", &Key.ModelHash) ||
      !getHex(F, "spec_hash", &Key.SpecHash) ||
      !getHex(F, "code_hash", &Key.CodeHash) ||
      !getHex(F, "opts_hash", &E.OptsHash) ||
      !getHex(F, "integrity", &Integrity) ||
      !getString(F, "program", &E.Program) ||
      !getBool(F, "replay_ok", &E.ReplayOk) ||
      !getBool(F, "analysis_ok", &E.AnalysisOk) ||
      !getU64(F, "analysis_warnings", &E.AnalysisWarnings) ||
      !getString(F, "analysis_diags", &E.AnalysisDiags) ||
      !getBool(F, "tv_ran", &E.TvRan) ||
      !getString(F, "tv_verdict", &E.TvVerdict) ||
      !getU64(F, "tv_loops", &E.TvLoops) ||
      !getU64(F, "tv_terms", &E.TvTerms) ||
      !getString(F, "tv_certificate", &E.TvCertificate) ||
      !getBool(F, "codelint_ran", &E.CodelintRan) ||
      !getString(F, "codelint_verdict", &E.CodelintVerdict) ||
      !getBool(F, "differential_ok", &E.DifferentialOk))
    return std::nullopt;

  if (fnv1a64(payloadString(Key, E)) != Integrity)
    return std::nullopt;
  if (KeyOut)
    *KeyOut = Key;
  return E;
}

std::optional<CertEntry> CertCache::lookup(const CertKey &Key,
                                           uint64_t OptsHash,
                                           CacheStats *Stats) const {
  auto Miss = [&]() -> std::optional<CertEntry> {
    if (Stats)
      ++Stats->Misses;
    return std::nullopt;
  };
  if (!enabled())
    return Miss();

  // Fault site: lookup I/O. Transient hits are absorbed by fireWithRetry
  // (a real transient read error would be retried the same way); a
  // persistent one degrades to a miss — the verdict is simply re-derived,
  // which costs time, never soundness.
  if (fault::fireWithRetry(fault::Site::CacheRead, Key.fileStem()))
    return Miss();

  // Warm path: the binary image — one pre-sized read, a fixed-field
  // decode, no JSON. A corrupt or misfiled image is deleted and falls
  // back to the JSON entry below; it can cost a parse, never soundness.
  std::string BinImage;
  if (readWholeFile(binPathFor(Key), &BinImage)) {
    CertKey StoredKey;
    std::optional<CertEntry> E = deserializeBin(BinImage, &StoredKey);
    if (E && StoredKey == Key) {
      if (E->OptsHash != OptsHash)
        return Miss(); // Same inputs, different validation options.
      if (Stats) {
        ++Stats->Hits;
        ++Stats->BinHits;
      }
      return E;
    }
    std::error_code EC;
    std::filesystem::remove(binPathFor(Key), EC);
    if (Stats)
      ++Stats->CorruptDiscarded;
  }

  std::string Path = pathFor(Key);
  std::string Text;
  if (!readWholeFile(Path, &Text))
    return Miss();

  CertKey StoredKey;
  std::optional<CertEntry> E = deserialize(Text, &StoredKey);
  if (!E || !(StoredKey == Key)) {
    // Unparseable, integrity-failed, or misfiled: discard, never trust.
    std::error_code EC;
    std::filesystem::remove(Path, EC);
    if (Stats)
      ++Stats->CorruptDiscarded;
    return Miss();
  }
  if (E->OptsHash != OptsHash)
    return Miss(); // Same inputs, different validation options.
  if (Stats)
    ++Stats->Hits;
  return E;
}

Status CertCache::store(const CertKey &Key, const CertEntry &Entry,
                        CacheStats *Stats) const {
  if (!enabled())
    return Status::success();
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return Error("certificate cache: cannot create '" + Dir +
                 "': " + EC.message());

  // Both faces of the entry, written canonical-JSON first so a crash
  // between the two renames leaves at worst a JSON-only entry (the state
  // every pre-binary cache is already in), never a binary-only one with a
  // stale JSON sibling.
  struct Face {
    std::string Path, Payload;
  } Faces[2] = {{pathFor(Key), serialize(Key, Entry)},
                {binPathFor(Key), serializeBin(Key, Entry)}};

  // Bounded retry with backoff: transient I/O failures (and injected
  // transient cache-write faults) are absorbed; each attempt uses fresh
  // uniquely named temp files and cleans them up on failure, so a
  // concurrent writer of the same key can never observe — or clobber —
  // our temps.
  constexpr unsigned MaxAttempts = 4;
  std::string LastErr;
  for (unsigned A = 0; A < MaxAttempts; ++A) {
    if (A > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1u << (A - 1)));
    if (auto H = fault::fire(fault::Site::CacheWrite, Key.fileStem())) {
      LastErr = H->describe();
      continue;
    }
    bool Wrote = true;
    for (const Face &F : Faces) {
      std::string Tmp = F.Path + uniqueTempSuffix();
      {
        std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
        if (!Out) {
          LastErr = "cannot open '" + Tmp + "' for writing";
          Wrote = false;
          break;
        }
        Out << F.Payload;
        if (!Out.flush()) {
          LastErr = "write to '" + Tmp + "' failed";
          std::filesystem::remove(Tmp, EC);
          Wrote = false;
          break;
        }
      }
      std::filesystem::rename(Tmp, F.Path, EC);
      if (EC) {
        LastErr = "cannot rename '" + Tmp + "' into place: " + EC.message();
        std::filesystem::remove(Tmp, EC);
        Wrote = false;
        break;
      }
    }
    if (!Wrote)
      continue;
    if (Stats)
      ++Stats->Stores;
    return Status::success();
  }
  return Error("certificate cache: store of '" + Key.fileStem() +
               "' failed after " + std::to_string(MaxAttempts) +
               " attempts: " + LastErr);
}

unsigned CertCache::sweepStaleTemps(std::chrono::seconds MaxAge) const {
  if (!enabled())
    return 0;
  std::error_code EC;
  std::filesystem::directory_iterator It(Dir, EC);
  if (EC)
    return 0;
  unsigned Removed = 0;
  const auto Now = std::filesystem::file_time_type::clock::now();
  for (const auto &Ent : It) {
    std::string Name = Ent.path().filename().string();
    // Current writers produce "<stem>.cert.json.tmp.<pid>.<n>" and
    // "<stem>.cert.bin.tmp.<pid>.<n>"; older versions produced
    // "<stem>.cert.json.tmp". All are debris once their writer is gone.
    if (Name.find(".cert.json.tmp") == std::string::npos &&
        Name.find(".cert.bin.tmp") == std::string::npos)
      continue;
    auto MTime = std::filesystem::last_write_time(Ent.path(), EC);
    if (EC)
      continue; // Racing writer just renamed it away; not ours to sweep.
    if (Now - MTime < MaxAge)
      continue; // Possibly a live writer's in-flight temp.
    if (std::filesystem::remove(Ent.path(), EC) && !EC)
      ++Removed;
  }
  return Removed;
}

} // namespace pipeline
} // namespace relc
