# Empty compiler generated dependencies file for relc_reflect.
# This may be replaced when dependencies are built.
