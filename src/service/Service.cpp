//===- service/Service.cpp - One audited certification surface -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "cgen/CEmit.h"
#include "pipeline/Scheduler.h"

#include <utility>

namespace relc {
namespace service {

const char *statusName(ProgramStatus S) {
  switch (S) {
  case ProgramStatus::Certified:
    return "certified";
  case ProgramStatus::CertifiedDegraded:
    return "certified-degraded";
  case ProgramStatus::Degraded:
    return "degraded";
  case ProgramStatus::Failed:
    return "failed";
  }
  return "failed";
}

bool statusFromName(const std::string &Name, ProgramStatus *Out) {
  for (uint8_t I = 0; I <= uint8_t(ProgramStatus::Failed); ++I)
    if (Name == statusName(ProgramStatus(I))) {
      *Out = ProgramStatus(I);
      return true;
    }
  return false;
}

const char *provenanceName(Provenance P) {
  switch (P) {
  case Provenance::Live:
    return "live";
  case Provenance::DiskCache:
    return "disk-cache";
  case Provenance::Memo:
    return "memo";
  }
  return "live";
}

namespace {

ProgramStatus classify(const pipeline::ProgramOutcome &O, bool KeepGoing) {
  if (O.ok())
    return O.anyDegraded() ? ProgramStatus::CertifiedDegraded
                           : ProgramStatus::Certified;
  if (KeepGoing && O.failureIsDegradedOnly())
    return ProgramStatus::Degraded;
  return ProgramStatus::Failed;
}

/// The rendered "why" for a non-certified program, in the same priority
/// order relc-gen has always printed: the validation note chain, then the
/// compile error, then the scheduler-level note, then the first degraded
/// note.
std::string renderWhy(const pipeline::ProgramOutcome &O) {
  if (!O.CompileOk && !O.CompileError.empty())
    return O.CompileError;
  if (!O.ValidationError.empty())
    return O.ValidationError;
  if (!O.DegradedNote.empty())
    return O.DegradedNote;
  return O.firstDegradedNote();
}

/// relc-gen's DEGRADED text selection, preserved verbatim: validation
/// error first, then compile error, then the degraded notes.
std::string renderDegraded(const pipeline::ProgramOutcome &O) {
  const std::string &Why = !O.ValidationError.empty() ? O.ValidationError
                           : !O.CompileOk             ? O.CompileError
                                                      : O.DegradedNote;
  return Why.empty() ? O.firstDegradedNote() : Why;
}

} // namespace

Response certify(const Request &R) {
  Response Resp;

  std::vector<const programs::ProgramDef *> Targets;
  if (R.Programs.empty()) {
    for (const programs::ProgramDef &P : programs::allPrograms())
      Targets.push_back(&P);
  } else {
    for (const std::string &Name : R.Programs) {
      const programs::ProgramDef *P = programs::findProgram(Name);
      if (!P) {
        Resp.Exit = 2;
        Resp.UsageError = "unknown-program: '" + Name + "'";
        return Resp;
      }
      Targets.push_back(P);
    }
  }

  pipeline::PipelineOptions Opts;
  Opts.Jobs = pipeline::resolveJobs(R.Jobs, &Resp.JobsNote);
  Opts.CacheDir = R.CacheDir;
  Opts.Validate = R.Validate;
  Opts.Analyze = R.Analyze;
  Opts.Tv = R.Tv;
  Opts.Codelint = R.Codelint;
  Opts.LayerTimeoutMs = R.LayerTimeoutMs;
  Opts.TvStepBudget = R.TvStepBudget;
  Opts.KeepGoing = R.KeepGoing;

  std::vector<pipeline::ProgramOutcome> Outcomes =
      pipeline::certifyPrograms(Targets, Opts, &Resp.Stats);

  bool AnyFailed = false, AnyDegraded = false;
  if (R.EmitC)
    Resp.CHeader = cgen::cPrelude();

  for (pipeline::ProgramOutcome &O : Outcomes) {
    ProgramReply PR;
    PR.Name = O.Def->Name;
    PR.Status = classify(O, R.KeepGoing);
    PR.From = O.CacheHit ? Provenance::DiskCache : Provenance::Live;
    PR.TvVerdict = O.TvVerdictName;
    PR.CodelintVerdict = O.CodelintVerdictName;
    if (O.anyDegraded())
      PR.DegradedNote = O.firstDegradedNote();
    // Certificate bytes travel whenever TV produced them (empty
    // otherwise); consumers gate on Status, exactly as relc-gen always
    // wrote the .tv.json the moment TV proved, independent of later
    // layers.
    if (R.WantCertJson)
      PR.CertJson = O.TvCertJson;
    if (R.WantCertBin)
      PR.CertBin = O.TvCertBin;

    switch (PR.Status) {
    case ProgramStatus::Failed:
      PR.Error = renderWhy(O);
      AnyFailed = true;
      break;
    case ProgramStatus::Degraded:
      PR.Error = renderDegraded(O);
      AnyDegraded = true;
      break;
    case ProgramStatus::CertifiedDegraded:
      AnyDegraded = true;
      [[fallthrough]];
    case ProgramStatus::Certified:
      if (R.EmitC) {
        cgen::CEmitOptions EOpts;
        EOpts.NamePrefix = "relc_";
        Result<std::string> CCode = cgen::emitFunction(O.Compiled.Fn, EOpts);
        if (!CCode) {
          PR.Status = ProgramStatus::Failed;
          PR.Error = "C emission failed: " + CCode.error().str();
          AnyFailed = true;
          break;
        }
        PR.CCode = cgen::cPrelude() + *CCode;
        // Accumulate the aggregate declaration header.
        const bedrock::Function &Fn = O.Compiled.Fn;
        Resp.CHeader +=
            (Fn.Rets.empty() ? std::string("void") : "uintptr_t") + " relc_" +
            Fn.Name + "(";
        for (size_t I = 0; I < Fn.Args.size(); ++I)
          Resp.CHeader +=
              std::string(I ? ", " : "") + "uintptr_t " + Fn.Args[I];
        Resp.CHeader += ");\n";
      }
      break;
    }

    PR.Outcome = std::move(O);
    Resp.Programs.push_back(std::move(PR));
  }

  Resp.Exit = AnyFailed ? 1 : AnyDegraded ? 3 : 0;
  return Resp;
}

} // namespace service
} // namespace relc
