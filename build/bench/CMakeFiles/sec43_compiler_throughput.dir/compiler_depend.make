# Empty compiler generated dependencies file for sec43_compiler_throughput.
# This may be replaced when dependencies are built.
