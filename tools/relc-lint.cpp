//===- tools/relc-lint.cpp - Standalone static analyzer driver -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Runs the static layers of the certification pipeline as a strict gate:
// compiles the named benchmark programs (or all of them), feeds the
// generated Bedrock2 code to the relc::analysis verifier, and runs the
// relc::tv translation validator. Prints the full report for each program
// and exits nonzero if *any* diagnostic — error or warning — was
// produced, or if any program fails to come out *Proved* equivalent to
// its model (for the curated suite, Inconclusive is also a regression:
// every suite program lies inside the validated fragment). Registered
// over every benchmark program as ctest cases, so a rule change that
// makes the generated code sloppy (dead stores, unprovable bounds) or
// semantically drifts it from the model fails the test suite even when
// the sampled differential vectors happen to pass.
//
// -j N runs programs (and their analysis/TV layers) concurrently on the
// job-graph scheduler; reports are buffered per program and printed in
// argument order, so every -j produces byte-identical output. The lint
// gate always certifies live (never the certificate cache): its job is
// producing fresh full reports. Flags accept both - and -- forms.
//
// Usage: relc-lint [-q] [-no-tv] [-j <n>] [<program>...]
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "programs/Programs.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace relc;

static int usage() {
  std::fprintf(stderr,
               "usage: relc-lint [-q] [-no-tv] [-j <n>] [<program>...]\n"
               "  with no arguments, lints every registered program\n");
  return 2;
}

int main(int argc, char **argv) {
  bool Quiet = false, Tv = true;
  unsigned Jobs = 1;
  std::vector<const programs::ProgramDef *> Targets;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.size() > 2 && A[0] == '-' && A[1] == '-')
      A.erase(A.begin()); // Normalize --flag to -flag.
    if (A == "-q") {
      Quiet = true;
    } else if (A == "-no-tv") {
      Tv = false;
    } else if ((A == "-j" || A == "-jobs") && I + 1 < argc) {
      long N = std::atol(argv[++I]);
      if (N < 1) {
        std::fprintf(stderr, "relc-lint: invalid job count '%s'\n", argv[I]);
        return 2;
      }
      Jobs = unsigned(N);
    } else if (!A.empty() && A[0] == '-') {
      return usage();
    } else {
      const programs::ProgramDef *P = programs::findProgram(A);
      if (!P) {
        std::fprintf(stderr, "relc-lint: unknown program '%s'\n", A.c_str());
        return 2;
      }
      Targets.push_back(P);
    }
  }
  if (Targets.empty())
    for (const programs::ProgramDef &P : programs::allPrograms())
      Targets.push_back(&P);

  pipeline::PipelineOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Validate = false; // Compile only; validation is the other layers' job.
  Opts.Analyze = true;
  Opts.Tv = Tv;
  // No cache: the gate's job is fresh full reports.

  std::vector<pipeline::ProgramOutcome> Outcomes =
      pipeline::certifyPrograms(Targets, Opts);

  unsigned TotalDiags = 0;
  for (const pipeline::ProgramOutcome &O : Outcomes) {
    if (!O.CompileOk) {
      std::fprintf(stderr, "[%s] compilation failed:\n%s\n",
                   O.Def->Name.c_str(), O.CompileError.c_str());
      return 2;
    }
    if (!Quiet || !O.AReport.Diags.empty())
      std::printf("%s", O.AReport.str().c_str());
    TotalDiags += unsigned(O.AReport.Diags.size());

    if (Tv) {
      if (!Quiet || !O.TvRep.proved())
        std::printf("%s", O.TvRep.str().c_str());
      if (!O.TvRep.proved()) // Strict gate: the suite must prove, not just
        ++TotalDiags;        // fail-to-refute.
    }
  }

  if (TotalDiags) {
    std::fprintf(stderr, "relc-lint: %u diagnostic(s)\n", TotalDiags);
    return 1;
  }
  return 0;
}
