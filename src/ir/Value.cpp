//===- ir/Value.cpp - Source-language values ------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include "support/StringExtras.h"

namespace relc {
namespace ir {

std::vector<uint8_t> Value::asBytes() const {
  assert(TheKind == Kind::List && Elt == EltKind::U8 && "not a byte list");
  std::vector<uint8_t> Out;
  Out.reserve(Elems.size());
  for (const Value &E : Elems)
    Out.push_back(E.asByte());
  return Out;
}

std::vector<uint64_t> Value::asWords() const {
  assert(TheKind == Kind::List && "not a list");
  std::vector<uint64_t> Out;
  Out.reserve(Elems.size());
  for (const Value &E : Elems)
    Out.push_back(E.scalar());
  return Out;
}

bool Value::operator==(const Value &O) const {
  if (TheKind != O.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Word:
  case Kind::Byte:
  case Kind::Bool:
    return Scalar == O.Scalar;
  case Kind::Unit:
    return true;
  case Kind::List:
    return Elt == O.Elt && Elems == O.Elems;
  case Kind::Tuple:
    return Elems == O.Elems;
  }
  return false;
}

std::string Value::str() const {
  switch (TheKind) {
  case Kind::Word:
    return "w:" + hexStr(Scalar);
  case Kind::Byte:
    return "b:0x" + hexByte(uint8_t(Scalar));
  case Kind::Bool:
    return Scalar ? "true" : "false";
  case Kind::Unit:
    return "()";
  case Kind::List: {
    std::string Out = "[";
    // Long lists abbreviate: show head and length.
    size_t Show = Elems.size() > 8 ? 8 : Elems.size();
    for (size_t I = 0; I < Show; ++I) {
      if (I != 0)
        Out += "; ";
      Out += Elems[I].str();
    }
    if (Show < Elems.size())
      Out += "; ... (" + std::to_string(Elems.size()) + " elems)";
    return Out + "]";
  }
  case Kind::Tuple: {
    std::vector<std::string> Parts;
    for (const Value &E : Elems)
      Parts.push_back(E.str());
    // Built up with += (rather than a "(" + ... + ")" chain) to sidestep a
    // GCC 12 -Wrestrict false positive on the temporary-reusing operator+.
    std::string Out = "(";
    Out += join(Parts, ", ");
    Out += ")";
    return Out;
  }
  }
  return "?";
}

} // namespace ir
} // namespace relc
