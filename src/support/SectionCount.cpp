//===- support/SectionCount.cpp - Marker-based LoC measurement ------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/SectionCount.h"

#include <fstream>
#include <sstream>

namespace relc {

std::string resolveSourcePath(const std::string &Path) {
  if (!Path.empty() && Path[0] == '/')
    return Path;
#ifdef RELC_SOURCE_DIR
  return std::string(RELC_SOURCE_DIR) + "/" + Path;
#else
  return Path;
#endif
}

/// True for lines that contribute no code: empty/whitespace or comment-only.
static bool isNonCodeLine(const std::string &Line) {
  size_t I = Line.find_first_not_of(" \t\r");
  if (I == std::string::npos)
    return true;
  return Line.compare(I, 2, "//") == 0;
}

static Result<std::string> readFile(const std::string &Path) {
  std::ifstream In(resolveSourcePath(Path));
  if (!In)
    return Error("cannot open source file: " + Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

Result<unsigned> countSectionLines(const std::string &Path,
                                   const std::string &Name) {
  Result<std::string> Text = readFile(Path);
  if (!Text)
    return Text.takeError();

  const std::string Begin = "RELC-SECTION-BEGIN: " + Name;
  const std::string End = "RELC-SECTION-END: " + Name;

  unsigned Count = 0;
  bool Inside = false, Found = false;
  std::istringstream Lines(*Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.find(Begin) != std::string::npos) {
      Inside = true;
      Found = true;
      continue;
    }
    if (Line.find(End) != std::string::npos) {
      Inside = false;
      continue;
    }
    if (Inside && !isNonCodeLine(Line))
      ++Count;
  }
  if (!Found)
    return Error("section '" + Name + "' not found in " + Path);
  if (Inside)
    return Error("section '" + Name + "' not closed in " + Path);
  return Count;
}

Result<unsigned> countFileLines(const std::string &Path) {
  Result<std::string> Text = readFile(Path);
  if (!Text)
    return Text.takeError();
  unsigned Count = 0;
  std::istringstream Lines(*Text);
  std::string Line;
  while (std::getline(Lines, Line))
    if (!isNonCodeLine(Line))
      ++Count;
  return Count;
}

} // namespace relc
