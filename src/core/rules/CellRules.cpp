//===- core/rules/CellRules.cpp - Mutable cells (Table 1) ------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The "cells" extension of Table 1: get, put, and iadd (in-place add) on
// one-word mutable cells. At the source level a cell is a one-element
// list (Cell.get unfolds to nth 0); at the target level it is a single
// word behind a pointer. These are intensional state effects: no monad in
// the model's type, just name-directed rebinding.
//
//===----------------------------------------------------------------------===//

#include "core/rules/Rules.h"
#include "core/rules/RulesCommon.h"

namespace relc {
namespace core {

using bedrock::CmdPtr;
using sep::HeapClause;
using sep::TargetSlot;

namespace {

/// Looks up the cell clause and its pointer local.
Result<std::pair<int, std::string>> cellParts(CompileCtx &Ctx,
                                              const std::string &Cell) {
  Result<int> ClauseIdx = Ctx.requireClause(Cell, HeapClause::Kind::Cell);
  if (!ClauseIdx)
    return ClauseIdx.takeError();
  Result<std::string> Ptr = Ctx.requirePtrLocal(*ClauseIdx);
  if (!Ptr)
    return Ptr.takeError();
  return std::make_pair(*ClauseIdx, *Ptr);
}

// RELC-SECTION-BEGIN: lemma-cell-get
/// compile_cell_get: `let/n x := Cell.get c` becomes x = load8(c).
class CellGetRule : public StmtRule {
public:
  std::string name() const override { return "compile_cell_get"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::CellGet};
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::CellGet>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *G = cast<ir::CellGet>(B.Bound.get());
    auto Parts = cellParts(Ctx, G->cell());
    if (!Parts)
      return Parts.takeError();
    sep::SymVal V = freshTypedSym(Ctx.State, B.Names[0], ir::Ty::Word);
    Ctx.State.Locals[B.Names[0]] = TargetSlot::scalar(V, ir::Ty::Word);
    Ctx.noteFeature("Mutation");
    CmdPtr Get = bedrock::set(
        B.Names[0],
        bedrock::load(bedrock::AccessSize::Eight, bedrock::var(Parts->second)));
    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    return bedrock::seq(Get, Rest.take());
  }
};
// RELC-SECTION-END: lemma-cell-get

// RELC-SECTION-BEGIN: lemma-cell-put
/// compile_cell_put: `let/n c := Cell.put c e` becomes store8(c) = e; the
/// name reuse is the mutation.
class CellPutRule : public StmtRule {
public:
  std::string name() const override { return "compile_cell_put"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::CellPut};
    P.NameDir = GoalPattern::NameDirection::InPlace;
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::CellPut>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *P = cast<ir::CellPut>(B.Bound.get());
    if (B.Names[0] != P->cell())
      return Error("unsolved goal: Cell.put result bound to '" + B.Names[0] +
                   "' but the cell is '" + P->cell() +
                   "'; rebind under the same name for in-place mutation");
    auto Parts = cellParts(Ctx, P->cell());
    if (!Parts)
      return Parts.takeError();
    Result<CompiledExpr> V =
        Ctx.exprs().compileTyped(*P->expr(), ir::Ty::Word, D);
    if (!V)
      return V.takeError();
    Ctx.noteFeature("Mutation");
    std::vector<CmdPtr> Cmds = V->Pre;
    Cmds.push_back(bedrock::store(bedrock::AccessSize::Eight,
                                  bedrock::var(Parts->second), V->E));
    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-cell-put

// RELC-SECTION-BEGIN: lemma-cell-iadd
/// compile_cell_iadd: `let/n c := Cell.incr c e` becomes the read-add-write
/// store8(c) = load8(c) + e — the Table 1 "iadd" intrinsic.
class CellIncrRule : public StmtRule {
public:
  std::string name() const override { return "compile_cell_iadd"; }
  GoalPattern pattern() const override {
    GoalPattern P;
    P.Kinds = {ir::BoundForm::Kind::CellIncr};
    P.NameDir = GoalPattern::NameDirection::InPlace;
    P.SubGoals = GoalPattern::Emits::Expr;
    return P;
  }
  bool matches(const CompileCtx &, const ir::Binding &B) const override {
    return isa<ir::CellIncr>(B.Bound.get()) && B.Names.size() == 1;
  }
  Result<CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B, const Cont &K,
                       DerivNode &D) override {
    const auto *P = cast<ir::CellIncr>(B.Bound.get());
    if (B.Names[0] != P->cell())
      return Error("unsolved goal: Cell.incr result bound to '" + B.Names[0] +
                   "' but the cell is '" + P->cell() +
                   "'; rebind under the same name for in-place mutation");
    auto Parts = cellParts(Ctx, P->cell());
    if (!Parts)
      return Parts.takeError();
    Result<CompiledExpr> V =
        Ctx.exprs().compileTyped(*P->expr(), ir::Ty::Word, D);
    if (!V)
      return V.takeError();
    Ctx.noteFeature("Mutation");
    std::vector<CmdPtr> Cmds = V->Pre;
    bedrock::ExprPtr Ptr = bedrock::var(Parts->second);
    Cmds.push_back(bedrock::store(
        bedrock::AccessSize::Eight, Ptr,
        bedrock::add(bedrock::load(bedrock::AccessSize::Eight, Ptr), V->E)));
    Result<CmdPtr> Rest = K(D);
    if (!Rest)
      return Rest;
    Cmds.push_back(Rest.take());
    return bedrock::seqAll(std::move(Cmds));
  }
};
// RELC-SECTION-END: lemma-cell-iadd

} // namespace

std::unique_ptr<StmtRule> makeCellGetRule() {
  return std::make_unique<CellGetRule>();
}
std::unique_ptr<StmtRule> makeCellPutRule() {
  return std::make_unique<CellPutRule>();
}
std::unique_ptr<StmtRule> makeCellIncrRule() {
  return std::make_unique<CellIncrRule>();
}

} // namespace core
} // namespace relc
