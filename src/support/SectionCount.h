//===- support/SectionCount.h - Marker-based LoC measurement ---*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Table 1 and the §4.1.3 case study report programmer effort in lines of
// code for compiler extensions, split into "Lemma" (the rule statement) and
// "Proof" (its justification / validation logic). We measure those numbers
// from the *actual* sources of this repository: extension files bracket the
// relevant regions with
//
//   // RELC-SECTION-BEGIN: <name>
//   ...
//   // RELC-SECTION-END: <name>
//
// and the measurement benches count non-blank, non-comment-only lines in
// between. Nothing is hand-declared, so the reported table tracks the code.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_SECTIONCOUNT_H
#define RELC_SUPPORT_SECTIONCOUNT_H

#include "support/Result.h"

#include <string>

namespace relc {

/// Counts code lines of the section \p Name in file \p Path (relative to the
/// repository root baked in as RELC_SOURCE_DIR, unless absolute). Blank lines
/// and lines holding only a comment are excluded; the marker lines themselves
/// are excluded.
Result<unsigned> countSectionLines(const std::string &Path,
                                   const std::string &Name);

/// Counts code lines of an entire file (same exclusions).
Result<unsigned> countFileLines(const std::string &Path);

/// Resolves \p Path against RELC_SOURCE_DIR when relative.
std::string resolveSourcePath(const std::string &Path);

} // namespace relc

#endif // RELC_SUPPORT_SECTIONCOUNT_H
