//===- tests/cert/BinaryTest.cpp - Binary image format + tamper corpus -----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The binary certificate image (cert/Binary.h) against its contract: a
// write/parse roundtrip is field-for-field lossless, the writer is
// canonical (byte-identical for equal certificates), the JSON and binary
// faces of one certificate decode — and rederive — identically over the
// whole suite, and a corpus of image-level tampering (truncation, bad
// magic, flipped integrity, future versions, escaping offsets) is
// rejected with each case's own stable named reason. The mmap'd image is
// untrusted input; a rejection must never become an acceptance.
//
//===----------------------------------------------------------------------===//

#include "cert/Binary.h"
#include "cert/Reader.h"
#include "cert/Rederive.h"
#include "cert/Writer.h"
#include "programs/Programs.h"
#include "support/Hash.h"
#include "tv/Tv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace relc;

namespace {

cert::Certificate sampleCert() {
  cert::Certificate C;
  C.Function = "crc32";
  C.Key = {0x1111222233334444ull, 0x5555666677778888ull, 0x99990000aaaabbbbull};
  C.Verdict = "proved";
  C.Reason = "";
  C.NumTerms = 321;

  cert::LoopRec L;
  L.Ordinal = 0;
  L.Binding = "acc";
  L.Path = "2";
  L.FoldHash = 0xdeadbeefcafef00dull;
  L.Carried = 2;
  L.Regions = 1;
  L.WitnessLocals = {"acc", "i"};
  L.WitnessRegions = {"out"};
  L.TargetPath = "3";
  C.Loops.push_back(L);

  C.Bindings.push_back({"0", "x", 0x0102030405060708ull});
  C.Bindings.push_back({"1.then.0", "y,z", 0x1020304050607080ull});

  cert::OutputRec O;
  O.Name = "ret";
  O.Kind = "scalar";
  O.SrcHash = O.TgtHash = 0xfeedface12345678ull;
  O.Matched = true;
  O.SourceBinding = "4";
  O.TargetPath = "7";
  C.Outputs.push_back(O);

  cert::CodelintRec K;
  K.Version = 1;
  K.Mem = "safe";
  K.Stack = "safe";
  K.Steps = "unknown";
  K.Accesses = 12;
  K.LocalsBytes = 40;
  K.ScratchBytes = 0;
  K.OperandDepth = 3;
  K.StepBound = 0;
  C.Codelint = K;
  return C;
}

/// Patches a little-endian u32/u64 into \p Image at \p At.
void patchU32(std::string &Image, size_t At, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Image[At + size_t(I)] = char(uint8_t(V >> (8 * I)));
}
void patchU64(std::string &Image, size_t At, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Image[At + size_t(I)] = char(uint8_t(V >> (8 * I)));
}

/// Recomputes the trailing integrity hash after a deliberate header edit,
/// so the test reaches the check *behind* the integrity gate.
void resealIntegrity(std::string &Image) {
  patchU64(Image, Image.size() - 8,
           hash::fnv1a64(std::string_view(Image.data(), Image.size() - 8)));
}

void expectBinReject(const std::string &Image, cert::Reject Why,
                     const char *Label) {
  cert::ReadError Err;
  EXPECT_FALSE(cert::BinReader::parse(Image, &Err).has_value())
      << Label << ": tampered image accepted";
  EXPECT_EQ(cert::rejectName(Err.Why), std::string(cert::rejectName(Why)))
      << Label << ": " << Err.Detail;
}

TEST(CertBinaryTest, WriteParseRoundtripFieldForField) {
  cert::Certificate C = sampleCert();
  cert::ReadError Err;
  std::optional<cert::Certificate> R =
      cert::BinReader::parse(cert::BinWriter::write(C), &Err);
  ASSERT_TRUE(R.has_value()) << cert::rejectName(Err.Why) << ": "
                             << Err.Detail;
  EXPECT_EQ(R->SchemaVersion, C.SchemaVersion);
  EXPECT_EQ(R->Producer, C.Producer);
  EXPECT_EQ(R->Function, C.Function);
  EXPECT_EQ(R->Verdict, C.Verdict);
  EXPECT_EQ(R->Reason, C.Reason);
  EXPECT_EQ(R->NumTerms, C.NumTerms);
  EXPECT_EQ(R->Key.ModelHash, C.Key.ModelHash);
  EXPECT_EQ(R->Key.SpecHash, C.Key.SpecHash);
  EXPECT_EQ(R->Key.CodeHash, C.Key.CodeHash);
  ASSERT_EQ(R->Loops.size(), 1u);
  EXPECT_EQ(R->Loops[0].Binding, "acc");
  EXPECT_EQ(R->Loops[0].FoldHash, C.Loops[0].FoldHash);
  EXPECT_EQ(R->Loops[0].WitnessLocals, C.Loops[0].WitnessLocals);
  EXPECT_EQ(R->Loops[0].WitnessRegions, C.Loops[0].WitnessRegions);
  ASSERT_EQ(R->Bindings.size(), 2u);
  EXPECT_EQ(R->Bindings[1].Name, "y,z");
  EXPECT_EQ(R->Bindings[1].Hash, C.Bindings[1].Hash);
  ASSERT_EQ(R->Outputs.size(), 1u);
  EXPECT_EQ(R->Outputs[0].Kind, "scalar");
  EXPECT_TRUE(R->Outputs[0].Matched);
  ASSERT_TRUE(R->Codelint.has_value());
  EXPECT_EQ(R->Codelint->Steps, "unknown");
  EXPECT_EQ(R->Codelint->LocalsBytes, 40u);
}

TEST(CertBinaryTest, WriterIsCanonical) {
  // Equal certificates produce byte-identical images (deduplicated string
  // table, fixed field order) — the binary analogue of the JSON writer's
  // canonicality, required for warm/cold and -j N byte identity.
  cert::Certificate C = sampleCert();
  std::string A = cert::BinWriter::write(C);
  EXPECT_EQ(A, cert::BinWriter::write(sampleCert()));
  // Parse-then-rewrite is also a fixed point.
  std::optional<cert::Certificate> R = cert::BinReader::parse(A);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(cert::BinWriter::write(*R), A);
}

TEST(CertBinaryTest, JsonAndBinaryFacesDecodeIdentically) {
  cert::Certificate C = sampleCert();
  std::optional<cert::Certificate> FromJson =
      cert::Reader::parse(cert::Writer::write(C));
  std::optional<cert::Certificate> FromBin =
      cert::BinReader::parse(cert::BinWriter::write(C));
  ASSERT_TRUE(FromJson.has_value());
  ASSERT_TRUE(FromBin.has_value());
  // Field equality via the canonical JSON rendering of both decodes.
  EXPECT_EQ(cert::Writer::write(*FromJson), cert::Writer::write(*FromBin));
}

TEST(CertBinaryTest, ReadFileRoundtripsAndMissingFileIsNamed) {
  std::string Path =
      (std::filesystem::temp_directory_path() / "relc-bin-test.certbin")
          .string();
  std::string Image = cert::BinWriter::write(sampleCert());
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Image;
  }
  cert::ReadError Err;
  std::optional<cert::Certificate> R = cert::BinReader::readFile(Path, &Err);
  EXPECT_TRUE(R.has_value()) << Err.Detail;
  if (R) {
    EXPECT_EQ(cert::BinWriter::write(*R), Image);
  }
  std::remove(Path.c_str());

  EXPECT_FALSE(
      cert::BinReader::readFile("/nonexistent/x.certbin", &Err).has_value());
  EXPECT_EQ(Err.Why, cert::Reject::MissingCertificate);
}

//===----------------------------------------------------------------------===//
// The image-level tamper corpus: each way the mmap'd bytes can lie, pinned
// to its stable named rejection.
//===----------------------------------------------------------------------===//

TEST(CertBinaryTest, TamperTruncatedImage) {
  std::string Image = cert::BinWriter::write(sampleCert());
  // Below the magic, below the header, mid-payload, one byte short: every
  // truncation is named truncated-image.
  for (size_t Cut : {size_t(4), size_t(40), Image.size() / 2,
                     Image.size() - 1})
    expectBinReject(Image.substr(0, Cut), cert::Reject::TruncatedImage,
                    "truncation");
  // Trailing garbage breaks the declared size the same way.
  expectBinReject(Image + "x", cert::Reject::TruncatedImage, "extension");
  expectBinReject("", cert::Reject::TruncatedImage, "empty");
}

TEST(CertBinaryTest, TamperBadMagic) {
  std::string Image = cert::BinWriter::write(sampleCert());
  Image[0] = 'X';
  expectBinReject(Image, cert::Reject::BadMagic, "flipped magic byte");
  expectBinReject("{\n  \"schema_version\": 2\n}\n" + std::string(80, ' '),
                  cert::Reject::BadMagic, "JSON handed to the bin reader");
}

TEST(CertBinaryTest, TamperFlippedIntegrityHash) {
  std::string Image = cert::BinWriter::write(sampleCert());
  // Flip a bit in the trailer itself...
  std::string T = Image;
  T[T.size() - 3] = char(T[T.size() - 3] ^ 1);
  expectBinReject(T, cert::Reject::IntegrityMismatch, "trailer bit");
  // ...and a bit in the covered payload (caught before any record walk).
  T = Image;
  T[Image.size() / 2] = char(T[Image.size() / 2] ^ 1);
  expectBinReject(T, cert::Reject::IntegrityMismatch, "payload bit");
}

TEST(CertBinaryTest, TamperFutureVersionsAreNamed) {
  // Container version: checked before integrity (a future container may
  // hash differently), so no reseal needed.
  std::string Image = cert::BinWriter::write(sampleCert());
  patchU32(Image, 8, cert::kBinFormatVersion + 1);
  expectBinReject(Image, cert::Reject::UnknownSchemaVersion,
                  "future container version");
  // Certificate schema version: behind the integrity gate, so the forgery
  // must reseal to reach it — and is still refused.
  Image = cert::BinWriter::write(sampleCert());
  patchU32(Image, 12, cert::kSchemaVersion + 1);
  resealIntegrity(Image);
  expectBinReject(Image, cert::Reject::UnknownSchemaVersion,
                  "future schema version");
}

TEST(CertBinaryTest, TamperOffsetOutOfRange) {
  // Records region escaping the image (header-level bounds).
  std::string Image = cert::BinWriter::write(sampleCert());
  patchU64(Image, 56, Image.size() * 2);
  resealIntegrity(Image);
  expectBinReject(Image, cert::Reject::OffsetOutOfRange,
                  "records length escapes");
  // String table shrunk to nothing: the first string reference escapes
  // (cursor-level bounds).
  Image = cert::BinWriter::write(sampleCert());
  patchU64(Image, 72, 0);
  resealIntegrity(Image);
  expectBinReject(Image, cert::Reject::OffsetOutOfRange,
                  "string reference escapes");
}

TEST(CertBinaryTest, BinRejectNamesAreStableKebabCase) {
  EXPECT_STREQ(cert::rejectName(cert::Reject::TruncatedImage),
               "truncated-image");
  EXPECT_STREQ(cert::rejectName(cert::Reject::IntegrityMismatch),
               "integrity-mismatch");
  EXPECT_STREQ(cert::rejectName(cert::Reject::BadMagic), "bad-magic");
  EXPECT_STREQ(cert::rejectName(cert::Reject::OffsetOutOfRange),
               "offset-out-of-range");
}

//===----------------------------------------------------------------------===//
// Suite-wide JSON <-> binary rederive equality: both faces of every
// program's certificate must decode identically and both must pass the
// independent checker.
//===----------------------------------------------------------------------===//

TEST(CertBinaryTest, SuiteCertificatesRederiveIdenticallyInBothFormats) {
  unsigned N = 0;
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    core::Compiler C;
    Result<core::CompileResult> R = C.compileFn(P.Model, P.Spec, P.Hints);
    ASSERT_TRUE(bool(R)) << P.Name;
    core::CompileResult Compiled = R.take();
    tv::TvReport Rep = tv::validateTranslation(P.Model, P.Spec, Compiled.Fn,
                                               P.Hints.EntryFacts);
    ASSERT_TRUE(Rep.proved()) << P.Name;
    cert::Certificate Cert = cert::fromTvReport(
        Rep,
        cert::contentKey(P.Model, P.Hints.EntryFacts, P.Spec, Compiled.Fn));

    std::optional<cert::Certificate> FromJson =
        cert::Reader::parse(cert::Writer::write(Cert));
    std::optional<cert::Certificate> FromBin =
        cert::BinReader::parse(cert::BinWriter::write(Cert));
    ASSERT_TRUE(FromJson.has_value()) << P.Name;
    ASSERT_TRUE(FromBin.has_value()) << P.Name;
    EXPECT_EQ(cert::Writer::write(*FromJson), cert::Writer::write(*FromBin))
        << P.Name << ": the two faces decode differently";

    for (const cert::Certificate *Face :
         {&*FromJson, &*FromBin}) {
      cert::CheckResult CR = cert::Rederive::check(
          *Face, P.Model, P.Hints.EntryFacts, P.Spec, Compiled.Fn);
      EXPECT_TRUE(CR.Accepted) << P.Name << ": "
                               << cert::rejectName(CR.Why) << ": "
                               << CR.Detail;
    }
    ++N;
  }
  EXPECT_EQ(N, 7u);
}

} // namespace
