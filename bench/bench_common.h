//===- bench/bench_common.h - Shared benchmark plumbing ---------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_BENCH_BENCH_COMMON_H
#define RELC_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace relc_bench {

/// Serializing-ish cycle counter; falls back to nanoseconds on non-x86
/// (the cycles/byte column then reads ns/byte × estimated GHz).
inline uint64_t cycleCount() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned Aux;
  return __rdtscp(&Aux);
#else
  return uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Estimates the TSC frequency in GHz (used to convert between cycles and
/// wall time in summaries).
inline double estimateGHz() {
  static double GHz = [] {
    auto T0 = std::chrono::steady_clock::now();
    uint64_t C0 = cycleCount();
    while (std::chrono::steady_clock::now() - T0 <
           std::chrono::milliseconds(50)) {
    }
    uint64_t C1 = cycleCount();
    auto T1 = std::chrono::steady_clock::now();
    double Ns = double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           T1 - T0)
                           .count());
    return double(C1 - C0) / Ns;
  }();
  return GHz;
}

/// Mean, median, and 95% confidence half-width over samples. The median
/// is the headline for overhead ratios: it shrugs off the occasional
/// scheduler hiccup that drags a mean (and can even push a small true
/// overhead negative on a noisy box).
struct Stats {
  double Mean = 0, Median = 0, Ci95 = 0;
};

inline Stats stats(const std::vector<double> &Xs) {
  Stats S;
  if (Xs.empty())
    return S;
  double Sum = 0;
  for (double X : Xs)
    Sum += X;
  S.Mean = Sum / double(Xs.size());
  double Var = 0;
  for (double X : Xs)
    Var += (X - S.Mean) * (X - S.Mean);
  Var /= Xs.size() > 1 ? double(Xs.size() - 1) : 1.0;
  S.Ci95 = 1.96 * std::sqrt(Var / double(Xs.size()));
  std::vector<double> Sorted = Xs;
  std::sort(Sorted.begin(), Sorted.end());
  size_t N = Sorted.size();
  S.Median = N % 2 ? Sorted[N / 2]
                   : (Sorted[N / 2 - 1] + Sorted[N / 2]) / 2.0;
  return S;
}

//===----------------------------------------------------------------------===//
// Allocation counting. The counter lives in an inline function (one
// instance per binary); the replacement global operator new/delete that
// feed it are only compiled into the ONE translation unit per binary that
// defines RELC_BENCH_COUNT_ALLOCS before including this header (the
// replacement functions must not be multiply defined). Binaries that
// never define the macro get a counter that stays at zero.
//===----------------------------------------------------------------------===//

inline std::atomic<uint64_t> &allocCount() {
  static std::atomic<uint64_t> N{0};
  return N;
}

/// Runs \p Fn and returns how many heap allocations it performed (0 when
/// the binary was built without the counting hook).
inline uint64_t allocationsDuring(const std::function<void()> &Fn) {
  uint64_t Before = allocCount().load(std::memory_order_relaxed);
  Fn();
  return allocCount().load(std::memory_order_relaxed) - Before;
}

} // namespace relc_bench

// noinline keeps GCC from pairing an inlined free() against a call to a
// not-inlined operator new and warning -Wmismatched-new-delete (the pair
// is in fact matched: both sides are these malloc/free replacements).
#ifdef RELC_BENCH_COUNT_ALLOCS
__attribute__((noinline)) void *operator new(std::size_t Size) {
  relc_bench::allocCount().fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
__attribute__((noinline)) void *operator new[](std::size_t Size) {
  relc_bench::allocCount().fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
__attribute__((noinline)) void operator delete(void *P) noexcept {
  std::free(P);
}
__attribute__((noinline)) void operator delete[](void *P) noexcept {
  std::free(P);
}
__attribute__((noinline)) void operator delete(void *P, std::size_t) noexcept {
  std::free(P);
}
__attribute__((noinline)) void
operator delete[](void *P, std::size_t) noexcept {
  std::free(P);
}
#endif // RELC_BENCH_COUNT_ALLOCS

namespace relc_bench {

/// Times \p Fn over \p Reps repetitions; returns per-rep cycle counts
/// divided by \p Bytes (cycles per byte).
inline Stats cyclesPerByte(const std::function<void()> &Fn, size_t Bytes,
                           unsigned Reps) {
  // Warmup.
  Fn();
  Fn();
  std::vector<double> Samples;
  Samples.reserve(Reps);
  for (unsigned I = 0; I < Reps; ++I) {
    uint64_t C0 = cycleCount();
    Fn();
    uint64_t C1 = cycleCount();
    Samples.push_back(double(C1 - C0) / double(Bytes));
  }
  return stats(Samples);
}

/// Deterministic xorshift-style byte stream for workloads.
inline std::vector<uint8_t> randomBytes(size_t N, uint64_t Seed) {
  std::vector<uint8_t> Out(N);
  uint64_t S = Seed ? Seed : 1;
  for (size_t I = 0; I < N; ++I) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    Out[I] = uint8_t(S);
  }
  return Out;
}

inline std::vector<uint8_t> asciiBytes(size_t N, uint64_t Seed) {
  std::vector<uint8_t> Out = randomBytes(N, Seed);
  for (uint8_t &B : Out)
    B = uint8_t(0x20 + (B % 0x5f)); // Printable ASCII.
  return Out;
}

inline std::vector<uint8_t> dnaBytes(size_t N, uint64_t Seed) {
  static const char Alphabet[] = "ACGTacgtNRYKMn";
  std::vector<uint8_t> Out = randomBytes(N, Seed);
  for (uint8_t &B : Out)
    B = uint8_t(Alphabet[B % (sizeof(Alphabet) - 1)]);
  return Out;
}

/// A mix of 1-, 2-, 3- and 4-byte UTF-8 sequences (valid encodings).
inline std::vector<uint8_t> utf8Bytes(size_t N, uint64_t Seed) {
  std::vector<uint8_t> Src = randomBytes(N + 8, Seed);
  std::vector<uint8_t> Out;
  Out.reserve(N + 8);
  size_t I = 0;
  while (Out.size() < N) {
    uint32_t Cp;
    switch (Src[I++] & 3) {
    case 0:
      Cp = 'a' + (Src[I++] % 26);
      break;
    case 1:
      Cp = 0x80 + (Src[I++] % 0x700);
      break;
    case 2:
      Cp = 0x800 + (Src[I++] % 0xF000);
      // Avoid the surrogate range.
      if (Cp >= 0xD800 && Cp <= 0xDFFF)
        Cp = 0x1234;
      break;
    default:
      Cp = 0x10000 + (Src[I++] % 0xFFFF);
      break;
    }
    if (I >= Src.size())
      I = 0;
    if (Cp < 0x80) {
      Out.push_back(uint8_t(Cp));
    } else if (Cp < 0x800) {
      Out.push_back(uint8_t(0xC0 | (Cp >> 6)));
      Out.push_back(uint8_t(0x80 | (Cp & 0x3f)));
    } else if (Cp < 0x10000) {
      Out.push_back(uint8_t(0xE0 | (Cp >> 12)));
      Out.push_back(uint8_t(0x80 | ((Cp >> 6) & 0x3f)));
      Out.push_back(uint8_t(0x80 | (Cp & 0x3f)));
    } else {
      Out.push_back(uint8_t(0xF0 | (Cp >> 18)));
      Out.push_back(uint8_t(0x80 | ((Cp >> 12) & 0x3f)));
      Out.push_back(uint8_t(0x80 | ((Cp >> 6) & 0x3f)));
      Out.push_back(uint8_t(0x80 | (Cp & 0x3f)));
    }
  }
  Out.resize(N);
  // Keep the tail decodable: pad the final bytes with ASCII.
  for (size_t K = N >= 4 ? N - 4 : 0; K < N; ++K)
    if (Out[K] >= 0x80)
      Out[K] = 'x';
  return Out;
}

} // namespace relc_bench

#endif // RELC_BENCH_BENCH_COMMON_H
