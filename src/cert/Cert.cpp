//===- cert/Cert.cpp - Content keys and rejection vocabulary ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "cert/Cert.h"

#include "bedrock/Ast.h"
#include "codelint/Codelint.h"
#include "support/Hash.h"
#include "sep/State.h"
#include "support/StringExtras.h"

namespace relc {
namespace cert {

using hash::fnv1a64;

ContentKey contentKey(const ir::SourceFn &Model, const EntryFacts &Hints,
                      const sep::FnSpec &Spec, const bedrock::Function &Code) {
  ContentKey Key;

  // Model: canonical rendering + inline-table contents (str() names tables
  // but elides their data, which is semantically load-bearing) + the
  // compile hints, digested by *effect*: hint providers are opaque
  // closures, but all they do is add solver facts, and the fact database
  // renders canonically.
  uint64_t H = fnv1a64("relc-model-v1|");
  H = fnv1a64(Model.str(), H);
  for (const ir::TableDef &T : Model.Tables) {
    H = fnv1a64("|table|" + T.Name + "|" +
                    std::to_string(unsigned(ir::eltSize(T.Elt))) + "|",
                H);
    for (uint64_t E : T.Elements)
      H = fnv1a64(std::to_string(E) + ",", H);
  }
  sep::CompState HintState;
  for (const auto &Provider : Hints)
    Provider(HintState);
  H = fnv1a64("|hints|" + HintState.Facts.str(), H);
  Key.ModelHash = H;

  // Fnspec: the rendering covers the ABI shape; the output lists are
  // appended explicitly so a reordering invisible to str() still misses.
  uint64_t S = fnv1a64("relc-spec-v1|");
  S = fnv1a64(Spec.str(), S);
  S = fnv1a64("|rets|" + join(Spec.ScalarRets, ","), S);
  S = fnv1a64("|inplace|" + join(Spec.InPlaceArrays, ","), S);
  S = fnv1a64("|cells|" + join(Spec.InPlaceCells, ","), S);
  Key.SpecHash = S;

  // Emitted code: the Bedrock2 function's canonical rendering, plus the
  // inline tables' element data (str() prints only their shape).
  uint64_t C = fnv1a64("relc-code-v1|");
  C = fnv1a64(Code.str(), C);
  for (const bedrock::InlineTable &T : Code.Tables) {
    C = fnv1a64("|table|" + T.Name + "|" +
                    std::to_string(unsigned(T.EltSize)) + "|",
                C);
    for (bedrock::Word E : T.Elements)
      C = fnv1a64(std::to_string(E) + ",", C);
  }
  Key.CodeHash = C;
  return Key;
}

CodelintRec codelintRecOf(const codelint::Report &R) {
  CodelintRec L;
  L.Version = codelint::kCodelintVersion;
  L.Mem = codelint::verdictName(R.Mem);
  L.Stack = codelint::verdictName(R.Stack);
  L.Steps = codelint::verdictName(R.Steps);
  L.Accesses = R.Accesses;
  L.LocalsBytes = R.LocalsBytes;
  L.ScratchBytes = R.ScratchBytes;
  L.OperandDepth = R.OperandDepth;
  L.StepBound = R.StepBound;
  return L;
}

const char *rejectName(Reject R) {
  switch (R) {
  case Reject::MissingCertificate:
    return "missing-certificate";
  case Reject::MalformedCertificate:
    return "malformed-certificate";
  case Reject::UnknownSchemaVersion:
    return "unknown-schema-version";
  case Reject::UnverifiableV1:
    return "unverifiable-v1";
  case Reject::FunctionMismatch:
    return "function-mismatch";
  case Reject::StaleModel:
    return "stale-model";
  case Reject::StaleSpec:
    return "stale-spec";
  case Reject::StaleCode:
    return "stale-code";
  case Reject::VerdictNotProved:
    return "verdict-not-proved";
  case Reject::TruncatedTrace:
    return "truncated-trace";
  case Reject::BindingTraceMismatch:
    return "binding-trace-mismatch";
  case Reject::LoopSummaryMismatch:
    return "loop-summary-mismatch";
  case Reject::LoopWitnessMismatch:
    return "loop-witness-mismatch";
  case Reject::OutputMismatch:
    return "output-mismatch";
  case Reject::CodelintMismatch:
    return "codelint-mismatch";
  case Reject::RederivationFailed:
    return "rederivation-failed";
  case Reject::TruncatedImage:
    return "truncated-image";
  case Reject::IntegrityMismatch:
    return "integrity-mismatch";
  case Reject::BadMagic:
    return "bad-magic";
  case Reject::OffsetOutOfRange:
    return "offset-out-of-range";
  }
  return "?";
}

} // namespace cert
} // namespace relc
