//===- support/CommandLine.cpp - Table-driven flag parsing -----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <cstdio>

namespace relc {
namespace cl {

OptionTable::OptionTable(std::string Tool, std::string Overview)
    : Tool(std::move(Tool)), Overview(std::move(Overview)) {}

void OptionTable::flag(std::vector<std::string> Names, bool *Target,
                       std::string Help) {
  custom(std::move(Names), false, "", std::move(Help),
         [Target](const std::string &, std::string *) {
           *Target = true;
           return true;
         });
}

void OptionTable::str(std::vector<std::string> Names, std::string *Target,
                      std::string Meta, std::string Help) {
  custom(std::move(Names), true, std::move(Meta), std::move(Help),
         [Target](const std::string &V, std::string *) {
           *Target = V;
           return true;
         });
}

void OptionTable::num(std::vector<std::string> Names, unsigned *Target,
                      unsigned Min, std::string Meta, std::string Help) {
  custom(std::move(Names), true, std::move(Meta), std::move(Help),
         [Target, Min](const std::string &V, std::string *Err) {
           unsigned long N = 0;
           bool Numeric = !V.empty();
           for (char C : V) {
             if (C < '0' || C > '9' || N >= 1000000) {
               Numeric = false;
               break;
             }
             N = N * 10 + unsigned(C - '0');
           }
           if (!Numeric || N < Min) {
             *Err = "invalid count '" + V + "'";
             return false;
           }
           *Target = unsigned(N);
           return true;
         });
}

void OptionTable::choice(std::vector<std::string> Names, std::string *Target,
                         std::vector<std::string> Allowed, std::string Meta,
                         std::string Help) {
  custom(std::move(Names), true, std::move(Meta), std::move(Help),
         [Target, Allowed = std::move(Allowed)](const std::string &V,
                                                std::string *Err) {
           for (const std::string &A : Allowed)
             if (V == A) {
               *Target = V;
               return true;
             }
           *Err = "invalid value '" + V + "' (expected ";
           for (size_t I = 0; I < Allowed.size(); ++I)
             *Err += std::string(I ? I + 1 == Allowed.size() ? " or " : ", "
                                   : "") +
                     "'" + Allowed[I] + "'";
           *Err += ")";
           return false;
         });
}

void OptionTable::custom(
    std::vector<std::string> Names, bool HasValue, std::string Meta,
    std::string Help,
    std::function<bool(const std::string &, std::string *)> Consume) {
  Option O;
  O.Names = std::move(Names);
  O.HasValue = HasValue;
  O.Meta = std::move(Meta);
  O.Help = std::move(Help);
  O.Consume = std::move(Consume);
  Options.push_back(std::move(O));
}

void OptionTable::positional(
    std::string Meta, std::string Help,
    std::function<bool(const std::string &, std::string *)> Consume) {
  PosMeta = std::move(Meta);
  PosHelp = std::move(Help);
  PosConsume = std::move(Consume);
}

const OptionTable::Option *OptionTable::find(const std::string &Name) const {
  for (const Option &O : Options)
    for (const std::string &N : O.Names)
      if (N == Name)
        return &O;
  return nullptr;
}

std::string OptionTable::usageLine() const {
  std::string U = "usage: " + Tool + " [options]";
  if (PosConsume)
    U += " [" + PosMeta + "...]";
  return U;
}

std::string OptionTable::helpText() const {
  std::string Out = usageLine() + "\n\n";
  if (!Overview.empty())
    Out += Overview + "\n\n";

  // Left column: "-a, -b <meta>", padded to one shared width.
  std::vector<std::string> Lefts;
  size_t Width = 0;
  for (const Option &O : Options) {
    std::string L = join(O.Names, ", ");
    if (O.HasValue)
      L += " " + O.Meta;
    Width = std::max(Width, L.size());
    Lefts.push_back(std::move(L));
  }
  std::string HelpLeft = "-h, -help";
  Width = std::max(Width, HelpLeft.size());

  auto Row = [&](const std::string &Left, const std::string &Help) {
    std::string Pad(Width - Left.size() + 2, ' ');
    std::string Indent(2 + Width + 2, ' ');
    std::string R = "  " + Left + Pad;
    for (size_t I = 0; I < Help.size();) {
      size_t E = Help.find('\n', I);
      if (E == std::string::npos)
        E = Help.size();
      if (I)
        R += Indent;
      R += Help.substr(I, E - I) + "\n";
      I = E + 1;
    }
    if (Help.empty())
      R += "\n";
    return R;
  };

  for (size_t I = 0; I < Options.size(); ++I)
    Out += Row(Lefts[I], Options[I].Help);
  Out += Row(HelpLeft, "show this help");
  if (PosConsume && !PosHelp.empty())
    Out += "\n  " + PosMeta + ": " + PosHelp + "\n";
  return Out;
}

std::string OptionTable::suggestion(const std::string &Unknown) const {
  std::string Best;
  unsigned BestDist = 3; // Suggest only within edit distance 2.
  for (const Option &O : Options)
    for (const std::string &N : O.Names) {
      unsigned D = editDistance(Unknown, N);
      if (D < BestDist) {
        BestDist = D;
        Best = N;
      }
    }
  return Best;
}

ParseResult OptionTable::parse(int Argc, char **Argv, int Begin) const {
  for (int I = Begin; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.empty() || A[0] != '-') {
      if (!PosConsume) {
        std::fprintf(stderr, "%s: unexpected argument '%s'\n%s\n",
                     Tool.c_str(), A.c_str(), usageLine().c_str());
        return ParseResult::Error;
      }
      std::string Err;
      if (!PosConsume(A, &Err)) {
        std::fprintf(stderr, "%s: %s\n", Tool.c_str(), Err.c_str());
        return ParseResult::Error;
      }
      continue;
    }
    // Normalize --flag to -flag: every option takes both spellings.
    if (A.size() > 2 && A[1] == '-')
      A.erase(A.begin());
    // -flag=value: split at the first '='. The empty value in '-flag=' is
    // preserved (it reaches Consume, which reports it in its own words).
    std::string Inline;
    bool HasInline = false;
    if (size_t Eq = A.find('='); Eq != std::string::npos) {
      Inline = A.substr(Eq + 1);
      A.erase(Eq);
      HasInline = true;
    }
    if (!HasInline && (A == "-h" || A == "-help")) {
      std::printf("%s", helpText().c_str());
      return ParseResult::Help;
    }
    const Option *O = find(A);
    if (!O) {
      std::string Hint = suggestion(A);
      if (!Hint.empty())
        Hint = "; did you mean '" + Hint + "'?";
      std::fprintf(stderr, "%s: unknown option '%s'%s\n%s\n", Tool.c_str(),
                   Argv[I], Hint.c_str(), usageLine().c_str());
      return ParseResult::Error;
    }
    if (HasInline && !O->HasValue) {
      std::fprintf(stderr, "%s: option '%s' does not take a value\n%s\n",
                   Tool.c_str(), A.c_str(), usageLine().c_str());
      return ParseResult::Error;
    }
    std::string Value;
    if (O->HasValue) {
      if (HasInline) {
        Value = Inline;
      } else if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: option '%s' expects %s\n%s\n", Tool.c_str(),
                     A.c_str(), O->Meta.c_str(), usageLine().c_str());
        return ParseResult::Error;
      } else {
        Value = Argv[++I];
      }
    }
    std::string Err;
    if (!O->Consume(Value, &Err)) {
      std::fprintf(stderr, "%s: %s\n", Tool.c_str(), Err.c_str());
      return ParseResult::Error;
    }
  }
  return ParseResult::Ok;
}

SubcommandSet::SubcommandSet(std::string Tool, std::string Overview)
    : Tool(std::move(Tool)), Overview(std::move(Overview)) {}

OptionTable &SubcommandSet::add(std::string Name, std::string Brief,
                                std::string Overview) {
  Sub S;
  S.Name = Name;
  S.Brief = std::move(Brief);
  S.Table =
      std::make_unique<OptionTable>(Tool + " " + Name, std::move(Overview));
  Subs.push_back(std::move(S));
  return *Subs.back().Table;
}

const SubcommandSet::Sub *SubcommandSet::find(const std::string &Name) const {
  for (const Sub &S : Subs)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

std::string SubcommandSet::usageLine() const {
  return "usage: " + Tool + " <command> [options]";
}

std::string SubcommandSet::helpText() const {
  std::string Out = usageLine() + "\n\n";
  if (!Overview.empty())
    Out += Overview + "\n\n";
  Out += "commands:\n";
  size_t Width = 0;
  for (const Sub &S : Subs)
    Width = std::max(Width, S.Name.size());
  for (const Sub &S : Subs)
    Out += "  " + S.Name + std::string(Width - S.Name.size() + 2, ' ') +
           S.Brief + "\n";
  Out += "\nrun '" + Tool + " <command> -help' for per-command options\n";
  return Out;
}

std::string SubcommandSet::suggestion(const std::string &Unknown) const {
  std::string Best;
  unsigned BestDist = 3; // Suggest only within edit distance 2.
  for (const Sub &S : Subs) {
    unsigned D = editDistance(Unknown, S.Name);
    if (D < BestDist) {
      BestDist = D;
      Best = S.Name;
    }
  }
  return Best;
}

SubcommandSet::Dispatch SubcommandSet::dispatch(int Argc, char **Argv) const {
  Dispatch D;
  if (Argc < 2) {
    std::fprintf(stderr, "%s: missing command\n%s", Tool.c_str(),
                 helpText().c_str());
    return D;
  }
  std::string A = Argv[1];
  if (A == "-h" || A == "-help" || A == "--help") {
    std::printf("%s", helpText().c_str());
    D.Result = ParseResult::Help;
    return D;
  }
  if (A == "help") {
    // `help <sub>` forwards to that subcommand's page.
    if (Argc >= 3) {
      if (const Sub *S = find(Argv[2])) {
        std::printf("%s", S->Table->helpText().c_str());
        D.Result = ParseResult::Help;
        D.Name = S->Name;
        return D;
      }
      std::fprintf(stderr, "%s: unknown command '%s'\n", Tool.c_str(),
                   Argv[2]);
      return D;
    }
    std::printf("%s", helpText().c_str());
    D.Result = ParseResult::Help;
    return D;
  }
  const Sub *S = find(A);
  if (!S) {
    std::string Hint = suggestion(A);
    if (!Hint.empty())
      Hint = "; did you mean '" + Hint + "'?";
    std::fprintf(stderr, "%s: unknown command '%s'%s\n%s\n", Tool.c_str(),
                 A.c_str(), Hint.c_str(), usageLine().c_str());
    return D;
  }
  D.Name = S->Name;
  D.Result = S->Table->parse(Argc, Argv, 2);
  return D;
}

} // namespace cl
} // namespace relc
