//===- bench/table1_extensions.cpp - Table 1: extension effort -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1 ("Incremental verification effort for user
// extensions, in lines of Coq code") with lines measured from *this*
// repository's sources:
//
//   Lemma — the compilation rule (the executable form of the lemma),
//           measured between RELC-SECTION markers in core/rules/;
//   Proof — the correctness evidence, measured between markers in
//           tests/core/ExtensionsTest.cpp (in Coq the proof script; here
//           the validation tests that certify the extension end to end).
//
// The paper's own numbers are printed alongside for comparison; "Time"
// was a human estimate in the paper and is not reproducible mechanically.
// The §4.1.1 writer-monad walkthrough is reported the same way below the
// table.
//
//===----------------------------------------------------------------------===//

#include "support/SectionCount.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace relc;

namespace {

struct Row {
  const char *Domain;
  const char *Operation;
  std::vector<std::pair<const char *, const char *>> LemmaSections;
  std::vector<std::pair<const char *, const char *>> ProofSections;
  const char *PaperLemma;
  const char *PaperProof;
};

constexpr const char *kMonadRules = "src/core/rules/MonadRules.cpp";
constexpr const char *kCellRules = "src/core/rules/CellRules.cpp";
constexpr const char *kExtTests = "tests/core/ExtensionsTest.cpp";

unsigned sum(const std::vector<std::pair<const char *, const char *>> &Secs,
             bool *AnyMissing) {
  unsigned Total = 0;
  for (const auto &[File, Name] : Secs) {
    Result<unsigned> N = countSectionLines(File, Name);
    if (!N) {
      *AnyMissing = true;
      continue;
    }
    Total += *N;
  }
  return Total;
}

} // namespace

int main() {
  const std::vector<Row> Rows = {
      {"nondet",
       "alloc, peek",
       {{kMonadRules, "lemma-nondet-alloc"}, {kMonadRules, "lemma-nondet-peek"}},
       {{kExtTests, "proof-nondet-alloc"}, {kExtTests, "proof-nondet-peek"}},
       "26+24",
       "17+11"},
      {"cells",
       "get, put",
       {{kCellRules, "lemma-cell-get"}, {kCellRules, "lemma-cell-put"}},
       {{kExtTests, "proof-cell-get"}, {kExtTests, "proof-cell-put"}},
       "22+23",
       "5+3"},
      {"cells",
       "iadd",
       {{kCellRules, "lemma-cell-iadd"}},
       {{kExtTests, "proof-cell-iadd"}},
       "31",
       "7"},
      {"io",
       "read, write",
       {{kMonadRules, "lemma-io-read"}, {kMonadRules, "lemma-io-write"}},
       {{kExtTests, "proof-io-read"}, {kExtTests, "proof-io-write"}},
       "25+26",
       "7+10"},
  };

  std::printf("=== Table 1: incremental effort for user extensions (lines "
              "of code, measured from this repo) ===\n");
  std::printf("%-8s %-12s %12s %12s %16s %14s\n", "Domain", "Operation",
              "Lemma (ours)", "Proof (ours)", "Lemma (paper)",
              "Proof (paper)");
  bool AnyMissing = false;
  for (const Row &R : Rows) {
    unsigned Lemma = sum(R.LemmaSections, &AnyMissing);
    unsigned Proof = sum(R.ProofSections, &AnyMissing);
    std::printf("%-8s %-12s %12u %12u %16s %14s\n", R.Domain, R.Operation,
                Lemma, Proof, R.PaperLemma, R.PaperProof);
  }
  if (AnyMissing)
    std::printf("(warning: some sections were not found; counts above are "
                "partial)\n");

  // §4.1.1: the writer-monad walkthrough, reported with the same split.
  std::printf("\n=== §4.1.1 walkthrough: adding the writer monad ===\n");
  bool Missing2 = false;
  unsigned WLemma =
      sum({{kMonadRules, "lemma-writer-tell"}}, &Missing2);
  unsigned WProof = sum({{kExtTests, "proof-writer-tell"}}, &Missing2);
  Result<unsigned> WExample =
      countSectionLines("examples/extension_writer.cpp", "writer-example");
  std::printf("compilation rule: %u lines (paper: 56 code + 8 proof)\n",
              WLemma);
  std::printf("correctness evidence: %u lines (paper: 17 code + 5 proof "
              "for the monad, 15 for primitives)\n",
              WProof);
  if (WExample)
    std::printf("example model + spec + derivation call: %u lines "
                "(paper: 4 + 6 + 1)\n",
                *WExample);
  std::printf("(paper wall-clock estimate: ~1.5 hours from a blank file; "
              "Time is a human measure and is not mechanically "
              "reproducible)\n");
  return 0;
}
