//===- tests/support/RngTest.cpp -------------------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace relc;

namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4u);
}

TEST(RngTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    uint64_t V = R.range(5, 8);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 8u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u); // All four values show up.
}

TEST(RngTest, BytesHaveRequestedLengthAndSpread) {
  Rng R(11);
  std::vector<uint8_t> B = R.bytes(4096);
  ASSERT_EQ(B.size(), 4096u);
  std::set<uint8_t> Distinct(B.begin(), B.end());
  EXPECT_GT(Distinct.size(), 200u); // Crude uniformity check.
}

TEST(RngTest, BytesFromAlphabet) {
  Rng R(13);
  std::vector<uint8_t> Alphabet = {'A', 'C', 'G', 'T'};
  for (uint8_t B : R.bytesFrom(256, Alphabet))
    EXPECT_TRUE(B == 'A' || B == 'C' || B == 'G' || B == 'T');
}

} // namespace
