//===- programs/Upstr.cpp - In-place string uppercase (Box 1) --------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The paper's running example (Box 1 and §3.2): uppercasing an ASCII
// string in place. The four transformations of §3.2 appear exactly here:
//
//   1. strings as byte arrays      — the ABI (arrayArg + lenArg),
//   2. map as a loop               — the compile_map_inplace lemma,
//   3. in-place mutation           — let/n rebinding `s`,
//   4. the toupper' bit trick      — `if (b - 'a') <? 26 then b & 0x5f
//                                     else b`, written in the model after
//                                     proving it equivalent to toupper
//                                     (tests/programs/ModelLemmas).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

namespace relc {
namespace programs {

using namespace ir;

ProgramDef makeUpstr() {
  ProgramDef P;
  P.Name = "upstr";
  P.Description = "In-place string uppercase (Box 1)";
  P.SourceFile = "src/programs/Upstr.cpp";
  P.EndToEnd = true;

  // RELC-SECTION-BEGIN: program-upstr-source
  // upstr' := fun s => let/n s := ListArray.map
  //             (fun b => w2b (if (b2w b - "a") <? 26
  //                            then b2w b & 0x5f else b2w b)) s in s
  ExprPtr B = b2w(v("b"));
  ExprPtr Toupper =
      w2b(select(ltu(subw(B, cw('a')), cw(26)), andw(B, cw(0x5f)), B));
  FnBuilder FB("upstr_model", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder Body;
  Body.let("s", mkMap("s", "b", Toupper));
  P.Model = std::move(FB).done(std::move(Body).ret({"s"}));
  // RELC-SECTION-END: program-upstr-source

  // The ABI of §3.2: pointer + length in, same buffer updated in place.
  P.Spec = sep::FnSpec("upstr");
  P.Spec.arrayArg("s").lenArg("len", "s").retInPlace("s");

  return P;
}

} // namespace programs
} // namespace relc
