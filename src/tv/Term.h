//===- tv/Term.h - Hash-consed term graph for translation validation -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The shared value language of the translation validator (see Tv.h): both
// the FunLang model and the generated Bedrock2 code are symbolically
// evaluated into nodes of one TermGraph, and the equivalence check at the
// end is *pointer equality* — the graph is hash-consed, and every
// constructor normalizes, so two syntactically different but
// normalization-equal computations intern to the same node id.
//
// The normalization engine is deliberately small (the paper's validator is
// a proof checker, not a theorem prover) and strictly directed:
//
//   - constant folding through bedrock::evalBinOp (the target's word
//     semantics, which the source interpreter agrees with on the pure
//     fragment);
//   - affine canonicalization: +, -, and multiplication/left-shift by
//     constants are flattened into Σ coeff·atom + k with coefficients
//     mod 2^64 and atoms ordered canonically (the word analogue of the
//     solver::LinTerm representation; non-affine subterms become opaque
//     atoms). Sound for equality: equal affine forms denote equal words.
//   - bit-level identities keyed by a structural upper-bound oracle
//     (loads from byte arrays are ≤ 255, inline-table reads are bounded
//     by the table's maximum, ...): And-masks that provably do not change
//     the value are erased *on both sides*, which cancels the compiler's
//     "omit the w2b mask when the operand is provably narrow" optimization.
//   - load/store forwarding through array terms (the separation-logic
//     frame guarantees distinct regions never alias, so forwarding only
//     needs to reason within one region's store chain).
//
// Loops appear as summarized Fold nodes: guard + per-carried-value initial
// and step terms over canonical bound symbols, plus the array regions the
// body writes. FoldOut / FoldOutArr project the post-loop values. Two
// loops agree iff their summaries intern to the same Fold node — equal
// initial states evolved by equal guarded transitions are equal at every
// trip count, including the symbolic one.
//
// Concurrency contract (audited for the parallel certification pipeline,
// pipeline/Scheduler.h): the hash-cons table is a per-TermGraph member,
// not a global — every TV job constructs its own graph, so concurrent
// jobs share no mutable state and need no locks (per-job arenas, not
// mutex-guarded interning; DESIGN.md §4.5). Keep it that way: a global
// intern table would make node ids — which the certificates embed —
// depend on scheduling order and break the byte-identical -j1/-jN
// guarantee, besides needing synchronization.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_TV_TERM_H
#define RELC_TV_TERM_H

#include "bedrock/Ast.h"
#include "solver/Linear.h"
#include "support/Budget.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace relc {
namespace tv {

/// Index of a node in a TermGraph. Ids are dense and only meaningful
/// within their graph; cross-run stability comes from hashOf().
using TermId = uint32_t;
constexpr TermId NoTerm = ~TermId(0);

enum class TermKind : uint8_t {
  Const,      ///< A = the word value.
  Sym,        ///< Name = symbol ("x", "len_s", "ptr_s", "%L0.i", ...).
  Bin,        ///< A = bedrock::BinOp; Ops = {lhs, rhs}.
  Select,     ///< Ops = {cond, then, else}; cond nonzero picks then.
  Elt,        ///< Ops = {array, index}; one element, width = array's.
  TableElt,   ///< Name = table; W = elt bytes; A = max element; Ops = {idx}.
  ArrInit,    ///< Name = region; W = elt bytes. The entry contents.
  ArrHavoc,   ///< Name = canonical symbol; W = elt bytes. Unknown contents.
  ArrStore,   ///< Ops = {array, index, value}; value pre-masked to width.
  ArrSelect,  ///< Ops = {cond, then-array, else-array}.
  Fold,       ///< A loop summary; see TermGraph::fold.
  FoldOut,    ///< Ops = {fold}; A = carried position. Post-loop value.
  FoldOutArr, ///< Ops = {fold}; Name = region. Post-loop array contents.
};

/// One region's effect inside a Fold summary.
struct FoldRegion {
  std::string Name;  ///< Region (source array/cell name).
  TermId Entry = NoTerm; ///< Contents at loop entry (outer state).
  TermId Next = NoTerm;  ///< Contents after one iteration, over the
                         ///< canonical bound symbols.
};

struct TermNode {
  TermKind K = TermKind::Const;
  uint8_t W = 0;      ///< Element width in bytes (array-ish nodes).
  uint64_t A = 0;     ///< Const value / BinOp / position / max element.
  std::string Name;   ///< Symbol, region, or table name.
  std::vector<TermId> Ops;
  uint64_t Hash = 0;  ///< Content hash (stable across graphs and runs).
};

/// Extra structure of a Fold node (indexed by the Fold's TermId).
struct FoldInfo {
  unsigned NumCarried = 0;
  TermId Guard = NoTerm;
  std::vector<TermId> Inits;       ///< Carried initial values (outer state).
  std::vector<TermId> Nexts;       ///< One-iteration step terms (canonical
                                   ///< bound symbols).
  std::vector<FoldRegion> Regions; ///< Written regions, sorted by name.
};

/// An affine view of a scalar term: Σ Coeffs[atom]·atom + K, all
/// arithmetic mod 2^64 (well-defined on uint64_t; equality of affine
/// forms implies equality of the denoted words).
struct AffineView {
  std::map<TermId, uint64_t> Coeffs; ///< Zero coefficients erased.
  uint64_t K = 0;
};

class TermGraph {
public:
  TermGraph();

  //===--------------------------------------------------------------------===//
  // Normalizing constructors.
  //===--------------------------------------------------------------------===//

  TermId constant(uint64_t V);
  TermId sym(const std::string &Name);
  TermId bin(bedrock::BinOp Op, TermId L, TermId R);
  TermId select(TermId C, TermId T, TermId E);
  TermId elt(TermId Arr, TermId Idx);
  TermId tableElt(const std::string &Table, unsigned EltBytes, uint64_t MaxElt,
                  TermId Idx);
  TermId arrInit(const std::string &Region, unsigned EltBytes);
  TermId arrHavoc(const std::string &Sym, unsigned EltBytes);
  /// Masks \p Val to the array's element width before recording it, so a
  /// value the compiler stored unmasked (because it proved narrowness) and
  /// the model's explicitly truncated value intern identically.
  TermId arrStore(TermId Arr, TermId Idx, TermId Val);
  TermId arrSelect(TermId C, TermId T, TermId E);

  TermId fold(FoldInfo Info);
  TermId foldOut(TermId Fold, unsigned Pos);
  TermId foldOutArr(TermId Fold, const std::string &Region);

  //===--------------------------------------------------------------------===//
  // Inspection.
  //===--------------------------------------------------------------------===//

  const TermNode &node(TermId T) const { return Nodes[T]; }
  std::optional<uint64_t> asConst(TermId T) const;
  unsigned eltBytesOf(TermId Arr) const; ///< Element width of an array term.
  uint64_t hashOf(TermId T) const { return Nodes[T].Hash; }
  const FoldInfo &foldInfo(TermId Fold) const;
  size_t size() const { return Nodes.size(); }

  /// Structural upper bound on the word value of \p T, when one is
  /// derivable (e.g. a byte-array element is ≤ 255). \p Facts supplies
  /// interval bounds for entry symbols (the ABI's requires clause).
  std::optional<uint64_t> upperBound(TermId T) const;

  /// Registers entry-symbol facts consulted by the upper-bound oracle.
  void setEntryFacts(const solver::FactDb *Db) { EntryFacts = Db; }

  /// Arms a cooperative budget: every intern() — the funnel all
  /// normalizing constructors pass through — charges one step, and
  /// exhaustion raises guard::BudgetExhausted, caught at the TV layer
  /// boundary and turned into an Inconclusive verdict. Null disarms.
  void setBudget(const guard::Budget *B) { TheBudget = B; }

  /// Affine decomposition of \p T (always succeeds; worst case the whole
  /// term is a single atom with coefficient 1).
  AffineView affine(TermId T) const;

  /// Rebuilds the canonical term of an affine view.
  TermId fromAffine(const AffineView &V);

  /// Rewrites \p T under a Sym -> Sym renaming, re-normalizing bottom-up
  /// (so canonical atom orderings are recomputed for the new symbols).
  TermId substitute(TermId T, const std::map<TermId, TermId> &Renaming);

  /// All Sym node ids reachable from \p T.
  void collectSyms(TermId T, std::set<TermId> &Out) const;

  /// Rendering for diagnostics and certificates (depth-capped).
  std::string str(TermId T, unsigned MaxDepth = 12) const;

private:
  std::vector<TermNode> Nodes;
  std::map<uint64_t, std::vector<TermId>> Interned; ///< Hash -> candidates.
  std::map<TermId, FoldInfo> Folds;
  const solver::FactDb *EntryFacts = nullptr;
  const guard::Budget *TheBudget = nullptr;
  mutable std::map<TermId, std::optional<uint64_t>> UbMemo;

  TermId intern(TermNode N);
  bool sameNode(const TermNode &A, const TermNode &B) const;
  static uint64_t hashNode(const TermNode &N);

  /// Non-normalizing Bin constructor used by the affine emitter.
  TermId rawBin(bedrock::BinOp Op, TermId L, TermId R);
  TermId binNonAffine(bedrock::BinOp Op, TermId L, TermId R);
};

} // namespace tv
} // namespace relc

#endif // RELC_TV_TERM_H
