//===- tests/cgen/CCompileIntegrationTest.cpp - Host-compiler check --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The paper's pipeline ends by feeding the pretty-printed C to a regular C
// compiler (§4.2). This integration test does the same: every certified
// benchmark program (and a grab bag of feature-heavy compilations —
// stackalloc, copy, IO hooks, conditionals) is emitted as one translation
// unit and must compile cleanly under the host C compiler with warnings as
// errors. Skipped when no host compiler is available.
//
//===----------------------------------------------------------------------===//

#include "cgen/CEmit.h"
#include "core/Compiler.h"
#include "ir/Build.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace relc;
using namespace relc::ir;

namespace {

bool hostCompilerAvailable() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

/// Writes \p Source to a temp file and runs `cc -std=c11 -Wall -Werror
/// -fsyntax-only` on it.
::testing::AssertionResult compilesAsC(const std::string &Source,
                                       const std::string &Tag) {
  std::string Path = ::testing::TempDir() + "/relc_cc_" + Tag + ".c";
  {
    std::ofstream Out(Path);
    Out << Source;
  }
  std::string Cmd =
      "cc -std=c11 -Wall -Wextra -Werror -fsyntax-only " + Path +
      " > /dev/null 2>" + Path + ".log";
  if (std::system(Cmd.c_str()) == 0)
    return ::testing::AssertionSuccess();
  std::ifstream Log(Path + ".log");
  std::string Diag((std::istreambuf_iterator<char>(Log)),
                   std::istreambuf_iterator<char>());
  return ::testing::AssertionFailure() << "cc rejected " << Tag << ":\n"
                                       << Diag << "\n"
                                       << Source;
}

TEST(CCompileIntegrationTest, BenchmarkSuiteCompilesUnderHostCC) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  bedrock::Module M;
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    Result<programs::CompiledProgram> C =
        programs::compileAndValidate(P, /*RunValidation=*/false);
    ASSERT_TRUE(bool(C)) << P.Name;
    M.Functions.push_back(C->Result.Fn);
  }
  Result<std::string> Code = cgen::emitModule(M);
  ASSERT_TRUE(bool(Code)) << Code.error().str();
  EXPECT_TRUE(compilesAsC(*Code, "suite"));
}

TEST(CCompileIntegrationTest, FeatureHeavyModuleCompilesUnderHostCC) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";

  core::Compiler C;
  bedrock::Module M;

  // Stackalloc + copy + conditional + early-exit fold in one function.
  {
    FnBuilder FB("kitchen_sink", Monad::Pure);
    FB.wordParam("x");
    ProgBuilder Then;
    Then.let("t", mkPut("t", cw(0), cb(1)));
    ProgBuilder Else;
    ProgBuilder B;
    B.let("buf", mkStack({1, 2, 3, 4, 5, 6, 7, 8, 9}))
        .let("t", mkCopy("buf"))
        .letMulti({"t"}, mkIf(ltu(v("x"), cw(10)), std::move(Then).ret({"t"}),
                              std::move(Else).ret({"t"})))
        .let("h", mkFoldBreak("t", "h", "e", cw(0),
                              addw(v("h"), b2w(v("e"))), ltu(cw(20), v("h"))))
        .let("r", addw(v("h"), v("x")));
    SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
    sep::FnSpec Spec("kitchen_sink");
    Spec.scalarArg("x").retScalar("r");
    Result<core::CompileResult> R = C.compileFn(Fn, Spec);
    ASSERT_TRUE(bool(R)) << R.error().str();
    M.Functions.push_back(R->Fn);
  }

  // IO function exercising the relc_ext_* hooks.
  {
    FnBuilder FB("echo_n", Monad::Io);
    FB.wordParam("n");
    ProgBuilder Loop;
    Loop.let("x", mkIoRead()).let("_", mkIoWrite(v("x")));
    ProgBuilder B;
    B.letMulti({"n2"}, mkRange("i", cw(0), v("n"), {acc("n2", cw(0))},
                               [&] {
                                 ProgBuilder Inner;
                                 Inner.let("x", mkIoRead())
                                     .let("_", mkIoWrite(v("x")))
                                     .let("n2", addw(v("n2"), cw(1)));
                                 return std::move(Inner).ret({"n2"});
                               }()));
    SourceFn Fn = std::move(FB).done(std::move(B).ret({"n2"}));
    sep::FnSpec Spec("echo_n");
    Spec.scalarArg("n").retScalar("n2");
    Result<core::CompileResult> R = C.compileFn(Fn, Spec);
    ASSERT_TRUE(bool(R)) << R.error().str();
    M.Functions.push_back(R->Fn);
  }

  Result<std::string> Code = cgen::emitModule(M);
  ASSERT_TRUE(bool(Code)) << Code.error().str();
  EXPECT_TRUE(compilesAsC(*Code, "features"));
}

} // namespace
