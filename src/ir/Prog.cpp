//===- ir/Prog.cpp - let/n programs and loop combinators -------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Prog.h"

#include "support/StringExtras.h"

namespace relc {
namespace ir {

const char *monadName(Monad M) {
  switch (M) {
  case Monad::Pure:
    return "pure";
  case Monad::Nondet:
    return "nondet";
  case Monad::Writer:
    return "writer";
  case Monad::Io:
    return "io";
  }
  return "?";
}

static std::string accList(const std::vector<AccInit> &Accs) {
  std::vector<std::string> Parts;
  for (const AccInit &A : Accs)
    Parts.push_back(A.Name + " := " + A.Init->str());
  return "{" + join(Parts, "; ") + "}";
}

std::string RangeFold::str() const {
  return "ranged_for " + Lo->str() + " " + Hi->str() + " (fun " + IdxName +
         " => ...) " + accList(Accs);
}

std::string WhileComb::str() const {
  return "while " + Cond->str() + " " + accList(Accs) + " {measure " +
         Measure->str() + "}";
}

std::string IfBound::str() const {
  return "if " + Cond->str() + " then (...) else (...)";
}

std::string ExternCall::str() const {
  std::vector<std::string> Parts;
  for (const ExprPtr &A : Args)
    Parts.push_back(A->str());
  return "call " + Callee + " (" + join(Parts, ", ") + ")";
}

std::string Binding::str() const {
  std::string Lhs =
      Names.size() == 1 ? Names[0] : "(" + join(Names, ", ") + ")";
  return "let/n " + Lhs + " := " + (Bound ? Bound->str() : "?");
}

std::string Prog::str(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  std::string Out;
  for (const Binding &B : Bindings) {
    Out += Pad + B.str() + " in\n";
    // Sub-programs print indented below their binding.
    if (const auto *RF = dyn_cast<RangeFold>(B.Bound.get()))
      Out += RF->body()->str(Indent + 2);
    else if (const auto *W = dyn_cast<WhileComb>(B.Bound.get()))
      Out += W->body()->str(Indent + 2);
    else if (const auto *I = dyn_cast<IfBound>(B.Bound.get())) {
      Out += Pad + "  (then)\n" + I->thenProg()->str(Indent + 2);
      Out += Pad + "  (else)\n" + I->elseProg()->str(Indent + 2);
    }
  }
  Out += Pad + (Returns.size() == 1 ? Returns[0]
                                    : "(" + join(Returns, ", ") + ")") +
         "\n";
  return Out;
}

unsigned Prog::countBindings() const {
  unsigned N = 0;
  for (const Binding &B : Bindings) {
    ++N;
    if (const auto *RF = dyn_cast<RangeFold>(B.Bound.get()))
      N += RF->body()->countBindings();
    else if (const auto *W = dyn_cast<WhileComb>(B.Bound.get()))
      N += W->body()->countBindings();
    else if (const auto *I = dyn_cast<IfBound>(B.Bound.get()))
      N += I->thenProg()->countBindings() + I->elseProg()->countBindings();
  }
  return N;
}

const TableDef *SourceFn::findTable(const std::string &TableName) const {
  for (const TableDef &T : Tables)
    if (T.Name == TableName)
      return &T;
  return nullptr;
}

const Param *SourceFn::findParam(const std::string &ParamName) const {
  for (const Param &P : Params)
    if (P.Name == ParamName)
      return &P;
  return nullptr;
}

std::string SourceFn::str() const {
  std::vector<std::string> Ps;
  for (const Param &P : Params) {
    switch (P.TheKind) {
    case Param::Kind::ScalarWord:
      Ps.push_back("(" + P.Name + " : word)");
      break;
    case Param::Kind::List:
      Ps.push_back("(" + P.Name + " : list u" +
                   std::to_string(8 * eltSize(P.Elt)) + ")");
      break;
    case Param::Kind::Cell:
      Ps.push_back("(" + P.Name + " : cell)");
      break;
    }
  }
  std::string Out = "Definition " + Name + " " + join(Ps, " ") + " (" +
                    std::string(monadName(TheMonad)) + ") :=\n";
  if (Body)
    Out += Body->str(2);
  return Out;
}

const char *boundKindName(BoundForm::Kind K) {
  switch (K) {
  case BoundForm::Kind::PureVal:
    return "pure-val";
  case BoundForm::Kind::ArrayPut:
    return "array-put";
  case BoundForm::Kind::ListMap:
    return "list-map";
  case BoundForm::Kind::ListFold:
    return "list-fold";
  case BoundForm::Kind::FoldBreak:
    return "fold-break";
  case BoundForm::Kind::RangeFold:
    return "range-fold";
  case BoundForm::Kind::WhileComb:
    return "while-comb";
  case BoundForm::Kind::IfBound:
    return "if-bound";
  case BoundForm::Kind::StackInit:
    return "stack-init";
  case BoundForm::Kind::StackUninit:
    return "stack-uninit";
  case BoundForm::Kind::NondetAlloc:
    return "nondet-alloc";
  case BoundForm::Kind::NondetPeek:
    return "nondet-peek";
  case BoundForm::Kind::IoRead:
    return "io-read";
  case BoundForm::Kind::IoWrite:
    return "io-write";
  case BoundForm::Kind::WriterTell:
    return "writer-tell";
  case BoundForm::Kind::CellGet:
    return "cell-get";
  case BoundForm::Kind::CellPut:
    return "cell-put";
  case BoundForm::Kind::CellIncr:
    return "cell-incr";
  case BoundForm::Kind::CopyArr:
    return "copy-arr";
  case BoundForm::Kind::ExternCall:
    return "extern-call";
  }
  return "unknown";
}

const std::vector<BoundForm::Kind> &allBoundKinds() {
  static const std::vector<BoundForm::Kind> Kinds = {
      BoundForm::Kind::PureVal,     BoundForm::Kind::ArrayPut,
      BoundForm::Kind::ListMap,     BoundForm::Kind::ListFold,
      BoundForm::Kind::FoldBreak,   BoundForm::Kind::RangeFold,
      BoundForm::Kind::WhileComb,   BoundForm::Kind::IfBound,
      BoundForm::Kind::StackInit,   BoundForm::Kind::StackUninit,
      BoundForm::Kind::NondetAlloc, BoundForm::Kind::NondetPeek,
      BoundForm::Kind::IoRead,      BoundForm::Kind::IoWrite,
      BoundForm::Kind::WriterTell,  BoundForm::Kind::CellGet,
      BoundForm::Kind::CellPut,     BoundForm::Kind::CellIncr,
      BoundForm::Kind::CopyArr,     BoundForm::Kind::ExternCall};
  return Kinds;
}

} // namespace ir
} // namespace relc
