//===- support/Fault.cpp - Deterministic fault injection -------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

#include "support/Hash.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace relc {
namespace fault {

const char *siteName(Site S) {
  switch (S) {
  case Site::CacheRead:
    return "cache-read";
  case Site::CacheWrite:
    return "cache-write";
  case Site::SchedulerJob:
    return "sched-job";
  case Site::LayerEntry:
    return "layer-entry";
  case Site::InterpFuel:
    return "interp-fuel";
  case Site::CodelintEntry:
    return "codelint-entry";
  case Site::SvcAccept:
    return "svc-accept";
  case Site::SvcRead:
    return "svc-read";
  case Site::SvcWrite:
    return "svc-write";
  case Site::SvcDispatch:
    return "svc-dispatch";
  case Site::SvcWorkerSpawn:
    return "svc-worker-spawn";
  case Site::SvcWorkerCrash:
    return "svc-worker-crash";
  case Site::SvcWorkerHang:
    return "svc-worker-hang";
  case Site::SvcWorkerOom:
    return "svc-worker-oom";
  }
  return "cache-read";
}

bool siteFromName(const std::string &Name, Site *Out) {
  for (unsigned I = 0; I < NumSites; ++I)
    if (Name == siteName(Site(I))) {
      *Out = Site(I);
      return true;
    }
  return false;
}

std::string Hit::describe() const {
  return std::string("injected ") + (Transient ? "transient" : "persistent") +
         " " + siteName(TheSite) + " fault at '" + Key + "' (hit #" +
         std::to_string(Occurrence) + ")";
}

namespace {

struct Registry {
  std::mutex Mu;
  std::vector<Clause> Clauses;
  std::string SpecText;
  /// Per-(site, key) ordinal of fired hits. Keyed by key text, not by
  /// call order, so parallel and serial runs inject identically.
  std::map<std::pair<uint8_t, std::string>, unsigned> Fired;
  std::atomic<bool> Armed{false};
};

Registry &reg() {
  static Registry R;
  return R;
}

bool parseU64(const std::string &S, uint64_t *Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + uint64_t(C - '0');
  }
  *Out = V;
  return true;
}

bool parseProb(const std::string &S, double *Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || V < 0.0 || V > 1.0)
    return false;
  *Out = V;
  return true;
}

Result<std::vector<Clause>> parseSpec(const std::string &Spec) {
  std::vector<Clause> Out;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Text = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Text.empty())
      continue;

    Clause C;
    size_t P = 0;
    bool First = true;
    while (P <= Text.size()) {
      size_t Colon = Text.find(':', P);
      std::string Tok = Text.substr(
          P, Colon == std::string::npos ? std::string::npos : Colon - P);
      P = Colon == std::string::npos ? Text.size() + 1 : Colon + 1;
      if (First) {
        if (!siteFromName(Tok, &C.TheSite))
          return Error("fault spec: unknown site '" + Tok +
                       "' (expected cache-read, cache-write, sched-job, "
                       "layer-entry, interp-fuel, codelint-entry, "
                       "svc-accept, svc-read, svc-write, svc-dispatch, "
                       "svc-worker-spawn, svc-worker-crash, "
                       "svc-worker-hang, or svc-worker-oom)");
        First = false;
        continue;
      }
      if (Tok.empty())
        continue;
      if (Tok == "transient") {
        C.Persistent = false;
        continue;
      }
      if (Tok == "persistent") {
        C.Persistent = true;
        continue;
      }
      size_t Eq = Tok.find('=');
      if (Eq == std::string::npos)
        return Error("fault spec: unknown modifier '" + Tok + "' in '" +
                     Text + "'");
      std::string K = Tok.substr(0, Eq), V = Tok.substr(Eq + 1);
      uint64_t U = 0;
      if (K == "p") {
        if (!parseProb(V, &C.Prob))
          return Error("fault spec: bad probability '" + V + "'");
      } else if (K == "n") {
        if (!parseU64(V, &U) || U == 0)
          return Error("fault spec: bad count '" + V + "'");
        C.Count = unsigned(U);
      } else if (K == "seed") {
        if (!parseU64(V, &U))
          return Error("fault spec: bad seed '" + V + "'");
        C.Seed = U;
      } else if (K == "match") {
        C.Match = V;
      } else if (K == "v") {
        if (!parseU64(V, &U))
          return Error("fault spec: bad value '" + V + "'");
        C.Value = U;
      } else {
        return Error("fault spec: unknown modifier '" + K + "' in '" + Text +
                     "'");
      }
    }
    Out.push_back(std::move(C));
  }
  return Out;
}

} // namespace

Status arm(const std::string &Spec) {
  if (Spec.empty()) {
    disarm();
    return Status::success();
  }
  Result<std::vector<Clause>> Parsed = parseSpec(Spec);
  if (!Parsed)
    return Parsed.takeError();
  Registry &R = reg();
  std::lock_guard<std::mutex> L(R.Mu);
  R.Clauses = Parsed.take();
  R.SpecText = Spec;
  R.Fired.clear();
  R.Armed.store(!R.Clauses.empty(), std::memory_order_release);
  return Status::success();
}

Status armFromEnv() {
  const char *Spec = std::getenv("RELC_FAULT_SPEC");
  if (!Spec || !*Spec)
    return Status::success();
  return arm(Spec);
}

void disarm() {
  Registry &R = reg();
  std::lock_guard<std::mutex> L(R.Mu);
  R.Clauses.clear();
  R.SpecText.clear();
  R.Fired.clear();
  R.Armed.store(false, std::memory_order_release);
}

bool armed() { return reg().Armed.load(std::memory_order_acquire); }

std::string activeSpec() {
  Registry &R = reg();
  std::lock_guard<std::mutex> L(R.Mu);
  return R.SpecText;
}

std::optional<Hit> fire(Site S, const std::string &Key) {
  Registry &R = reg();
  if (!R.Armed.load(std::memory_order_acquire))
    return std::nullopt;
  std::lock_guard<std::mutex> L(R.Mu);
  for (const Clause &C : R.Clauses) {
    if (C.TheSite != S)
      continue;
    if (!C.Match.empty() && Key.find(C.Match) == std::string::npos)
      continue;
    if (C.Prob < 1.0) {
      // Deterministic targeting: hash (seed, site, key) into [0,1).
      // mix64: probabilistic targeting reads the top 53 bits, which
      // plain FNV-1a barely avalanches on short keys.
      uint64_t H = hash::mix64(
          hash::fnv1a64(Key, hash::fnv1a64(std::string(siteName(S)) + "|" +
                                           std::to_string(C.Seed) + "|")));
      double U = double(H >> 11) / double(1ull << 53);
      if (U >= C.Prob)
        continue;
    }
    unsigned &N = R.Fired[{uint8_t(S), Key}];
    if (!C.Persistent && N >= C.Count)
      continue; // Healed: this key has absorbed its transient failures.
    Hit H;
    H.TheSite = S;
    H.Key = Key;
    H.Occurrence = N++;
    H.Transient = !C.Persistent;
    H.Value = C.Value;
    return H;
  }
  return std::nullopt;
}

std::optional<Hit> fireWithRetry(Site S, const std::string &Key,
                                 unsigned MaxAttempts) {
  std::optional<Hit> H;
  for (unsigned A = 0; A < MaxAttempts; ++A) {
    H = fire(S, Key);
    if (!H)
      return std::nullopt; // Absorbed (or never targeted).
    if (!H->Transient)
      return H; // Persistent: retrying cannot help.
  }
  return H; // Transient but unhealed within the retry allowance.
}

ScopedFaults::ScopedFaults(const std::string &Spec) : Previous(activeSpec()) {
  Status S = arm(Spec);
  if (!S)
    throw std::runtime_error(S.takeError().str());
}

ScopedFaults::~ScopedFaults() {
  disarm();
  if (!Previous.empty())
    (void)arm(Previous);
}

} // namespace fault
} // namespace relc
