//===- support/Hash.cpp - Shared content-hash primitives -------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

namespace relc {
namespace hash {

uint64_t fnv1a64(std::string_view S, uint64_t H) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

uint64_t fnv1a64Word(uint64_t W, uint64_t H) {
  H ^= W;
  H *= 0x100000001b3ULL;
  return H;
}

uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

std::string hex16(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[size_t(I)] = Digits[V & 0xf];
    V >>= 4;
  }
  return Out;
}

bool parseHex(std::string_view S, uint64_t *Out) {
  if (S.empty() || S.size() > 16)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    unsigned D;
    if (C >= '0' && C <= '9')
      D = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = unsigned(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  *Out = V;
  return true;
}

} // namespace hash
} // namespace relc
