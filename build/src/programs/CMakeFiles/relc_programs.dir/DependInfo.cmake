
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/programs/Crc32.cpp" "src/programs/CMakeFiles/relc_programs.dir/Crc32.cpp.o" "gcc" "src/programs/CMakeFiles/relc_programs.dir/Crc32.cpp.o.d"
  "/root/repo/src/programs/Fasta.cpp" "src/programs/CMakeFiles/relc_programs.dir/Fasta.cpp.o" "gcc" "src/programs/CMakeFiles/relc_programs.dir/Fasta.cpp.o.d"
  "/root/repo/src/programs/Fnv1a.cpp" "src/programs/CMakeFiles/relc_programs.dir/Fnv1a.cpp.o" "gcc" "src/programs/CMakeFiles/relc_programs.dir/Fnv1a.cpp.o.d"
  "/root/repo/src/programs/IpChecksum.cpp" "src/programs/CMakeFiles/relc_programs.dir/IpChecksum.cpp.o" "gcc" "src/programs/CMakeFiles/relc_programs.dir/IpChecksum.cpp.o.d"
  "/root/repo/src/programs/M3s.cpp" "src/programs/CMakeFiles/relc_programs.dir/M3s.cpp.o" "gcc" "src/programs/CMakeFiles/relc_programs.dir/M3s.cpp.o.d"
  "/root/repo/src/programs/Programs.cpp" "src/programs/CMakeFiles/relc_programs.dir/Programs.cpp.o" "gcc" "src/programs/CMakeFiles/relc_programs.dir/Programs.cpp.o.d"
  "/root/repo/src/programs/Upstr.cpp" "src/programs/CMakeFiles/relc_programs.dir/Upstr.cpp.o" "gcc" "src/programs/CMakeFiles/relc_programs.dir/Upstr.cpp.o.d"
  "/root/repo/src/programs/Utf8.cpp" "src/programs/CMakeFiles/relc_programs.dir/Utf8.cpp.o" "gcc" "src/programs/CMakeFiles/relc_programs.dir/Utf8.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/relc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/validate/CMakeFiles/relc_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/cgen/CMakeFiles/relc_cgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sep/CMakeFiles/relc_sep.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/relc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/relc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/bedrock/CMakeFiles/relc_bedrock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/relc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
