//===- tools/relc-codelint.cpp - Target-side code analyzer ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The standalone face of relc::codelint (DESIGN.md §4.9): abstract
// interpretation over the *emitted* target code. Where relc-lint's
// analysis gate inspects the source model and relc-check audits the
// derivation certificate, this tool asks a question neither answers —
// is the Bedrock2 (or stackm) program the compiler actually produced
// memory-safe and resource-bounded on its own terms?
//
// Three analyses, each with a three-valued verdict (safe / unknown /
// unsafe):
//
//   mem    every load/store provably lands inside a region the fnspec
//          frame owns (interval + points-to domains, offsets re-checked
//          through the linear-arithmetic solver)
//   stack  a static worst-case locals + stackalloc footprint (and, for
//          stackm programs, the exact max operand-stack depth)
//   steps  a symbolic step envelope: per-iteration cost times a proved
//          loop trip-count bound, dominating interpreter fuel
//
// The analyzer can only *refuse* (unknown), never wrongly accept: every
// failed proof under an exhausted budget degrades to unknown, and every
// unsafe verdict carries a stable kebab-case finding reason CI matches
// on (oob-load, oob-store, oob-table, unknown-address, expired-region,
// frame-escape, unbounded-stack, unknown-callee, stack-underflow,
// unknown-step-bound, analysis-incomplete).
//
// Exit-code taxonomy (stable; scripts may rely on it):
//   0  every analyzed program has overall verdict safe
//   1  at least one unknown or unsafe verdict (findings on stderr)
//   2  usage or infrastructure error (unknown program, compile failure)
//
//===----------------------------------------------------------------------===//

#include "codelint/Driver.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace relc;

int main(int argc, char **argv) {
  bool Quiet = false, NoStackm = false;
  std::vector<const programs::ProgramDef *> Targets;

  cl::OptionTable T(
      "relc-codelint",
      "Target-side abstract interpretation over the emitted code: proves\n"
      "memory safety (every access inside an owned region), a static\n"
      "stack/locals bound, and a symbolic step envelope for each\n"
      "benchmark program's Bedrock2 output and the Sec. 2 stack-machine\n"
      "examples. With no program arguments, analyzes the whole suite.");
  T.flag({"-q"}, &Quiet, "print findings only, no per-program reports");
  T.flag({"-no-stackm"}, &NoStackm,
         "skip the stack-machine examples; analyze only\n"
         "the named (or all) Bedrock2 suite programs");
  T.positional("program",
               "analyze only the named suite programs (default: all)",
               [&Targets](const std::string &A, std::string *Err) {
                 const programs::ProgramDef *P = programs::findProgram(A);
                 if (!P) {
                   *Err = "unknown program '" + A + "'";
                   return false;
                 }
                 Targets.push_back(P);
                 return true;
               });

  switch (T.parse(argc, argv)) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  std::vector<codelint::ProgramLint> Lints;
  if (Targets.empty()) {
    Lints = codelint::lintSuite();
    if (!NoStackm)
      for (codelint::ProgramLint &L : codelint::lintStackExamples())
        Lints.push_back(std::move(L));
  } else {
    for (const programs::ProgramDef *P : Targets)
      Lints.push_back(codelint::lintProgram(*P));
  }

  unsigned NotSafe = 0;
  for (const codelint::ProgramLint &L : Lints) {
    if (!L.CompileOk) {
      std::fprintf(stderr, "%s", codelint::renderLint(L).c_str());
      return 2;
    }
    bool Safe = L.R.overall() == codelint::Verdict::Safe;
    if (!Safe)
      ++NotSafe;
    if (!Quiet || !Safe)
      std::printf("%s", codelint::renderLint(L).c_str());
    for (const codelint::Finding &F : L.R.Findings)
      std::fprintf(stderr, "[%s] %s\n", L.Name.c_str(), F.str().c_str());
  }

  if (NotSafe) {
    std::fprintf(stderr, "relc-codelint: %u program(s) not proved safe\n",
                 NotSafe);
    return 1;
  }
  if (!Quiet)
    std::printf("codelint: %zu program(s) proved safe\n", Lints.size());
  return 0;
}
