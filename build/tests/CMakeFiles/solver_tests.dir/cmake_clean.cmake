file(REMOVE_RECURSE
  "CMakeFiles/solver_tests.dir/solver/LinearTest.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/LinearTest.cpp.o.d"
  "solver_tests"
  "solver_tests.pdb"
  "solver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
