//===- bedrock/Ast.h - Bedrock2-like target language AST -------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The target language, modeled on Bedrock2 (Box 2 of the paper): an untyped,
// C-like imperative language. Program state is a flat byte-addressed memory,
// a map of local variables to machine words, and an I/O trace of externally
// observable events. Structured control flow only: sequencing, conditionals,
// while loops, calls. Stack allocation is a lexically scoped primitive.
// Inline tables are per-function constant byte arrays readable by expression.
//
// Words are 64-bit. Memory accesses come in 1/2/4/8-byte sizes, little
// endian, matching what the C backend emits.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_BEDROCK_AST_H
#define RELC_BEDROCK_AST_H

#include "support/Casting.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace relc {
namespace bedrock {

/// Machine word.
using Word = uint64_t;

/// Memory access widths, in bytes.
enum class AccessSize : uint8_t { Byte = 1, Two = 2, Four = 4, Eight = 8 };

/// Byte count of an access.
inline unsigned sizeBytes(AccessSize S) { return unsigned(S); }

/// Binary operators on words. Comparison operators yield 0 or 1.
enum class BinOp {
  Add,
  Sub,
  Mul,
  DivU, ///< Unsigned division; division by zero yields all-ones (like RISC-V).
  RemU, ///< Unsigned remainder; remainder by zero yields the dividend.
  And,
  Or,
  Xor,
  Shl,  ///< Left shift; shift amount taken modulo 64.
  LShr, ///< Logical right shift; amount modulo 64.
  AShr, ///< Arithmetic right shift; amount modulo 64.
  LtU,
  LtS,
  Eq,
  Ne
};

/// Operator spelling in the printed (bedrock-ish) syntax.
const char *binOpName(BinOp Op);

/// Evaluates \p Op on two words (the target language's word semantics; the
/// C backend must agree with this function exactly).
Word evalBinOp(BinOp Op, Word A, Word B);

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind { Literal, Var, Load, TableGet, Bin };

  explicit Expr(Kind K) : TheKind(K) {}
  virtual ~Expr() = default;

  Kind kind() const { return TheKind; }

  /// Pretty-prints in bedrock-ish concrete syntax.
  virtual std::string str() const = 0;

private:
  Kind TheKind;
};

using ExprPtr = std::shared_ptr<const Expr>;

class Literal : public Expr {
public:
  explicit Literal(Word Value) : Expr(Kind::Literal), Value(Value) {}

  Word value() const { return Value; }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Literal; }

private:
  Word Value;
};

class Var : public Expr {
public:
  explicit Var(std::string Name) : Expr(Kind::Var), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  std::string str() const override { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  std::string Name;
};

/// load<size>(Addr): reads size bytes little-endian, zero-extended to a word.
class Load : public Expr {
public:
  Load(AccessSize Size, ExprPtr Addr)
      : Expr(Kind::Load), Size(Size), Addr(std::move(Addr)) {}

  AccessSize size() const { return Size; }
  const Expr *addr() const { return Addr.get(); }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Load; }

private:
  AccessSize Size;
  ExprPtr Addr;
};

/// table<size>(Name, Index): reads entry Index from the named inline table
/// of the enclosing function. Out-of-bounds reads are runtime errors (rule
/// side conditions must rule them out before code is emitted).
class TableGet : public Expr {
public:
  TableGet(AccessSize Size, std::string Table, ExprPtr Index)
      : Expr(Kind::TableGet), Size(Size), Table(std::move(Table)),
        Index(std::move(Index)) {}

  AccessSize size() const { return Size; }
  const std::string &table() const { return Table; }
  const Expr *index() const { return Index.get(); }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::TableGet; }

private:
  AccessSize Size;
  std::string Table;
  ExprPtr Index;
};

class Bin : public Expr {
public:
  Bin(BinOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Bin), Op(Op), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  BinOp op() const { return Op; }
  const Expr *lhs() const { return Lhs.get(); }
  const Expr *rhs() const { return Rhs.get(); }
  std::string str() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Bin; }

private:
  BinOp Op;
  ExprPtr Lhs, Rhs;
};

/// Calls \p Fn for every Var node in \p E (with repetition, in evaluation
/// order). Used by the static analyzer's read-set computations.
void forEachVar(const Expr &E,
                const std::function<void(const std::string &)> &Fn);

/// Convenience constructors.
ExprPtr lit(Word Value);
ExprPtr var(std::string Name);
ExprPtr load(AccessSize Size, ExprPtr Addr);
ExprPtr tableGet(AccessSize Size, std::string Table, ExprPtr Index);
ExprPtr bin(BinOp Op, ExprPtr Lhs, ExprPtr Rhs);
ExprPtr add(ExprPtr L, ExprPtr R);
ExprPtr sub(ExprPtr L, ExprPtr R);
ExprPtr mul(ExprPtr L, ExprPtr R);

//===----------------------------------------------------------------------===//
// Commands (statements).
//===----------------------------------------------------------------------===//

class Cmd {
public:
  enum class Kind {
    Skip,
    Set,
    Unset,
    Store,
    Seq,
    If,
    While,
    Call,
    Stackalloc,
    Interact
  };

  explicit Cmd(Kind K) : TheKind(K) {}
  virtual ~Cmd() = default;

  Kind kind() const { return TheKind; }

  virtual std::string str(unsigned Indent = 0) const = 0;

  /// Number of statement nodes (used for the §4.3 statements/second metric).
  virtual unsigned countStmts() const { return 1; }

private:
  Kind TheKind;
};

using CmdPtr = std::shared_ptr<const Cmd>;

class Skip : public Cmd {
public:
  Skip() : Cmd(Kind::Skip) {}
  std::string str(unsigned Indent) const override;
  unsigned countStmts() const override { return 0; }
  static bool classof(const Cmd *C) { return C->kind() == Kind::Skip; }
};

/// x = e
class Set : public Cmd {
public:
  Set(std::string Name, ExprPtr Value)
      : Cmd(Kind::Set), Name(std::move(Name)), Value(std::move(Value)) {}

  const std::string &name() const { return Name; }
  const Expr *value() const { return Value.get(); }
  std::string str(unsigned Indent) const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Set; }

private:
  std::string Name;
  ExprPtr Value;
};

/// Removes a local from scope (Bedrock2's cmd.unset).
class Unset : public Cmd {
public:
  explicit Unset(std::string Name) : Cmd(Kind::Unset), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  std::string str(unsigned Indent) const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Unset; }

private:
  std::string Name;
};

/// store<size>(addr) = value
class Store : public Cmd {
public:
  Store(AccessSize Size, ExprPtr Addr, ExprPtr Value)
      : Cmd(Kind::Store), Size(Size), Addr(std::move(Addr)),
        Value(std::move(Value)) {}

  AccessSize size() const { return Size; }
  const Expr *addr() const { return Addr.get(); }
  const Expr *value() const { return Value.get(); }
  std::string str(unsigned Indent) const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Store; }

private:
  AccessSize Size;
  ExprPtr Addr, Value;
};

class Seq : public Cmd {
public:
  Seq(CmdPtr First, CmdPtr Second)
      : Cmd(Kind::Seq), First(std::move(First)), Second(std::move(Second)) {}

  const Cmd *first() const { return First.get(); }
  const Cmd *second() const { return Second.get(); }
  std::string str(unsigned Indent) const override;
  unsigned countStmts() const override {
    return First->countStmts() + Second->countStmts();
  }

  static bool classof(const Cmd *C) { return C->kind() == Kind::Seq; }

private:
  CmdPtr First, Second;
};

class If : public Cmd {
public:
  If(ExprPtr Cond, CmdPtr Then, CmdPtr Else)
      : Cmd(Kind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *cond() const { return Cond.get(); }
  const Cmd *thenCmd() const { return Then.get(); }
  const Cmd *elseCmd() const { return Else.get(); }
  std::string str(unsigned Indent) const override;
  unsigned countStmts() const override {
    return 1 + Then->countStmts() + Else->countStmts();
  }

  static bool classof(const Cmd *C) { return C->kind() == Kind::If; }

private:
  ExprPtr Cond;
  CmdPtr Then, Else;
};

class While : public Cmd {
public:
  While(ExprPtr Cond, CmdPtr Body)
      : Cmd(Kind::While), Cond(std::move(Cond)), Body(std::move(Body)) {}

  const Expr *cond() const { return Cond.get(); }
  const Cmd *body() const { return Body.get(); }
  std::string str(unsigned Indent) const override;
  unsigned countStmts() const override { return 1 + Body->countStmts(); }

  static bool classof(const Cmd *C) { return C->kind() == Kind::While; }

private:
  ExprPtr Cond;
  CmdPtr Body;
};

/// rets... = f(args...)
class Call : public Cmd {
public:
  Call(std::vector<std::string> Rets, std::string Callee,
       std::vector<ExprPtr> Args)
      : Cmd(Kind::Call), Rets(std::move(Rets)), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::vector<std::string> &rets() const { return Rets; }
  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  std::string str(unsigned Indent) const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Call; }

private:
  std::vector<std::string> Rets;
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// stackalloc x[n] { body }: binds x to the address of an n-byte block of
/// scratch memory whose lifetime is the body. Initial contents are
/// unconstrained (the interpreter fills them from a nondeterminism oracle).
class Stackalloc : public Cmd {
public:
  Stackalloc(std::string Name, Word NumBytes, CmdPtr Body)
      : Cmd(Kind::Stackalloc), Name(std::move(Name)), NumBytes(NumBytes),
        Body(std::move(Body)) {}

  const std::string &name() const { return Name; }
  Word numBytes() const { return NumBytes; }
  const Cmd *body() const { return Body.get(); }
  std::string str(unsigned Indent) const override;
  unsigned countStmts() const override { return 1 + Body->countStmts(); }

  static bool classof(const Cmd *C) { return C->kind() == Kind::Stackalloc; }

private:
  std::string Name;
  Word NumBytes;
  CmdPtr Body;
};

/// rets... = external!name(args...): an observable interaction with the
/// environment. Appends an event to the trace; results are chosen by the
/// environment (the interpreter's ExtHandler).
class Interact : public Cmd {
public:
  Interact(std::vector<std::string> Rets, std::string Action,
           std::vector<ExprPtr> Args)
      : Cmd(Kind::Interact), Rets(std::move(Rets)), Action(std::move(Action)),
        Args(std::move(Args)) {}

  const std::vector<std::string> &rets() const { return Rets; }
  const std::string &action() const { return Action; }
  const std::vector<ExprPtr> &args() const { return Args; }
  std::string str(unsigned Indent) const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Interact; }

private:
  std::vector<std::string> Rets;
  std::string Action;
  std::vector<ExprPtr> Args;
};

/// Convenience constructors.
CmdPtr skip();
CmdPtr set(std::string Name, ExprPtr Value);
CmdPtr unset(std::string Name);
CmdPtr store(AccessSize Size, ExprPtr Addr, ExprPtr Value);
CmdPtr seq(CmdPtr First, CmdPtr Second);
/// Right-nested sequence of all commands (skip for the empty list).
CmdPtr seqAll(std::vector<CmdPtr> Cmds);
CmdPtr ifThenElse(ExprPtr Cond, CmdPtr Then, CmdPtr Else);
CmdPtr whileLoop(ExprPtr Cond, CmdPtr Body);
CmdPtr call(std::vector<std::string> Rets, std::string Callee,
            std::vector<ExprPtr> Args);
CmdPtr stackalloc(std::string Name, Word NumBytes, CmdPtr Body);
CmdPtr interact(std::vector<std::string> Rets, std::string Action,
                std::vector<ExprPtr> Args);

//===----------------------------------------------------------------------===//
// Functions and modules.
//===----------------------------------------------------------------------===//

/// An inline table: a named constant array local to a function.
struct InlineTable {
  std::string Name;
  AccessSize EltSize = AccessSize::Byte;
  std::vector<Word> Elements; ///< Each entry fits in EltSize bytes.
};

struct Function {
  std::string Name;
  std::vector<std::string> Args;
  std::vector<std::string> Rets;
  std::vector<InlineTable> Tables;
  CmdPtr Body;

  std::string str() const;
  unsigned countStmts() const { return Body ? Body->countStmts() : 0; }

  const InlineTable *findTable(const std::string &TableName) const;
};

/// A compilation unit: an environment of functions (σ in the judgment).
struct Module {
  std::vector<Function> Functions;

  const Function *find(const std::string &Name) const;
  std::string str() const;
};

} // namespace bedrock
} // namespace relc

#endif // RELC_BEDROCK_AST_H
