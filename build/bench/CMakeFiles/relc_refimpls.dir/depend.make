# Empty dependencies file for relc_refimpls.
# This may be replaced when dependencies are built.
