//===- analysis/Analysis.h - Static verifier for generated code -*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The analyzer entry points: run the dataflow domains over a compiled
// Bedrock2 function and report defects. Four checkers:
//
//   - Uninit: a local may be read before every path to the read defines it.
//   - Bounds: a load/store/table access whose offset is not *provably*
//     within the separation-logic clause (region) it addresses, judged by
//     the same linear solver the compiler uses for side conditions. This
//     is the static analogue of the requires clause: any access the
//     analyzer cannot justify against the ABI frame is an error even if
//     every sampled differential-test vector happens to stay in bounds.
//   - DeadStore: a Set whose value can never be observed (warning).
//   - Unreachable: statements no feasible path reaches (warning).
//
// Uninit and Bounds findings (and analysis non-convergence) are errors —
// the certification pipeline fails on them; DeadStore and Unreachable are
// warnings surfaced in reports and by relc-lint.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_ANALYSIS_ANALYSIS_H
#define RELC_ANALYSIS_ANALYSIS_H

#include "analysis/Domains.h"
#include "support/Budget.h"

#include <string>
#include <vector>

namespace relc {
namespace analysis {

struct Diagnostic {
  enum class Checker { Uninit, Bounds, DeadStore, Unreachable, Convergence };

  Checker C = Checker::Uninit;
  std::string Fn;      ///< Function name.
  std::string Path;    ///< Statement path ("body.1.then.0").
  std::string Stmt;    ///< Offending statement / expression, printed.
  std::string Message; ///< What is wrong and why.
  bool IsError = true; ///< Errors fail certification; warnings do not.

  std::string str() const;
};

const char *checkerName(Diagnostic::Checker C);

struct AnalysisReport {
  std::string Fn;
  std::vector<Diagnostic> Diags;

  unsigned NumBlocks = 0;
  unsigned NumStmts = 0;
  unsigned SymIterations = 0; ///< Symbolic-domain fixpoint iterations.

  /// A guard::Budget ran out mid-fixpoint. The report then carries a
  /// Convergence *error* naming the budget — a refusal to certify, which
  /// the pipeline surfaces as a Degraded (never cached) layer outcome.
  bool BudgetExhausted = false;

  bool hasErrors() const;
  unsigned numErrors() const;
  unsigned numWarnings() const;

  /// Full human-readable report (one line per diagnostic plus a summary).
  std::string str() const;
};

/// Runs all domains and checkers on \p Fn against its ABI digest.
/// \p Budget, when non-null, bounds the dataflow fixpoints and the solver
/// queries cooperatively; exhaustion yields a budget-naming Convergence
/// error (see AnalysisReport::BudgetExhausted).
AnalysisReport analyzeFunction(const bedrock::Function &Fn,
                               const AbiInfo &Abi,
                               const guard::Budget *Budget = nullptr);

/// Convenience wrapper: digest the ABI from the program's spec/model/hints
/// (mirroring what the compiler assumed), then analyze.
AnalysisReport analyzeProgram(const bedrock::Function &Fn,
                              const sep::FnSpec &Spec,
                              const ir::SourceFn &Src,
                              const EntryFactList &Hints = {},
                              const guard::Budget *Budget = nullptr);

} // namespace analysis
} // namespace relc

#endif // RELC_ANALYSIS_ANALYSIS_H
