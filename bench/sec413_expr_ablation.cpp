//===- bench/sec413_expr_ablation.cpp - §4.1.3: expression compilers -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The §4.1.3 case study, as an ablation: Rupicola's expression compiler
// was first built reflectively (reify to an AST, run a closed compiler —
// 450 lines, painful to extend) and then rebuilt relationally (down to
// ~250 lines, then grown back to ~400 *with* support for casts, booleans,
// multiple numeric types; overall compile-time impact < 30%). This bench
// reports, for this reproduction:
//
//   - lines of code of both designs, measured from the marked sections;
//   - corpus coverage: which fraction of a mixed expression corpus each
//     design can compile at all (the reflective grammar is closed; the
//     relational rules cover casts, selects, array and table reads);
//   - compilation throughput of both on the shared (reifiable) corpus,
//     with the relational/reflective time ratio next to the paper's
//     "<30% overall" note.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "core/Compiler.h"
#include "ir/Build.h"
#include "reflect/ReflectExpr.h"
#include "support/SectionCount.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace relc;
using namespace relc_bench;
using namespace relc::ir;

namespace {

/// A fresh compilation context over three scalar word parameters.
struct Ablation {
  ir::SourceFn Fn;
  sep::FnSpec Spec{"ablation"};
  core::RuleSet Rules;

  Ablation() {
    FnBuilder FB("ablation_model", Monad::Pure);
    FB.wordParam("x").wordParam("y").wordParam("z");
    FB.table("tab", EltKind::U8, std::vector<uint64_t>(256, 7));
    ProgBuilder Body;
    Body.let("r", v("x"));
    Fn = std::move(FB).done(std::move(Body).ret({"r"}));
    Spec.scalarArg("x").scalarArg("y").scalarArg("z").retScalar("r");
    core::registerStandardRules(Rules);
  }

  /// Compiles one expression relationally in a fresh context.
  Status compileRelational(const ir::Expr &E) {
    core::CompileCtx Ctx(Fn, Spec, Rules);
    for (const char *Name : {"x", "y", "z"}) {
      Ctx.State.Locals[Name] = sep::TargetSlot::scalar(
          sep::SymVal::sym(Name), ir::Ty::Word);
      Ctx.State.Facts.addGe0(solver::ls(Name), "param");
      Ctx.State.Facts.addLe(solver::ls(Name), solver::lc(255),
                            "corpus params are byte-ranged");
    }
    core::DerivNode D("root", "ablation");
    Result<core::CompiledExpr> R = Ctx.exprs().compile(E, D);
    if (!R)
      return R.takeError();
    return Status::success();
  }
};

std::vector<ExprPtr> reifiableCorpus() {
  std::vector<ExprPtr> Out;
  Out.push_back(addw(v("x"), mulw(v("y"), cw(3))));
  Out.push_back(xorw(shrw(v("x"), cw(8)), andw(v("y"), cw(0xff))));
  Out.push_back(orw(shlw(v("x"), cw(5)), shrw(v("z"), cw(27))));
  Out.push_back(mulw(xorw(v("x"), cw(0x9e3779b9)), cw(0x85ebca6b)));
  Out.push_back(subw(mulw(v("x"), v("y")), binop(WordOp::RemU, v("z"),
                                                 cw(97))));
  Out.push_back(binop(WordOp::DivU, addw(v("x"), v("y")), cw(16)));
  // Deep nest.
  ExprPtr E = v("x");
  for (int I = 0; I < 24; ++I)
    E = addw(mulw(E, cw(33)), v(I % 2 ? "y" : "z"));
  Out.push_back(E);
  return Out;
}

std::vector<ExprPtr> extendedCorpus() {
  std::vector<ExprPtr> Out;
  // Casts, booleans, selects, inline tables: the constructs the paper's
  // rebuilt relational compiler gained.
  Out.push_back(bool2w(ltu(v("x"), v("y"))));
  Out.push_back(b2w(w2b(addw(v("x"), cw(1)))));
  Out.push_back(select(ltu(v("x"), cw(10)), v("y"), v("z")));
  Out.push_back(b2w(tget("tab", andw(v("x"), cw(0xff)))));
  Out.push_back(select(eqw(v("x"), v("y")), addw(v("z"), cw(1)),
                       subw(v("z"), cw(0))));
  return Out;
}

} // namespace

int main() {
  std::printf("=== §4.1.3: reflective vs relational expression compiler "
              "===\n");

  // Lines of code, from the marked sections.
  Result<unsigned> ReflLoc =
      countSectionLines("src/reflect/ReflectExpr.cpp",
                        "reflective-expr-compiler");
  unsigned RelLoc = 0;
  for (const char *Sec :
       {"expr-lemma-const", "expr-lemma-var", "expr-lemma-binop",
        "expr-lemma-cast", "expr-lemma-select", "expr-lemma-arrayget",
        "expr-lemma-inline-table"}) {
    Result<unsigned> N =
        countSectionLines("src/core/ExprCompile.cpp", Sec);
    if (N)
      RelLoc += *N;
  }
  std::printf("lines of code: reflective %u (closed grammar), relational "
              "%u across 7 independent rules (paper: 450 -> ~250 -> ~400 "
              "with more features)\n",
              ReflLoc ? *ReflLoc : 0, RelLoc);

  // Coverage.
  Ablation A;
  std::vector<ExprPtr> Shared = reifiableCorpus();
  std::vector<ExprPtr> Extended = extendedCorpus();
  unsigned ReflOk = 0, RelOk = 0;
  for (const ExprPtr &E : Shared) {
    if (reflect::compileExprReflective(*E))
      ++ReflOk;
    if (A.compileRelational(*E))
      ++RelOk;
  }
  unsigned ReflExt = 0, RelExt = 0;
  for (const ExprPtr &E : Extended) {
    if (reflect::compileExprReflective(*E))
      ++ReflExt;
    if (A.compileRelational(*E))
      ++RelExt;
  }
  std::printf("coverage: base corpus reflective %u/%zu, relational %u/%zu; "
              "extended corpus (casts/selects/tables) reflective %u/%zu, "
              "relational %u/%zu\n",
              ReflOk, Shared.size(), RelOk, Shared.size(), ReflExt,
              Extended.size(), RelExt, Extended.size());

  // Throughput on the shared corpus.
  const unsigned Reps = 300;
  auto T0 = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Reps; ++I)
    for (const ExprPtr &E : Shared)
      benchmark::DoNotOptimize(reflect::compileExprReflective(*E));
  auto T1 = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Reps; ++I)
    for (const ExprPtr &E : Shared)
      benchmark::DoNotOptimize(A.compileRelational(*E));
  auto T2 = std::chrono::steady_clock::now();

  double ReflMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  double RelMs = std::chrono::duration<double, std::milli>(T2 - T1).count();
  std::printf("throughput on the shared corpus (%u reps): reflective "
              "%.2f ms, relational %.2f ms, ratio %.2fx (paper: overall "
              "compile-time impact of the switch < 30%%)\n",
              Reps, ReflMs, RelMs, ReflMs > 0 ? RelMs / ReflMs : 0.0);
  return 0;
}
