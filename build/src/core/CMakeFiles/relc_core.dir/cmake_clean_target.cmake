file(REMOVE_RECURSE
  "librelc_core.a"
)
