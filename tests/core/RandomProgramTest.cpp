//===- tests/core/RandomProgramTest.cpp - Property-based certification -----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The strongest property this reproduction can test: for *random* models
// drawn from a supported fragment, relational compilation either fails
// with an unsolved goal or produces a target program whose behaviour the
// differential certifier cannot distinguish from the model's. The
// fragment below always compiles, so every sample must certify.
//
//===----------------------------------------------------------------------===//

#include "CoreTestUtil.h"

#include "support/Rng.h"

using namespace relc;
using namespace relc::ir;
using namespace relc::coretest;

namespace {

/// Random pure scalar expression over word variables in \p Scope.
ExprPtr randomWordExpr(Rng &R, const std::vector<std::string> &Scope,
                       unsigned Depth) {
  if (Depth == 0 || R.below(4) == 0) {
    if (!Scope.empty() && R.nextBool())
      return v(Scope[R.below(Scope.size())]);
    return cw(R.next() >> (R.below(60))); // Mixed magnitudes.
  }
  switch (R.below(9)) {
  case 0:
    return addw(randomWordExpr(R, Scope, Depth - 1),
                randomWordExpr(R, Scope, Depth - 1));
  case 1:
    return subw(randomWordExpr(R, Scope, Depth - 1),
                randomWordExpr(R, Scope, Depth - 1));
  case 2:
    return mulw(randomWordExpr(R, Scope, Depth - 1),
                randomWordExpr(R, Scope, Depth - 1));
  case 3:
    return andw(randomWordExpr(R, Scope, Depth - 1),
                randomWordExpr(R, Scope, Depth - 1));
  case 4:
    return orw(randomWordExpr(R, Scope, Depth - 1),
               randomWordExpr(R, Scope, Depth - 1));
  case 5:
    return xorw(randomWordExpr(R, Scope, Depth - 1),
                randomWordExpr(R, Scope, Depth - 1));
  case 6:
    return shlw(randomWordExpr(R, Scope, Depth - 1), cw(R.below(64)));
  case 7:
    return shrw(randomWordExpr(R, Scope, Depth - 1), cw(R.below(64)));
  default:
    return select(ltu(randomWordExpr(R, Scope, Depth - 1),
                      randomWordExpr(R, Scope, Depth - 1)),
                  randomWordExpr(R, Scope, Depth - 1),
                  randomWordExpr(R, Scope, Depth - 1));
  }
}

/// A random model: a chain of pure lets over two word parameters,
/// optionally with a counted accumulator loop in the middle.
SourceFn randomModel(Rng &R, bool WithLoop) {
  FnBuilder FB("rand_model", Monad::Pure);
  FB.wordParam("p0").wordParam("p1");
  std::vector<std::string> Scope = {"p0", "p1"};
  ProgBuilder B;
  unsigned NumLets = 1 + unsigned(R.below(5));
  for (unsigned I = 0; I < NumLets; ++I) {
    std::string Name = "v" + std::to_string(I);
    B.let(Name, randomWordExpr(R, Scope, 3));
    Scope.push_back(Name);
  }
  if (WithLoop) {
    ProgBuilder Body;
    Body.let("acc", randomWordExpr(R, {"acc", "it", Scope.back()}, 2));
    B.letMulti({"acc"},
               mkRange("it", cw(0), cw(R.below(20)),
                       {acc("acc", randomWordExpr(R, Scope, 2))},
                       std::move(Body).ret({"acc"})));
    Scope.push_back("acc");
  }
  B.let("out", randomWordExpr(R, Scope, 2));
  return std::move(FB).done(std::move(B).ret({"out"}));
}

class RandomProgramProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramProperty, StraightLineModelsCertify) {
  Rng R(GetParam() * 0x9e3779b9ull + 17);
  for (unsigned Trial = 0; Trial < 10; ++Trial) {
    SourceFn Fn = randomModel(R, /*WithLoop=*/false);
    sep::FnSpec Spec("rand_fn");
    Spec.scalarArg("p0").scalarArg("p1").retScalar("out");
    Status S = compileAndCertify(Fn, Spec);
    ASSERT_TRUE(bool(S)) << "seed " << GetParam() << " trial " << Trial
                         << ":\n"
                         << S.error().str() << "\n"
                         << Fn.str();
  }
}

TEST_P(RandomProgramProperty, LoopModelsCertify) {
  Rng R(GetParam() * 0x51ed27ull + 3);
  for (unsigned Trial = 0; Trial < 5; ++Trial) {
    SourceFn Fn = randomModel(R, /*WithLoop=*/true);
    sep::FnSpec Spec("rand_fn");
    Spec.scalarArg("p0").scalarArg("p1").retScalar("out");
    Status S = compileAndCertify(Fn, Spec);
    ASSERT_TRUE(bool(S)) << "seed " << GetParam() << " trial " << Trial
                         << ":\n"
                         << S.error().str() << "\n"
                         << Fn.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range(0u, 12u));

/// Random models over a byte array: a shuffle of in-place maps, bounded
/// puts, folds, and early-exit folds — the in-place fragment. Every sample
/// must certify (in-place contents, read-only frames, scalar results).
SourceFn randomArrayModel(Rng &R) {
  FnBuilder FB("rand_arr", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  std::vector<std::string> Scalars = {"len"};
  unsigned Steps = 2 + unsigned(R.below(4));
  for (unsigned I = 0; I < Steps; ++I) {
    switch (R.below(4)) {
    case 0: { // In-place map with a random byte->byte body.
      ExprPtr Bw = b2w(v("elt"));
      ExprPtr Body;
      switch (R.below(3)) {
      case 0:
        Body = w2b(xorw(Bw, cw(R.nextByte())));
        break;
      case 1:
        Body = w2b(andw(addw(Bw, cw(R.nextByte())), cw(0xff)));
        break;
      default:
        Body = w2b(select(ltu(Bw, cw(R.nextByte())), andw(Bw, cw(0x7f)),
                          Bw));
        break;
      }
      B.let("s", mkMap("s", "elt", Body));
      break;
    }
    case 1: { // Bounded put under a length guard.
      uint64_t Idx = R.below(8);
      ProgBuilder Then;
      Then.let("s", mkPut("s", cw(Idx), cb(R.nextByte())));
      ProgBuilder Else;
      B.letMulti({"s"}, mkIf(ltu(cw(Idx), v("len")),
                             std::move(Then).ret({"s"}),
                             std::move(Else).ret({"s"})));
      break;
    }
    case 2: { // Fold into a fresh scalar.
      std::string Name = "f" + std::to_string(I);
      B.let(Name, mkFold("s", Name, "elt", cw(R.next() & 0xffff),
                         addw(mulw(v(Name), cw(31)), b2w(v("elt")))));
      Scalars.push_back(Name);
      break;
    }
    default: { // Early-exit fold.
      std::string Name = "g" + std::to_string(I);
      B.let(Name, mkFoldBreak("s", Name, "elt", cw(0),
                              addw(v(Name), b2w(v("elt"))),
                              ltu(cw(200 + R.below(4000)), v(Name))));
      Scalars.push_back(Name);
      break;
    }
    }
  }
  // Combine every scalar into one word result.
  ExprPtr Out = v(Scalars[0]);
  for (size_t I = 1; I < Scalars.size(); ++I)
    Out = xorw(mulw(Out, cw(0x9e3779b9)), v(Scalars[I]));
  B.let("out", Out);
  return std::move(FB).done(std::move(B).ret({"s", "out"}));
}

class RandomArrayProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomArrayProperty, InPlaceModelsCertify) {
  Rng R(GetParam() * 0xc0ffee11ull + 5);
  for (unsigned Trial = 0; Trial < 4; ++Trial) {
    SourceFn Fn = randomArrayModel(R);
    sep::FnSpec Spec("rand_arr_fn");
    Spec.arrayArg("s").lenArg("len", "s").retInPlace("s").retScalar("out");
    Status S = compileAndCertify(Fn, Spec);
    ASSERT_TRUE(bool(S)) << "seed " << GetParam() << " trial " << Trial
                         << ":\n" << S.error().str() << "\n" << Fn.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArrayProperty,
                         ::testing::Range(0u, 10u));

} // namespace
