//===- tests/cert/CertIoTest.cpp - Certificate serialization roundtrip -----===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// cert::Writer and cert::Reader against each other: a v2 certificate
// survives a write/parse roundtrip field-for-field; legacy v1 files still
// parse (without key or witness); malformed text and future schema
// versions are rejected with the right named reason.
//
//===----------------------------------------------------------------------===//

#include "cert/Reader.h"
#include "cert/Writer.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

cert::Certificate sampleCert() {
  cert::Certificate C;
  C.Function = "crc32";
  C.Key = {0x1111222233334444ull, 0x5555666677778888ull, 0x99990000aaaabbbbull};
  C.Verdict = "proved";
  C.Reason = "";
  C.NumTerms = 321;

  cert::LoopRec L;
  L.Ordinal = 0;
  L.Binding = "acc";
  L.Path = "2";
  L.FoldHash = 0xdeadbeefcafef00dull;
  L.Carried = 2;
  L.Regions = 1;
  L.WitnessLocals = {"acc", "i"};
  L.WitnessRegions = {"out"};
  L.TargetPath = "3";
  C.Loops.push_back(L);

  C.Bindings.push_back({"0", "x", 0x0102030405060708ull});
  C.Bindings.push_back({"1.then.0", "y,z", 0x1020304050607080ull});

  cert::OutputRec O;
  O.Name = "ret";
  O.Kind = "scalar";
  O.SrcHash = O.TgtHash = 0xfeedface12345678ull;
  O.Matched = true;
  O.SourceBinding = "4";
  O.TargetPath = "7";
  C.Outputs.push_back(O);
  return C;
}

TEST(CertIoTest, WriteParseRoundtrip) {
  cert::Certificate C = sampleCert();
  std::string Text = cert::Writer::write(C);

  cert::ReadError Err;
  std::optional<cert::Certificate> R = cert::Reader::parse(Text, &Err);
  ASSERT_TRUE(R.has_value()) << Err.Detail;

  EXPECT_EQ(R->SchemaVersion, cert::kSchemaVersion);
  EXPECT_EQ(R->Producer, cert::kProducer);
  EXPECT_EQ(R->Function, "crc32");
  EXPECT_TRUE(R->Key == C.Key);
  EXPECT_EQ(R->Verdict, "proved");
  EXPECT_TRUE(R->proved());
  EXPECT_EQ(R->NumTerms, 321u);

  ASSERT_EQ(R->Loops.size(), 1u);
  EXPECT_EQ(R->Loops[0].Binding, "acc");
  EXPECT_EQ(R->Loops[0].Path, "2");
  EXPECT_EQ(R->Loops[0].FoldHash, 0xdeadbeefcafef00dull);
  EXPECT_EQ(R->Loops[0].Carried, 2u);
  EXPECT_EQ(R->Loops[0].Regions, 1u);
  EXPECT_EQ(R->Loops[0].WitnessLocals, C.Loops[0].WitnessLocals);
  EXPECT_EQ(R->Loops[0].WitnessRegions, C.Loops[0].WitnessRegions);
  EXPECT_EQ(R->Loops[0].TargetPath, "3");

  ASSERT_EQ(R->Bindings.size(), 2u);
  EXPECT_EQ(R->Bindings[1].Path, "1.then.0");
  EXPECT_EQ(R->Bindings[1].Name, "y,z");
  EXPECT_EQ(R->Bindings[1].Hash, 0x1020304050607080ull);

  ASSERT_EQ(R->Outputs.size(), 1u);
  EXPECT_EQ(R->Outputs[0].Name, "ret");
  EXPECT_EQ(R->Outputs[0].Kind, "scalar");
  EXPECT_TRUE(R->Outputs[0].Matched);
  EXPECT_EQ(R->Outputs[0].SrcHash, 0xfeedface12345678ull);
  EXPECT_EQ(R->Outputs[0].SourceBinding, "4");
  EXPECT_EQ(R->Outputs[0].TargetPath, "7");

  // Reserialization is byte-identical: parse is the inverse of write.
  EXPECT_EQ(cert::Writer::write(*R), Text);
}

TEST(CertIoTest, CodelintSectionRoundtrips) {
  cert::Certificate C = sampleCert();
  cert::CodelintRec L;
  L.Version = 1;
  L.Mem = "safe";
  L.Stack = "safe";
  L.Steps = "unknown";
  L.Accesses = 3;
  L.LocalsBytes = 40;
  L.ScratchBytes = 16;
  L.OperandDepth = 0;
  L.StepBound = 0x12345678abcull;
  C.Codelint = L;

  std::string Text = cert::Writer::write(C);
  cert::ReadError Err;
  std::optional<cert::Certificate> R = cert::Reader::parse(Text, &Err);
  ASSERT_TRUE(R.has_value()) << Err.Detail;
  ASSERT_TRUE(R->Codelint.has_value());
  EXPECT_TRUE(*R->Codelint == L);
  EXPECT_EQ(cert::Writer::write(*R), Text);

  // The section is genuinely optional: without it, nothing is emitted and
  // nothing is parsed back.
  cert::Certificate Plain = sampleCert();
  std::optional<cert::Certificate> RP =
      cert::Reader::parse(cert::Writer::write(Plain));
  ASSERT_TRUE(RP.has_value());
  EXPECT_FALSE(RP->Codelint.has_value());

  // Malformed section shapes are malformed, not silently dropped.
  std::string Bad = Text;
  size_t Pos = Bad.find("\"codelint\": {");
  ASSERT_NE(Pos, std::string::npos);
  Bad.replace(Pos, std::string("\"codelint\": {").size(), "\"codelint\": [");
  cert::ReadError BadErr;
  EXPECT_FALSE(cert::Reader::parse(Bad, &BadErr).has_value());
  EXPECT_EQ(cert::rejectName(BadErr.Why), std::string("malformed-certificate"));
}

TEST(CertIoTest, WriterIsCanonical) {
  cert::Certificate C = sampleCert();
  EXPECT_EQ(cert::Writer::write(C), cert::Writer::write(C));
  // The fixed key order puts identity before traces.
  std::string Text = cert::Writer::write(C);
  EXPECT_LT(Text.find("\"schema_version\""), Text.find("\"producer\""));
  EXPECT_LT(Text.find("\"producer\""), Text.find("\"model_hash\""));
  EXPECT_LT(Text.find("\"verdict\""), Text.find("\"loops\""));
  EXPECT_LT(Text.find("\"loops\""), Text.find("\"bindings\""));
  EXPECT_LT(Text.find("\"bindings\""), Text.find("\"outputs\""));
}

TEST(CertIoTest, EscapedStringsRoundtrip) {
  cert::Certificate C = sampleCert();
  C.Reason = "line\nbreak \"quoted\" back\\slash";
  C.Verdict = "inconclusive";
  std::optional<cert::Certificate> R =
      cert::Reader::parse(cert::Writer::write(C));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Reason, C.Reason);
  EXPECT_FALSE(R->proved());
}

TEST(CertIoTest, LegacyV1Parses) {
  std::string V1 = R"({
  "format": "relc-tv-certificate-v1",
  "function": "fnv1a",
  "verdict": "proved",
  "reason": "",
  "num_terms": 12,
  "loops": [
    {"ordinal": 0, "binding": "h", "fold_hash": "0x00000000000000aa",
     "carried": 1, "regions": 0}
  ],
  "bindings": [
    {"path": "0", "name": "h", "hash": "0x00000000000000bb"}
  ],
  "outputs": [
    {"name": "ret", "kind": "scalar", "matched": true,
     "src_hash": "0x00000000000000cc", "tgt_hash": "0x00000000000000cc",
     "source_binding": "1", "target_path": "2"}
  ]
})";
  cert::ReadError Err;
  std::optional<cert::Certificate> R = cert::Reader::parse(V1, &Err);
  ASSERT_TRUE(R.has_value()) << Err.Detail;
  EXPECT_EQ(R->SchemaVersion, 1u);
  EXPECT_EQ(R->Function, "fnv1a");
  // v1 carries no content hashes: the key stays zero (unverifiable).
  EXPECT_TRUE(R->Key == cert::ContentKey{});
  ASSERT_EQ(R->Loops.size(), 1u);
  EXPECT_EQ(R->Loops[0].FoldHash, 0xaaull);
  EXPECT_TRUE(R->Loops[0].WitnessLocals.empty());
  ASSERT_EQ(R->Bindings.size(), 1u);
  EXPECT_EQ(R->Bindings[0].Hash, 0xbbull);
}

TEST(CertIoTest, FutureSchemaVersionIsNamedDistinctly) {
  std::string Future = "{\"schema_version\": 99, \"producer\": \"x\"}";
  cert::ReadError Err;
  EXPECT_FALSE(cert::Reader::parse(Future, &Err).has_value());
  EXPECT_EQ(Err.Why, cert::Reject::UnknownSchemaVersion);
  EXPECT_NE(Err.Detail.find("99"), std::string::npos);
}

TEST(CertIoTest, MalformedInputsAreMalformed) {
  const char *Cases[] = {
      "",                                  // empty
      "not json",                          // garbage
      "[1, 2, 3]",                         // not an object
      "{\"schema_version\": 2",            // truncated
      "{\"schema_version\": 2} trailing",  // trailing garbage
      "{\"unrelated\": true}",             // no version, no format tag
      "{\"schema_version\": \"2\"}",       // version not a number
  };
  for (const char *Text : Cases) {
    cert::ReadError Err;
    EXPECT_FALSE(cert::Reader::parse(Text, &Err).has_value()) << Text;
    EXPECT_EQ(Err.Why, cert::Reject::MalformedCertificate) << Text;
  }
}

TEST(CertIoTest, TruncatedWriterOutputIsMalformed) {
  std::string Text = cert::Writer::write(sampleCert());
  // Chop mid-structure: every prefix that is not the whole file fails to
  // parse (spot-check a few cut points).
  for (size_t Cut : {Text.size() / 4, Text.size() / 2, Text.size() - 3}) {
    cert::ReadError Err;
    EXPECT_FALSE(
        cert::Reader::parse(Text.substr(0, Cut), &Err).has_value());
    EXPECT_EQ(Err.Why, cert::Reject::MalformedCertificate);
  }
}

TEST(CertIoTest, MissingFileIsMissingCertificate) {
  cert::ReadError Err;
  EXPECT_FALSE(
      cert::Reader::readFile("/nonexistent/dir/x.tv.json", &Err).has_value());
  EXPECT_EQ(Err.Why, cert::Reject::MissingCertificate);
}

TEST(CertIoTest, RejectNamesAreStableKebabCase) {
  EXPECT_STREQ(cert::rejectName(cert::Reject::MissingCertificate),
               "missing-certificate");
  EXPECT_STREQ(cert::rejectName(cert::Reject::UnknownSchemaVersion),
               "unknown-schema-version");
  EXPECT_STREQ(cert::rejectName(cert::Reject::UnverifiableV1),
               "unverifiable-v1");
  EXPECT_STREQ(cert::rejectName(cert::Reject::StaleModel), "stale-model");
  EXPECT_STREQ(cert::rejectName(cert::Reject::LoopWitnessMismatch),
               "loop-witness-mismatch");
  EXPECT_STREQ(cert::rejectName(cert::Reject::RederivationFailed),
               "rederivation-failed");
}

} // namespace
