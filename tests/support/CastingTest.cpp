//===- tests/support/CastingTest.cpp ---------------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"

#include <gtest/gtest.h>

#include <memory>

using namespace relc;

namespace {

struct Shape {
  enum class Kind { Circle, Square };
  explicit Shape(Kind K) : TheKind(K) {}
  virtual ~Shape() = default;
  Kind kind() const { return TheKind; }

private:
  Kind TheKind;
};

struct Circle : Shape {
  Circle() : Shape(Kind::Circle) {}
  static bool classof(const Shape *S) { return S->kind() == Kind::Circle; }
  int Radius = 3;
};

struct Square : Shape {
  Square() : Shape(Kind::Square) {}
  static bool classof(const Shape *S) { return S->kind() == Kind::Square; }
};

TEST(CastingTest, IsaDiscriminates) {
  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(isa<Circle>(S));
  EXPECT_FALSE(isa<Square>(S));
}

TEST(CastingTest, CastPreservesIdentityAndMembers) {
  Circle C;
  Shape *S = &C;
  Circle *Back = cast<Circle>(S);
  EXPECT_EQ(Back, &C);
  EXPECT_EQ(Back->Radius, 3);
}

TEST(CastingTest, DynCastReturnsNullOnMismatch) {
  Square Sq;
  Shape *S = &Sq;
  EXPECT_EQ(dyn_cast<Circle>(S), nullptr);
  EXPECT_NE(dyn_cast<Square>(S), nullptr);
}

TEST(CastingTest, ConstVariantsWork) {
  const Circle C;
  const Shape *S = &C;
  EXPECT_TRUE(isa<Circle>(S));
  EXPECT_EQ(cast<Circle>(S), &C);
  EXPECT_EQ(dyn_cast<Square>(S), nullptr);
}

TEST(CastingTest, DynCastOrNullToleratesNull) {
  Shape *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<Circle>(Null), nullptr);
  Circle C;
  Shape *S = &C;
  EXPECT_NE(dyn_cast_or_null<Circle>(S), nullptr);
}

} // namespace
