file(REMOVE_RECURSE
  "CMakeFiles/sep_tests.dir/sep/SpecTest.cpp.o"
  "CMakeFiles/sep_tests.dir/sep/SpecTest.cpp.o.d"
  "CMakeFiles/sep_tests.dir/sep/StateTest.cpp.o"
  "CMakeFiles/sep_tests.dir/sep/StateTest.cpp.o.d"
  "sep_tests"
  "sep_tests.pdb"
  "sep_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
