//===- core/rules/RulesCommon.h - Shared rule helpers -----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CORE_RULES_RULESCOMMON_H
#define RELC_CORE_RULES_RULESCOMMON_H

#include "core/Compiler.h"
#include "core/Invariant.h"

#include <set>

namespace relc {
namespace core {

/// A fresh scalar symbol with its type-bound structural facts.
sep::SymVal freshTypedSym(sep::CompState &St, const std::string &Hint,
                          ir::Ty T);

/// Saves and restores the shape of the symbolic state around loop bodies
/// and conditional branches (facts are monotone and never rolled back).
struct StateSnapshot {
  std::map<std::string, sep::TargetSlot> Locals;
  std::vector<sep::HeapClause> Heap;

  static StateSnapshot take(const sep::CompState &St) {
    return {St.Locals, St.Heap};
  }
  void restore(sep::CompState &St) const {
    St.Locals = Locals;
    St.Heap = Heap;
  }
};

/// Checks that \p B binds exactly one name and returns it.
Result<std::string> singleName(const ir::Binding &B);

/// Builds the end handler for a loop body or conditional branch: the body's
/// returned names (\p Returns) must realize the \p Targets in order
/// (pointer targets must still be the clause payload of the same name;
/// scalar targets get a rebinding assignment when the returned name
/// differs). The emitted command sequence finishes the iteration.
CompileCtx::EndHandler accEndHandler(std::vector<LoopTarget> Targets,
                                     std::vector<std::string> Returns);

/// Emits assignments initializing scalar accumulator locals from their
/// initializer expressions (pointer accumulators need none), and returns
/// the per-target scalar types for invariant inference. Array accumulators
/// must be initialized by a VarRef of the same name (the name-directed
/// in-place convention); anything else is an unsolved goal.
Result<std::vector<bedrock::CmdPtr>>
emitAccInits(CompileCtx &Ctx, const std::vector<ir::AccInit> &Accs,
             const std::vector<std::string> &BindNames,
             std::map<std::string, ir::Ty> *NewScalarTys, DerivNode &D);

} // namespace core
} // namespace relc

#endif // RELC_CORE_RULES_RULESCOMMON_H
