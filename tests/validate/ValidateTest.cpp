//===- tests/validate/ValidateTest.cpp - The trusted checker ---------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"
#include "validate/Validate.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::ir;

namespace {

/// A compiled upstr-like function for reuse across tests.
struct Fixture {
  programs::ProgramDef P = *programs::findProgram("upstr");
  core::CompileResult R;
  bedrock::Module Linked;

  Fixture() {
    core::Compiler C;
    Result<core::CompileResult> Res = C.compileFn(P.Model, P.Spec, P.Hints);
    EXPECT_TRUE(bool(Res));
    R = Res.take();
    Linked.Functions.push_back(R.Fn);
  }
};

TEST(ValidateTest, GoodCompilationPassesBothHalves) {
  Fixture F;
  EXPECT_TRUE(bool(validate::replayDerivation(F.P.Model, F.R)));
  Status D = validate::differentialCertify(F.P.Model, F.P.Spec, F.R,
                                           F.Linked, F.P.VOpts);
  EXPECT_TRUE(bool(D)) << (D ? "" : D.error().str());
}

TEST(ValidateTest, DefaultInputsMatchParameterShapes) {
  FnBuilder FB("m", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("x").cellParam("c");
  ProgBuilder B;
  B.let("r", v("x"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"r"}));
  Rng R(5);
  std::vector<Value> In = validate::defaultInputs(Fn, R, 13);
  ASSERT_EQ(In.size(), 3u);
  EXPECT_EQ(In[0].elems().size(), 13u);
  EXPECT_EQ(In[0].listElt(), EltKind::U8);
  EXPECT_EQ(In[1].kind(), Value::Kind::Word);
  EXPECT_EQ(In[2].elems().size(), 1u);
}

TEST(ValidateTest, MissingWitnessRejected) {
  Fixture F;
  core::CompileResult NoProof;
  NoProof.Fn = F.R.Fn;
  Status S = validate::replayDerivation(F.P.Model, NoProof);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("witness"), std::string::npos);
}

TEST(ValidateTest, AllSuiteProgramsCertify) {
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    Result<programs::CompiledProgram> C = programs::compileAndValidate(P);
    EXPECT_TRUE(bool(C)) << P.Name << ": "
                         << (C ? "" : C.error().str());
  }
}

TEST(ValidateTest, ParallelLayersMatchSerialVerdict) {
  // validate() with Jobs > 1 runs replay/analysis/tv on the job-graph
  // scheduler; the verdict must match the inline serial path.
  Fixture F;
  validate::ValidationOptions VO = F.P.VOpts;
  VO.Hints = F.P.Hints;
  VO.Jobs = 8;
  Status Par = validate::validate(F.P.Model, F.P.Spec, F.R, F.Linked, VO);
  EXPECT_TRUE(bool(Par)) << (Par ? "" : Par.error().str());
  VO.Jobs = 1;
  EXPECT_TRUE(
      bool(validate::validate(F.P.Model, F.P.Spec, F.R, F.Linked, VO)));
}

TEST(ValidateTest, ParallelLayersRenderSerialDiagnostics) {
  // A tampered witness fails layer 1; serial and parallel validate()
  // must produce the identical error text (fixed layer order, shared
  // rendering helpers).
  Fixture F;
  F.R.Proof->Children[0]->Rule = "compile_backdoor";
  validate::ValidationOptions VO = F.P.VOpts;
  VO.Hints = F.P.Hints;
  VO.Jobs = 1;
  Status Ser = validate::validate(F.P.Model, F.P.Spec, F.R, F.Linked, VO);
  VO.Jobs = 8;
  Status Par = validate::validate(F.P.Model, F.P.Spec, F.R, F.Linked, VO);
  ASSERT_FALSE(bool(Ser));
  ASSERT_FALSE(bool(Par));
  EXPECT_EQ(Ser.error().str(), Par.error().str());
}

TEST(ValidateTest, ValidationIsSeedStable) {
  // Same options, same verdict — determinism of the certifier.
  Fixture F;
  validate::ValidationOptions VO = F.P.VOpts;
  VO.Seed = 12345;
  Status A = validate::differentialCertify(F.P.Model, F.P.Spec, F.R,
                                           F.Linked, VO);
  Status B = validate::differentialCertify(F.P.Model, F.P.Spec, F.R,
                                           F.Linked, VO);
  EXPECT_EQ(bool(A), bool(B));
  EXPECT_TRUE(bool(A));
}

} // namespace
