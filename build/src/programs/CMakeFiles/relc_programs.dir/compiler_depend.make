# Empty compiler generated dependencies file for relc_programs.
# This may be replaced when dependencies are built.
