//===- ir/Build.h - Builder API for FunLang models --------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Writing a model through this builder is the C++ analogue of writing
// lowered Gallina: a chain of let/n bindings over the expression
// combinators from ir/Expr.h. See src/programs/ for complete models.
//
//   FnBuilder B("upstr", Monad::Pure);
//   B.listParam("s", EltKind::U8);
//   B.body()
//       .let("s", mkMap("s", "b", /*toupper' body*/ ...))
//       .ret({"s"});
//
//===----------------------------------------------------------------------===//

#ifndef RELC_IR_BUILD_H
#define RELC_IR_BUILD_H

#include "ir/Prog.h"

namespace relc {
namespace ir {

/// Bound-form constructors.
BoundPtr mkPure(ExprPtr E);
BoundPtr mkPut(std::string Array, ExprPtr Index, ExprPtr Val);
BoundPtr mkMap(std::string Array, std::string Param, ExprPtr Body);
BoundPtr mkFold(std::string Array, std::string AccParam, std::string EltParam,
                ExprPtr Init, ExprPtr Body);
BoundPtr mkFoldBreak(std::string Array, std::string AccParam,
                     std::string EltParam, ExprPtr Init, ExprPtr Body,
                     ExprPtr Break);
BoundPtr mkRange(std::string IdxName, ExprPtr Lo, ExprPtr Hi,
                 std::vector<AccInit> Accs, ProgPtr Body);
BoundPtr mkWhile(std::vector<AccInit> Accs, ExprPtr Cond, ProgPtr Body,
                 ExprPtr Measure);
BoundPtr mkIf(ExprPtr Cond, ProgPtr Then, ProgPtr Else);
BoundPtr mkStack(std::vector<uint8_t> Bytes);
BoundPtr mkStackUninit(uint64_t Size);
BoundPtr mkNondetAlloc(uint64_t Size);
BoundPtr mkNondetPeek();
BoundPtr mkIoRead();
BoundPtr mkIoWrite(ExprPtr E);
BoundPtr mkTell(ExprPtr E);
BoundPtr mkCellGet(std::string Cell);
BoundPtr mkCellPut(std::string Cell, ExprPtr E);
BoundPtr mkCellIncr(std::string Cell, ExprPtr E);
BoundPtr mkCopy(std::string Array);
BoundPtr mkCall(std::string Callee, std::vector<ExprPtr> Args,
                unsigned NumRets);

/// Accumulator-initializer shorthand.
AccInit acc(std::string Name, ExprPtr Init);

/// Builds a Prog as a chain of let/n bindings.
class ProgBuilder {
public:
  /// let/n Name := Expr.
  ProgBuilder &let(std::string Name, ExprPtr E);

  /// let/n Name := <bound form>.
  ProgBuilder &let(std::string Name, BoundPtr B);

  /// let/n (Names...) := <bound form>.
  ProgBuilder &letMulti(std::vector<std::string> Names, BoundPtr B);

  /// Finishes the program, returning the named values.
  ProgPtr ret(std::vector<std::string> Names) &&;

private:
  std::vector<Binding> Bindings;
};

/// Builds a SourceFn.
class FnBuilder {
public:
  FnBuilder(std::string Name, Monad M);

  FnBuilder &wordParam(std::string Name);
  FnBuilder &listParam(std::string Name, EltKind Elt);
  FnBuilder &cellParam(std::string Name);
  FnBuilder &table(std::string Name, EltKind Elt,
                   std::vector<uint64_t> Elements);

  /// Sets the body and finishes.
  SourceFn done(ProgPtr Body) &&;

private:
  SourceFn Fn;
};

} // namespace ir
} // namespace relc

#endif // RELC_IR_BUILD_H
