//===- support/Fault.h - Deterministic fault injection ----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// relc::fault — a first-class, seed-driven fault-injection registry,
// promoted from the pipeline's ad-hoc test-only TamperHook. Production
// subsystems expose named *injection sites* (certificate-cache I/O,
// scheduler job boundaries, certification-layer entry, interpreter fuel)
// and consult the registry at each; tests and operators arm it with a
// textual spec (`relc-gen --fault <spec>` or the RELC_FAULT_SPEC
// environment variable) to drive the fault-matrix stress suite.
//
// Spec grammar — comma-separated clauses, each:
//
//   <site>[:transient|:persistent][:p=<prob>][:n=<count>]
//         [:seed=<u64>][:match=<substr>][:v=<u64>]
//
//   site       cache-read | cache-write | sched-job | layer-entry
//              | interp-fuel | codelint-entry | svc-accept | svc-read
//              | svc-write | svc-dispatch | svc-worker-spawn
//              | svc-worker-crash | svc-worker-hang
//   transient  (default) the site fails the first n times a given key
//              hits it, then heals — retry loops must absorb it.
//   persistent every hit fails — the pipeline must degrade to a *named*
//              outcome carrying the injected fault's description.
//   p=<prob>   probability in [0,1] that a given (site, key) is targeted
//              at all, decided deterministically by hashing (seed, site,
//              key) — the same spec always faults the same keys.
//   n=<count>  transient mode: failures per key before healing (def. 1).
//   seed=<u64> participates in the targeting hash.
//   match=<s>  only keys containing <s> are targeted.
//   v=<u64>    site-specific payload (interp-fuel: the starved fuel
//              value; default 16).
//
// Determinism contract: whether a hit fires depends only on (spec, site,
// key, per-key hit ordinal) — never on wall time, thread identity, or
// global call order — so a faulted parallel run and a faulted serial run
// see identical injections, preserving the pipeline's byte-identity
// guarantees under test.
//
// The un-armed fast path is one relaxed atomic load; sites can stay in
// production code without measurable overhead (bench/pipeline_scaling).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_FAULT_H
#define RELC_SUPPORT_FAULT_H

#include "support/Result.h"

#include <cstdint>
#include <optional>
#include <string>

namespace relc {
namespace fault {

/// The injection sites the pipeline exposes.
enum class Site : uint8_t {
  CacheRead,    ///< Certificate-cache lookup I/O ("cache-read").
  CacheWrite,   ///< Certificate-cache store I/O ("cache-write").
  SchedulerJob, ///< Job-graph job boundary ("sched-job").
  LayerEntry,   ///< Certification-layer entry ("layer-entry").
  InterpFuel,   ///< Bedrock2 interpreter fuel ("interp-fuel").
  CodelintEntry, ///< Target-side codelint layer entry ("codelint-entry").
  SvcAccept,     ///< relcd connection accept ("svc-accept").
  SvcRead,       ///< relcd request-frame read ("svc-read").
  SvcWrite,      ///< relcd response-frame write ("svc-write").
  SvcDispatch,   ///< relcd certify-request dispatch ("svc-dispatch").
  SvcWorkerSpawn, ///< relcd worker fork ("svc-worker-spawn").
  SvcWorkerCrash, ///< relcd worker killed mid-job ("svc-worker-crash";
                  ///< v = signal to deliver, default SIGKILL).
  SvcWorkerHang,  ///< relcd worker reply withheld ("svc-worker-hang").
  SvcWorkerOom,   ///< relcd worker starved of memory ("svc-worker-oom"):
                  ///< the worker allocates until operator new fails, so a
                  ///< configured RLIMIT_AS produces a *real* bad_alloc and
                  ///< the real new-handler → exit-77 → "worker-oom" path,
                  ///< independent of how much already-mapped heap slack
                  ///< the forked worker inherited.
};
constexpr unsigned NumSites = 14;

const char *siteName(Site S);
bool siteFromName(const std::string &Name, Site *Out);

/// One parsed spec clause.
struct Clause {
  Site TheSite = Site::CacheRead;
  bool Persistent = false; ///< Default transient.
  unsigned Count = 1;      ///< Transient: failures per key before healing.
  uint64_t Seed = 0;
  double Prob = 1.0;
  std::string Match;
  uint64_t Value = 0;
};

/// A fired injection, returned to the site so it can fail accordingly
/// (and name the fault in its degraded outcome).
struct Hit {
  Site TheSite = Site::CacheRead;
  std::string Key;
  unsigned Occurrence = 0; ///< 0-based per-(site, key) ordinal.
  bool Transient = true;
  uint64_t Value = 0;

  /// "injected transient cache-write fault at 'deadbeef…' (hit #0)" —
  /// the exact text the fault-matrix suite greps degraded outcomes for.
  std::string describe() const;
};

/// Parses \p Spec and arms the process-wide registry (replacing any
/// previous spec). An empty spec disarms. Failure leaves the previous
/// arming untouched.
Status arm(const std::string &Spec);

/// Arms from RELC_FAULT_SPEC when set and nonempty; returns the status of
/// that arming (success when the variable is unset).
Status armFromEnv();

/// Disarms and clears all per-key hit counters.
void disarm();

bool armed();
std::string activeSpec();

/// Consults the registry: does this hit of (\p S, \p Key) fail? Advances
/// the per-key ordinal when a clause fires. Null when un-armed, the key
/// is not targeted, or a transient clause has healed.
std::optional<Hit> fire(Site S, const std::string &Key);

/// The retrying form sites use directly: re-fires up to \p MaxAttempts
/// times, absorbing transient hits (each re-fire consumes one). Returns
/// the Hit only when the fault persists past the retries — i.e. exactly
/// when the caller must degrade.
std::optional<Hit> fireWithRetry(Site S, const std::string &Key,
                                 unsigned MaxAttempts = 4);

/// RAII arming for tests: arms on construction, restores the previous
/// spec (and clears counters) on destruction.
class ScopedFaults {
public:
  explicit ScopedFaults(const std::string &Spec);
  ~ScopedFaults();
  ScopedFaults(const ScopedFaults &) = delete;
  ScopedFaults &operator=(const ScopedFaults &) = delete;

private:
  std::string Previous;
};

} // namespace fault
} // namespace relc

#endif // RELC_SUPPORT_FAULT_H
