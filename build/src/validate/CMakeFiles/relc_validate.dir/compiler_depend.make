# Empty compiler generated dependencies file for relc_validate.
# This may be replaced when dependencies are built.
