//===- codelint/Driver.h - Codelint driver over the suite -------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The analyzer *driver*: compiles benchmark programs (and the §2 stackm
// examples) and runs the codelint core over the emitted code, rendering
// reports for the relc-codelint tool and the relc-lint --code gate.
//
// Deliberately a separate library from the core (relc_codelint vs
// relc_codelint_core): the certificate checker re-derives codelint sections
// through the core alone, and CI asserts with nm that no driver symbol
// (codelint::lintProgram) leaks into relc-check — the same independence
// story the TV driver has.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CODELINT_DRIVER_H
#define RELC_CODELINT_DRIVER_H

#include "codelint/Codelint.h"
#include "programs/Programs.h"

#include <string>
#include <vector>

namespace relc {
namespace codelint {

/// One program's lint outcome: the compile gate plus the analysis report.
struct ProgramLint {
  std::string Name;
  bool CompileOk = false;
  std::string CompileError;
  Report R;
};

/// Compiles \p P (validation off — codelint is a static layer) and runs the
/// three analyses over the emitted Bedrock2 function.
ProgramLint lintProgram(const programs::ProgramDef &P,
                        const guard::Budget *Budget = nullptr);

/// Lints every Table 2 suite program, in suite order.
std::vector<ProgramLint> lintSuite(const guard::Budget *Budget = nullptr);

/// Lints the §2 stackm examples: the traditional compiler's output and the
/// relational compiler's (base rules + the Mul/ConstFold extensions), so
/// the first backend in the paper finally has a static layer too.
std::vector<ProgramLint> lintStackExamples();

/// Renders one outcome as the tools print it ("[name] codelint: ...").
std::string renderLint(const ProgramLint &L);

} // namespace codelint
} // namespace relc

#endif // RELC_CODELINT_DRIVER_H
