//===- core/Invariant.cpp - Loop/join invariant inference ------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/Invariant.h"

namespace relc {
namespace core {

using sep::SymVal;
using sep::TargetSlot;
using solver::lc;

Result<LoopInvariant>
inferInvariant(const CompileCtx &Ctx, const std::vector<std::string> &Names,
               const std::map<std::string, ir::Ty> &NewScalarTys) {
  LoopInvariant Inv;
  for (const std::string &Name : Names) {
    LoopTarget T;
    T.Name = Name;
    // Step 2: pointer iff the memory predicate holds the name; scalar iff
    // the locals do (or the name is fresh).
    int Clause = Ctx.State.findClauseByPayload(Name);
    if (Clause >= 0) {
      T.IsPointer = true;
      T.ClauseIdx = Clause;
    } else if (const TargetSlot *S = Ctx.State.findScalar(Name)) {
      T.ScalarTy = S->ScalarTy;
    } else {
      auto It = NewScalarTys.find(Name);
      if (It == NewScalarTys.end())
        return Error("invariant inference: target '" + Name +
                     "' is neither a local, a memory payload, nor a "
                     "declared fresh scalar");
      T.ScalarTy = It->second;
    }
    Inv.Targets.push_back(std::move(T));
  }

  // Step 4: render the closed template for the derivation.
  std::string L = "{";
  std::string M;
  bool FirstL = true, FirstM = true;
  for (const LoopTarget &T : Inv.Targets) {
    if (T.IsPointer) {
      const sep::HeapClause &C = Ctx.State.Heap[T.ClauseIdx];
      if (!FirstM)
        M += " * ";
      FirstM = false;
      M += "array " + C.Ptr + " _";
    } else {
      if (!FirstL)
        L += ", ";
      FirstL = false;
      L += "\"" + T.Name + "\": _";
    }
  }
  L += ", ...}";
  Inv.Template = "(λ (" + [&] {
    std::string Vars;
    for (size_t I = 0; I < Inv.Targets.size(); ++I) {
      if (I)
        Vars += ", ";
      Vars += Inv.Targets[I].Name;
    }
    return Vars;
  }() + ") l m ⇒ l = " + L + " ∧ (" + (M.empty() ? "r" : M + " * r") +
                 ") m)";
  return Inv;
}

void abstractScalars(CompileCtx &Ctx, const LoopInvariant &Inv,
                     const std::string &Stage) {
  for (const LoopTarget &T : Inv.Targets) {
    if (T.IsPointer)
      continue;
    SymVal V = SymVal::sym(Ctx.State.freshSym(T.Name + "@" + Stage));
    Ctx.State.Facts.addGe0(V.term(), "word is nonnegative");
    if (T.ScalarTy == ir::Ty::Byte)
      Ctx.State.Facts.addLe(V.term(), lc(255), "byte value");
    if (T.ScalarTy == ir::Ty::Bool)
      Ctx.State.Facts.addLe(V.term(), lc(1), "bool value");
    Ctx.State.Locals[T.Name] = TargetSlot::scalar(V, T.ScalarTy);
  }
}

} // namespace core
} // namespace relc
