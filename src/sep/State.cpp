//===- sep/State.cpp - Symbolic machine state for compilation -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "sep/State.h"

namespace relc {
namespace sep {

std::string HeapClause::str() const {
  switch (TheKind) {
  case Kind::Array:
    return "array<u" + std::to_string(8 * ir::eltSize(Elt)) + "> " + Ptr +
           " " + Payload + " (len " + Len.str() + ")";
  case Kind::Cell:
    return "cell " + Ptr + " " + Payload;
  case Kind::Scratch:
    return "scratch " + Ptr + " (" + std::to_string(ScratchSize) + " bytes)";
  }
  return "?";
}

std::string CompState::freshSym(const std::string &Hint) {
  return Hint + "$" + std::to_string(FreshCounter++);
}

std::string CompState::freshLocal(const std::string &Hint) {
  // Compiler-chosen locals carry a '$', which source binder names may not
  // contain (enforced by the FunLang checker); collisions are impossible.
  std::string Name;
  do {
    Name = Hint + "$" + std::to_string(FreshCounter++);
  } while (Locals.count(Name));
  return Name;
}

int CompState::findClauseByPayload(const std::string &SourceName) const {
  for (size_t I = 0; I < Heap.size(); ++I)
    if (Heap[I].TheKind != HeapClause::Kind::Scratch &&
        Heap[I].Payload == SourceName)
      return int(I);
  return -1;
}

std::optional<std::string> CompState::findPtrLocal(int ClauseIdx) const {
  for (const auto &[Name, Slot] : Locals)
    if (Slot.TheKind == TargetSlot::Kind::Ptr && Slot.ClauseIdx == ClauseIdx)
      return Name;
  return std::nullopt;
}

const TargetSlot *CompState::findScalar(const std::string &SourceName) const {
  auto It = Locals.find(SourceName);
  if (It == Locals.end() || It->second.TheKind != TargetSlot::Kind::Scalar)
    return nullptr;
  return &It->second;
}

std::optional<std::string>
CompState::findLocalEqualTo(const solver::LinTerm &Len) const {
  // Syntactic match first: a local whose symbolic value *is* the term.
  for (const auto &[Name, Slot] : Locals) {
    if (Slot.TheKind != TargetSlot::Kind::Scalar)
      continue;
    solver::LinTerm T = Slot.Val.term();
    if ((T - Len).isConstant() && (T - Len).constPart() == 0)
      return Name;
  }
  // Semantic fallback: a local provably equal under the facts.
  for (const auto &[Name, Slot] : Locals) {
    if (Slot.TheKind != TargetSlot::Kind::Scalar)
      continue;
    if (Facts.entailsLe(Slot.Val.term(), Len) &&
        Facts.entailsLe(Len, Slot.Val.term()))
      return Name;
  }
  return std::nullopt;
}

std::string CompState::str() const {
  std::string Out = "locals:\n";
  for (const auto &[Name, Slot] : Locals) {
    Out += "  " + Name + " : ";
    if (Slot.TheKind == TargetSlot::Kind::Scalar)
      Out += std::string(ir::tyName(Slot.ScalarTy)) + " = " + Slot.Val.str();
    else
      Out += "ptr " + Slot.Val.str() + " -> clause #" +
             std::to_string(Slot.ClauseIdx);
    Out += "\n";
  }
  Out += "memory:\n";
  for (size_t I = 0; I < Heap.size(); ++I)
    Out += "  #" + std::to_string(I) + ": " + Heap[I].str() + "\n";
  return Out;
}

} // namespace sep
} // namespace relc
