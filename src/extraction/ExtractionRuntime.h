//===- extraction/ExtractionRuntime.h - Box 1 baseline ---------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// An "extraction-style" runtime reproducing the performance profile of
// Coq's extraction to OCaml, as dissected in Box 1 of the paper:
//
//   - strings are cons lists of characters ("linked lists of characters"),
//   - a character is a boxed 8-tuple of Booleans ("an inductive type with
//     256 cases" / Coq's ascii), so every character access pointer-chases
//     and every character construction allocates,
//   - String.map is not tail-recursive in Coq; of the paper's three listed
//     outcomes (stack overflow, double traversal, or continuation
//     accumulation) this runtime takes the safe one: reverse-accumulate
//     then reverse, i.e. "traverse the string twice (doubling allocation
//     and pointer-chasing costs)",
//   - List.nth is linear — the footnote's asymptotic gap ("changing a
//     linear nth-element lookup to a constant-time pointer dereference")
//     shows up when a lookup table is a list, as in table-driven CRC.
//
// The box1 bench runs the same tasks through this runtime and through the
// relationally compiled C to regenerate §4.2's orders-of-magnitude claim.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_EXTRACTION_EXTRACTIONRUNTIME_H
#define RELC_EXTRACTION_EXTRACTIONRUNTIME_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace relc {
namespace extraction {

/// Coq's ascii: an 8-tuple of Booleans, boxed on the heap.
struct Ascii {
  bool Bits[8]; // Bits[0] is the least significant bit.
};
using CharBox = std::shared_ptr<const Ascii>;

CharBox boxChar(uint8_t B);
uint8_t unboxChar(const CharBox &C);

/// A cons cell; List<T> is a (possibly null) pointer to one.
template <typename T> struct ConsCell {
  T Head;
  std::shared_ptr<const ConsCell<T>> Tail;

  /// Destruction is iterative: naive shared_ptr chaining would recurse
  /// once per cell and overflow the stack on megabyte strings (an
  /// authentic hazard of the linked representation, but one the OCaml GC
  /// does not have — so we don't measure it either).
  ~ConsCell() {
    std::shared_ptr<const ConsCell<T>> P = std::move(Tail);
    while (P && P.use_count() == 1)
      P = std::move(const_cast<ConsCell<T> *>(P.get())->Tail);
  }
};
template <typename T> using List = std::shared_ptr<const ConsCell<T>>;

template <typename T> List<T> cons(T Head, List<T> Tail) {
  auto C = std::make_shared<ConsCell<T>>();
  C->Head = std::move(Head);
  C->Tail = std::move(Tail);
  return C;
}

/// A Gallina string: a cons list of boxed characters.
using Str = List<CharBox>;

Str strOfBytes(const std::vector<uint8_t> &Bytes);
std::vector<uint8_t> bytesOfStr(const Str &S);

/// List length (linear).
template <typename T> size_t length(const List<T> &L) {
  size_t N = 0;
  for (auto P = L; P; P = P->Tail)
    ++N;
  return N;
}

/// List reversal (one traversal, one allocation per cell).
template <typename T> List<T> rev(const List<T> &L) {
  List<T> Out;
  for (auto P = L; P; P = P->Tail)
    Out = cons(P->Head, Out);
  return Out;
}

/// String.map in the "traverse twice" lowering: rev_map then rev.
template <typename T>
List<T> map(const std::function<T(const T &)> &F, const List<T> &L) {
  List<T> RevOut;
  for (auto P = L; P; P = P->Tail)
    RevOut = cons(F(P->Head), RevOut);
  return rev(RevOut);
}

/// List.fold_left.
template <typename A, typename T>
A foldLeft(const std::function<A(A, const T &)> &F, const List<T> &L, A Acc) {
  for (auto P = L; P; P = P->Tail)
    Acc = F(std::move(Acc), P->Head);
  return Acc;
}

/// List.nth with default — linear time, the footnote's asymptotic trap.
template <typename T>
T nth(const List<T> &L, size_t N, T Default) {
  auto P = L;
  while (P && N > 0) {
    P = P->Tail;
    --N;
  }
  return P ? P->Head : Default;
}

/// Char.toupper as Coq would extract it: decode the Boolean 8-tuple, match
/// on the 26 lowercase cases, allocate the uppercase character.
CharBox toupperMatch(const CharBox &C);

//===----------------------------------------------------------------------===//
// Extraction-style task implementations (the §4.2 comparison's left side).
//===----------------------------------------------------------------------===//

/// String.map Char.toupper str — Box 1's program, verbatim.
Str upstr(const Str &S);

/// FNV-1a over a character list.
uint64_t fnv1a(const Str &S);

/// Table-driven CRC-32 where the table is itself a Gallina list, so each
/// step pays a linear nth — the asymptotic-gap demonstration.
uint64_t crc32ListTable(const Str &S);

/// DNA complement via a 256-entry list table (linear nth per character).
Str fastaListTable(const Str &S);

} // namespace extraction
} // namespace relc

#endif // RELC_EXTRACTION_EXTRACTIONRUNTIME_H
