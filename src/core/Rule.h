//===- core/Rule.h - Compilation-rule interfaces ----------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// "A relational compiler is just a collection of facts connecting target
// programs to source programs" (§2.3). A StmtRule is the executable form of
// one statement-compilation lemma (§3.3): it recognizes a source binding
// shape, transforms the symbolic state the way the lemma's premises
// dictate, emits the corresponding target fragment, and invokes the
// continuation for the rest of the program — exactly the continuation
// premise K of the paper's lemmas ("Most Rupicola lemmas include such
// continuations").
//
// Rules are collected in an ordered RuleSet — the hint database. The driver
// applies the first matching rule, never backtracks, and reports a printed
// unsolved goal when nothing matches (§3.1).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CORE_RULE_H
#define RELC_CORE_RULE_H

#include "bedrock/Ast.h"
#include "core/Derivation.h"
#include "ir/Prog.h"
#include "support/Result.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace relc {
namespace core {

class CompileCtx;

/// The continuation premise: compiles the rest of the current program and
/// returns its target code. Most rules sequence their own emission before
/// it; scoping rules (stackalloc) wrap it.
using Cont = std::function<Result<bedrock::CmdPtr>(DerivNode &)>;

class StmtRule {
public:
  virtual ~StmtRule() = default;

  /// Lemma name, e.g. "compile_map_inplace".
  virtual std::string name() const = 0;

  /// True iff this rule's conclusion matches the binding (syntactic match
  /// only; side conditions are attempted during apply and failing them is a
  /// hard, reported error — the driver does not fall through to other
  /// rules, keeping compilation predictable).
  virtual bool matches(const CompileCtx &Ctx, const ir::Binding &B) const = 0;

  /// Emits target code for \p B followed by the continuation \p K. Appends
  /// discharged side conditions and notes to \p D.
  virtual Result<bedrock::CmdPtr> apply(CompileCtx &Ctx, const ir::Binding &B,
                                        const Cont &K, DerivNode &D) = 0;
};

/// Ordered, extensible rule collection: the hint database of §2.3. Lookup
/// is first-match in order, so program-specific rules registered at the
/// front shadow generic ones.
class RuleSet {
public:
  void add(std::unique_ptr<StmtRule> R) { Rules.push_back(std::move(R)); }
  void addFront(std::unique_ptr<StmtRule> R) {
    Rules.insert(Rules.begin(), std::move(R));
  }

  StmtRule *findMatch(const CompileCtx &Ctx, const ir::Binding &B) const {
    for (const auto &R : Rules)
      if (R->matches(Ctx, B))
        return R.get();
    return nullptr;
  }

  size_t size() const { return Rules.size(); }

private:
  std::vector<std::unique_ptr<StmtRule>> Rules;
};

/// Populates \p RS with the standard rule library: arithmetic/let, arrays,
/// loops (map/fold/ranged/while), conditionals, stack allocation, cells,
/// inline tables (expression side), and the monadic extensions (nondet,
/// io, writer), plus external calls. Each family lives in its own
/// translation unit under core/rules/.
void registerStandardRules(RuleSet &RS);

} // namespace core
} // namespace relc

#endif // RELC_CORE_RULE_H
