//===- analysis/Domains.cpp - Abstract domains for bedrock code -----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/Domains.h"

#include "ir/Value.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>

namespace relc {
namespace analysis {

using namespace bedrock;
using solver::lc;
using solver::LinTerm;
using solver::ls;

//===----------------------------------------------------------------------===//
// ABI digest.
//===----------------------------------------------------------------------===//

AbiInfo makeAbiInfo(const Function &Fn, const sep::FnSpec &Spec,
                    const ir::SourceFn &Src, const EntryFactList &Hints) {
  AbiInfo Info;

  // Mirror the compiler's setupInitialState so entry hints (written against
  // sep::CompState) see the same locals, heap clauses and base facts.
  sep::CompState St;
  for (const sep::ArgSpec &A : Spec.Args) {
    const ir::Param *P = Src.findParam(A.SourceName);
    switch (A.TheKind) {
    case sep::ArgSpec::Kind::Scalar:
      St.Locals[A.TargetName] =
          sep::TargetSlot::scalar(sep::SymVal::sym(A.SourceName), ir::Ty::Word);
      St.Facts.addGe0(ls(A.SourceName), "word parameter is nonnegative");
      Info.ArgTerm[A.TargetName] = ls(A.SourceName);
      break;
    case sep::ArgSpec::Kind::ArrayLen:
      St.Locals[A.TargetName] = sep::TargetSlot::scalar(
          sep::SymVal::sym("len_" + A.OfArray), ir::Ty::Word);
      Info.ArgTerm[A.TargetName] = ls("len_" + A.OfArray);
      break;
    case sep::ArgSpec::Kind::ArrayPtr: {
      std::string LenSym = "len_" + A.SourceName;
      unsigned EltB = P ? ir::eltSize(P->Elt) : 1;
      Region R;
      R.K = Region::Kind::Array;
      R.Name = A.SourceName;
      R.EltBytes = EltB;
      R.Extent = ls(LenSym).scaled(int64_t(EltB));
      R.ClauseStr = "array ptr_" + A.SourceName + " " + A.SourceName + " (" +
                    LenSym + " x " + std::to_string(EltB) + "B)";
      Info.Regions.push_back(R);
      Info.ArgRegion[A.TargetName] = int(Info.Regions.size()) - 1;

      sep::HeapClause C;
      C.TheKind = sep::HeapClause::Kind::Array;
      C.Ptr = "ptr_" + A.SourceName;
      C.Payload = A.SourceName;
      C.Elt = P ? P->Elt : ir::EltKind::U8;
      C.Len = ls(LenSym);
      St.Heap.push_back(C);
      St.Locals[A.TargetName] = sep::TargetSlot::ptr(
          sep::SymVal::sym(C.Ptr), int(St.Heap.size()) - 1);
      St.Facts.addGe0(ls(LenSym), "length is nonnegative");
      St.Facts.addLe(ls(LenSym), lc(int64_t(1) << 32),
                     "ABI bounds array lengths by 2^32");
      break;
    }
    case sep::ArgSpec::Kind::CellPtr: {
      Region R;
      R.K = Region::Kind::Cell;
      R.Name = A.SourceName;
      R.EltBytes = 8;
      R.Extent = lc(8);
      R.ClauseStr = "cell ptr_" + A.SourceName + " " + A.SourceName;
      Info.Regions.push_back(R);
      Info.ArgRegion[A.TargetName] = int(Info.Regions.size()) - 1;

      sep::HeapClause C;
      C.TheKind = sep::HeapClause::Kind::Cell;
      C.Ptr = "ptr_" + A.SourceName;
      C.Payload = A.SourceName;
      C.Elt = ir::EltKind::U64;
      C.Len = lc(1);
      St.Heap.push_back(C);
      St.Locals[A.TargetName] = sep::TargetSlot::ptr(
          sep::SymVal::sym(C.Ptr), int(St.Heap.size()) - 1);
      break;
    }
    }
  }
  for (const auto &H : Hints)
    H(St);
  Info.EntryFacts = St.Facts;

  // Pre-register a Scratch region per stackalloc site in the body.
  std::function<void(const Cmd *)> Walk = [&](const Cmd *C) {
    if (!C)
      return;
    switch (C->kind()) {
    case Cmd::Kind::Seq:
      Walk(cast<Seq>(C)->first());
      Walk(cast<Seq>(C)->second());
      break;
    case Cmd::Kind::If:
      Walk(cast<If>(C)->thenCmd());
      Walk(cast<If>(C)->elseCmd());
      break;
    case Cmd::Kind::While:
      Walk(cast<While>(C)->body());
      break;
    case Cmd::Kind::Stackalloc: {
      const auto *SA = cast<Stackalloc>(C);
      Region R;
      R.K = Region::Kind::Scratch;
      R.Name = SA->name();
      R.EltBytes = 1;
      uint64_t N = SA->numBytes();
      R.Extent = lc(N > uint64_t(INT64_MAX) ? INT64_MAX : int64_t(N));
      R.Scoped = true;
      R.ClauseStr =
          "scratch " + SA->name() + "[" + std::to_string(N) + "B]";
      Info.Regions.push_back(R);
      Info.StackRegion[C] = int(Info.Regions.size()) - 1;
      Walk(SA->body());
      break;
    }
    default:
      break;
    }
  };
  Walk(Fn.Body.get());

  return Info;
}

//===----------------------------------------------------------------------===//
// Read/write sets.
//===----------------------------------------------------------------------===//

void forEachReadVar(const CfgStmt &S,
                    const std::function<void(const std::string &)> &Fn) {
  if (S.K != CfgStmt::Kind::Simple)
    return;
  switch (S.C->kind()) {
  case Cmd::Kind::Set:
    forEachVar(*cast<Set>(S.C)->value(), Fn);
    break;
  case Cmd::Kind::Store:
    forEachVar(*cast<Store>(S.C)->addr(), Fn);
    forEachVar(*cast<Store>(S.C)->value(), Fn);
    break;
  case Cmd::Kind::Call:
    for (const ExprPtr &A : cast<Call>(S.C)->args())
      forEachVar(*A, Fn);
    break;
  case Cmd::Kind::Interact:
    for (const ExprPtr &A : cast<Interact>(S.C)->args())
      forEachVar(*A, Fn);
    break;
  default:
    break;
  }
}

void forEachDefVar(const CfgStmt &S,
                   const std::function<void(const std::string &)> &Fn) {
  switch (S.K) {
  case CfgStmt::Kind::StackEnter:
    Fn(cast<Stackalloc>(S.C)->name());
    return;
  case CfgStmt::Kind::StackExit:
    return;
  case CfgStmt::Kind::Simple:
    break;
  }
  switch (S.C->kind()) {
  case Cmd::Kind::Set:
    Fn(cast<Set>(S.C)->name());
    break;
  case Cmd::Kind::Call:
    for (const std::string &R : cast<Call>(S.C)->rets())
      Fn(R);
    break;
  case Cmd::Kind::Interact:
    for (const std::string &R : cast<Interact>(S.C)->rets())
      Fn(R);
    break;
  default:
    break;
  }
}

void forEachKillVar(const CfgStmt &S,
                    const std::function<void(const std::string &)> &Fn) {
  if (S.K == CfgStmt::Kind::StackExit) {
    Fn(cast<Stackalloc>(S.C)->name());
    return;
  }
  if (S.K == CfgStmt::Kind::Simple && isa<Unset>(S.C))
    Fn(cast<Unset>(S.C)->name());
}

//===----------------------------------------------------------------------===//
// InitDomain.
//===----------------------------------------------------------------------===//

InitDomain::State InitDomain::entry() const {
  State S;
  S.Defined.insert(Fn.Args.begin(), Fn.Args.end());
  return S;
}

void InitDomain::apply(const CfgStmt &S, std::set<std::string> &Defined) {
  forEachDefVar(S, [&](const std::string &V) { Defined.insert(V); });
  forEachKillVar(S, [&](const std::string &V) { Defined.erase(V); });
}

void InitDomain::transfer(const Cfg &, const BasicBlock &, const CfgStmt &S,
                          State &St) const {
  apply(S, St.Defined);
}

std::optional<InitDomain::State> InitDomain::edge(const Cfg &,
                                                  const BasicBlock &,
                                                  const State &St,
                                                  bool) const {
  return St;
}

bool InitDomain::join(unsigned, State &Into, const State &From) const {
  bool Changed = false;
  for (auto It = Into.Defined.begin(); It != Into.Defined.end();) {
    if (From.Defined.count(*It)) {
      ++It;
    } else {
      It = Into.Defined.erase(It);
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// IntervalDomain.
//===----------------------------------------------------------------------===//

namespace {

/// Smallest all-ones mask covering \p H (so x ≤ H implies x | y ≤
/// maskCover(H) | maskCover(Hy)).
uint64_t maskCover(uint64_t H) {
  uint64_t M = 0;
  while (M < H)
    M = (M << 1) | 1;
  return M;
}

Interval evalBinItv(BinOp Op, Interval A, Interval B) {
  const uint64_t Max = ~uint64_t(0);
  switch (Op) {
  case BinOp::Add:
    if (A.Hi <= Max - B.Hi)
      return {A.Lo + B.Lo, A.Hi + B.Hi};
    return Interval::top();
  case BinOp::Sub:
    if (A.Lo >= B.Hi)
      return {A.Lo - B.Hi, A.Hi - B.Lo};
    return Interval::top();
  case BinOp::Mul: {
    unsigned __int128 P = (unsigned __int128)A.Hi * B.Hi;
    if (P <= Max)
      return {A.Lo * B.Lo, A.Hi * B.Hi};
    return Interval::top();
  }
  case BinOp::DivU:
    if (B.Lo > 0)
      return {A.Lo / B.Hi, A.Hi / B.Lo};
    return Interval::top(); // Division by zero yields all-ones.
  case BinOp::RemU:
    if (B.Lo > 0) {
      if (A.Hi < B.Lo)
        return A; // x % y = x when x < y.
      return {0, B.Hi - 1};
    }
    return Interval::top();
  case BinOp::And:
    return {0, std::min(A.Hi, B.Hi)};
  case BinOp::Or:
    return {std::max(A.Lo, B.Lo), maskCover(A.Hi) | maskCover(B.Hi)};
  case BinOp::Xor:
    return {0, maskCover(A.Hi) | maskCover(B.Hi)};
  case BinOp::Shl:
    if (B.Lo == B.Hi) {
      unsigned C = unsigned(B.Lo & 63);
      if (A.Hi <= (Max >> C))
        return {A.Lo << C, A.Hi << C};
    }
    return Interval::top();
  case BinOp::LShr:
    if (B.Lo == B.Hi) {
      unsigned C = unsigned(B.Lo & 63);
      return {A.Lo >> C, A.Hi >> C};
    }
    return {0, A.Hi};
  case BinOp::AShr:
    return Interval::top();
  case BinOp::LtU:
    if (A.Hi < B.Lo)
      return Interval::point(1);
    if (A.Lo >= B.Hi)
      return Interval::point(0);
    return {0, 1};
  case BinOp::LtS:
    return {0, 1};
  case BinOp::Eq:
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Interval::point(0);
    if (A.Lo == A.Hi && B.Lo == B.Hi && A.Lo == B.Lo)
      return Interval::point(1);
    return {0, 1};
  case BinOp::Ne:
    if (A.Hi < B.Lo || B.Hi < A.Lo)
      return Interval::point(1);
    if (A.Lo == A.Hi && B.Lo == B.Hi && A.Lo == B.Lo)
      return Interval::point(0);
    return {0, 1};
  }
  return Interval::top();
}

} // namespace

IntervalDomain::State IntervalDomain::entry() const {
  State S;
  for (const std::string &A : Fn.Args) {
    auto It = Abi.ArgTerm.find(A);
    if (It == Abi.ArgTerm.end())
      continue;
    if (auto Ub = Abi.EntryFacts.intervalUpperBound(It->second))
      if (*Ub >= 0)
        S.Env[A] = {0, uint64_t(*Ub)};
  }
  return S;
}

Interval IntervalDomain::eval(const State &St, const Expr &E) const {
  switch (E.kind()) {
  case Expr::Kind::Literal:
    return Interval::point(cast<Literal>(&E)->value());
  case Expr::Kind::Var: {
    auto It = St.Env.find(cast<Var>(&E)->name());
    return It == St.Env.end() ? Interval::top() : It->second;
  }
  case Expr::Kind::Load: {
    unsigned B = sizeBytes(cast<Load>(&E)->size());
    if (B < 8)
      return {0, (uint64_t(1) << (8 * B)) - 1};
    return Interval::top();
  }
  case Expr::Kind::TableGet: {
    const auto *T = cast<TableGet>(&E);
    uint64_t Hi = 0;
    if (const InlineTable *Tab = Fn.findTable(T->table())) {
      for (Word W : Tab->Elements)
        Hi = std::max(Hi, uint64_t(W));
      return {0, Hi};
    }
    return Interval::top();
  }
  case Expr::Kind::Bin: {
    const auto *B = cast<Bin>(&E);
    return evalBinItv(B->op(), eval(St, *B->lhs()), eval(St, *B->rhs()));
  }
  }
  return Interval::top();
}

void IntervalDomain::transfer(const Cfg &, const BasicBlock &,
                              const CfgStmt &S, State &St) const {
  if (S.K != CfgStmt::Kind::Simple) {
    // Stackalloc pointers and exits: the bound local is unconstrained.
    forEachDefVar(S, [&](const std::string &V) { St.Env.erase(V); });
    forEachKillVar(S, [&](const std::string &V) { St.Env.erase(V); });
    return;
  }
  if (const auto *Set = dyn_cast<bedrock::Set>(S.C)) {
    St.Env[Set->name()] = eval(St, *Set->value());
    return;
  }
  forEachDefVar(S, [&](const std::string &V) { St.Env.erase(V); });
  forEachKillVar(S, [&](const std::string &V) { St.Env.erase(V); });
}

std::optional<IntervalDomain::State>
IntervalDomain::edge(const Cfg &, const BasicBlock &B, const State &St,
                     bool Taken) const {
  if (B.T != BasicBlock::Term::Branch)
    return St;
  Interval C = eval(St, *B.Cond);
  if (Taken && C.Hi == 0)
    return std::nullopt; // Condition is constantly false.
  if (!Taken && C.Lo >= 1)
    return std::nullopt; // Condition is constantly true.

  State Out = St;
  auto Refine = [&](const std::string &V, uint64_t Lo, uint64_t Hi) -> bool {
    Interval &I = Out.Env.try_emplace(V, Interval::top()).first->second;
    I.Lo = std::max(I.Lo, Lo);
    I.Hi = std::min(I.Hi, Hi);
    return I.Lo <= I.Hi;
  };
  bool Feasible = true;
  const uint64_t Max = ~uint64_t(0);
  if (const auto *Bin = dyn_cast<bedrock::Bin>(B.Cond)) {
    Interval L = eval(St, *Bin->lhs());
    Interval R = eval(St, *Bin->rhs());
    const auto *LV = dyn_cast<Var>(Bin->lhs());
    const auto *RV = dyn_cast<Var>(Bin->rhs());
    switch (Bin->op()) {
    case BinOp::LtU:
      if (LV)
        Feasible &= Taken ? (R.Hi > 0 && Refine(LV->name(), 0, R.Hi - 1))
                          : Refine(LV->name(), R.Lo, Max);
      if (Feasible && RV)
        Feasible &= Taken ? (L.Lo < Max && Refine(RV->name(), L.Lo + 1, Max))
                          : Refine(RV->name(), 0, L.Hi);
      break;
    case BinOp::Eq:
      if (Taken) {
        if (LV)
          Feasible &= Refine(LV->name(), R.Lo, R.Hi);
        if (Feasible && RV)
          Feasible &= Refine(RV->name(), L.Lo, L.Hi);
      }
      break;
    case BinOp::Ne:
      if (!Taken) {
        if (LV)
          Feasible &= Refine(LV->name(), R.Lo, R.Hi);
        if (Feasible && RV)
          Feasible &= Refine(RV->name(), L.Lo, L.Hi);
      }
      break;
    default:
      break;
    }
  } else if (const auto *V = dyn_cast<Var>(B.Cond)) {
    Feasible &= Taken ? Refine(V->name(), 1, Max) : Refine(V->name(), 0, 0);
  }
  if (!Feasible)
    return std::nullopt;
  return Out;
}

bool IntervalDomain::join(unsigned BlockId, State &Into, const State &From) {
  bool Widen = G.block(BlockId).IsLoopHeader && ++JoinCount[BlockId] > 3;
  bool Changed = false;
  for (auto It = Into.Env.begin(); It != Into.Env.end();) {
    auto F = From.Env.find(It->first);
    if (F == From.Env.end()) {
      It = Into.Env.erase(It);
      Changed = true;
      continue;
    }
    Interval Hull{std::min(It->second.Lo, F->second.Lo),
                  std::max(It->second.Hi, F->second.Hi)};
    if (!(Hull == It->second)) {
      if (Widen) {
        // Widen whichever bound moved to its extreme.
        if (Hull.Lo < It->second.Lo)
          Hull.Lo = 0;
        if (Hull.Hi > It->second.Hi)
          Hull.Hi = ~uint64_t(0);
      }
      if (Hull.isTop()) {
        It = Into.Env.erase(It);
        Changed = true;
        continue;
      }
      It->second = Hull;
      Changed = true;
    }
    ++It;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// SymbolicDomain.
//===----------------------------------------------------------------------===//

void SymState::addFact(const LinTerm &T, const std::string &Reason) {
  Facts.emplace(T.str(), std::make_pair(T, Reason));
}

solver::FactDb SymbolicDomain::materialize(const State &St) const {
  solver::FactDb Db;
  for (const auto &[Key, Row] : St.Facts)
    Db.addGe0(Row.first, Row.second);
  return Db;
}

void SymbolicDomain::addFact(SymState &St, solver::FactDb &Db,
                             const LinTerm &T, const std::string &Reason) {
  St.addFact(T, Reason);
  Db.addGe0(T, Reason);
}

AbsVal SymbolicDomain::opaque(SymState &St, solver::FactDb &Db, EvalCtx &Ctx,
                              const std::string &Reason) const {
  LinTerm T = ls(Ctx.fresh());
  addFact(St, Db, T, Reason + " (word is nonnegative)");
  return AbsVal::scalar(std::move(T));
}

SymbolicDomain::State SymbolicDomain::entry() const {
  State S;
  for (const std::string &A : Fn.Args) {
    auto R = Abi.ArgRegion.find(A);
    if (R != Abi.ArgRegion.end()) {
      S.Env[A] = AbsVal::ptr(R->second, lc(0));
      continue;
    }
    auto T = Abi.ArgTerm.find(A);
    S.Env[A] =
        AbsVal::scalar(T != Abi.ArgTerm.end() ? T->second : ls(A));
  }
  Abi.EntryFacts.forEachFact([&](const LinTerm &T, const std::string &R) {
    S.addFact(T, R);
  });
  return S;
}

AbsVal SymbolicDomain::eval(SymState &St, solver::FactDb &Db, const Expr &E,
                            EvalCtx &Ctx) const {
  switch (E.kind()) {
  case Expr::Kind::Literal: {
    Word V = cast<Literal>(&E)->value();
    if (V <= Word(INT64_MAX))
      return AbsVal::scalar(lc(int64_t(V)));
    // Constants above int64 range become named opaque symbols; the name is
    // keyed by the value so repeated uses compare equal.
    LinTerm T = ls("k$" + hexStr(V));
    St.addFact(T, "literal constant is nonnegative");
    Db.addGe0(T, "literal constant is nonnegative");
    return AbsVal::scalar(std::move(T));
  }
  case Expr::Kind::Var: {
    auto It = St.Env.find(cast<Var>(&E)->name());
    if (It != St.Env.end())
      return It->second;
    // Possibly-undefined local (the init checker reports it); model it as
    // an arbitrary word so analysis of the rest stays sound.
    return opaque(St, Db, Ctx, "read of unbound local");
  }
  case Expr::Kind::Load: {
    const auto *L = cast<Load>(&E);
    AbsVal A = eval(St, Db, *L->addr(), Ctx);
    unsigned Bytes = sizeBytes(L->size());
    if (Sink)
      Sink(Access{Access::Kind::Load, Ctx.Site, &E, A, Bytes, nullptr}, St,
           Db);
    AbsVal V = opaque(St, Db, Ctx, "loaded value");
    if (Bytes < 8)
      addFact(St, Db, lc(int64_t((uint64_t(1) << (8 * Bytes)) - 1)) - V.T,
              "load" + std::to_string(Bytes) + " is zero-extended");
    return V;
  }
  case Expr::Kind::TableGet: {
    const auto *T = cast<TableGet>(&E);
    AbsVal I = eval(St, Db, *T->index(), Ctx);
    const InlineTable *Tab = Fn.findTable(T->table());
    if (Sink)
      Sink(Access{Access::Kind::Table, Ctx.Site, &E, I,
                  sizeBytes(T->size()), Tab},
           St, Db);
    AbsVal V = opaque(St, Db, Ctx, "table element");
    if (Tab) {
      uint64_t Hi = 0;
      for (Word W : Tab->Elements)
        Hi = std::max(Hi, uint64_t(W));
      if (Hi <= uint64_t(INT64_MAX))
        addFact(St, Db, lc(int64_t(Hi)) - V.T,
                "max element of table " + Tab->Name);
    }
    return V;
  }
  case Expr::Kind::Bin:
    return evalBin(St, Db, *cast<Bin>(&E), Ctx);
  }
  return opaque(St, Db, Ctx, "unknown expression");
}

AbsVal SymbolicDomain::evalBin(SymState &St, solver::FactDb &Db, const Bin &E,
                               EvalCtx &Ctx) const {
  AbsVal A = eval(St, Db, *E.lhs(), Ctx);
  AbsVal B = eval(St, Db, *E.rhs(), Ctx);
  const int64_t Cap = int64_t(1) << 62; // No-wraparound envelope.
  bool APtr = A.K == AbsVal::Kind::Ptr, BPtr = B.K == AbsVal::Kind::Ptr;

  // Pointer arithmetic: offsets stay exact (and nonnegative — subtraction
  // is only tracked when provably within the region's prefix).
  if (E.op() == BinOp::Add && APtr != BPtr) {
    const AbsVal &P = APtr ? A : B;
    const AbsVal &S = APtr ? B : A;
    return AbsVal::ptr(P.Region, P.T + S.T);
  }
  if (E.op() == BinOp::Sub && APtr && !BPtr) {
    if (Db.entailsLe(B.T, A.T))
      return AbsVal::ptr(A.Region, A.T - B.T);
    return opaque(St, Db, Ctx, "pointer minus unbounded offset");
  }
  if (APtr || BPtr)
    return opaque(St, Db, Ctx, "non-additive pointer arithmetic");

  switch (E.op()) {
  case BinOp::Add:
    if (Db.probeLe(A.T + B.T, lc(Cap)))
      return AbsVal::scalar(A.T + B.T);
    {
      AbsVal V = opaque(St, Db, Ctx, "possibly wrapping add");
      addFact(St, Db, A.T + B.T - V.T, "(x + y) mod 2^64 <= x + y");
      return V;
    }
  case BinOp::Sub:
    if (Db.entailsLe(B.T, A.T))
      return AbsVal::scalar(A.T - B.T);
    return opaque(St, Db, Ctx, "possibly wrapping sub");
  case BinOp::Mul: {
    const LinTerm *V = nullptr;
    int64_t C = 0;
    if (A.T.isConstant()) {
      C = A.T.constPart();
      V = &B.T;
    } else if (B.T.isConstant()) {
      C = B.T.constPart();
      V = &A.T;
    }
    if (V && C == 0)
      return AbsVal::scalar(lc(0));
    if (V && C > 0 && C <= (int64_t(1) << 20)) {
      LinTerm S = V->scaled(C);
      if (Db.probeLe(S, lc(Cap)))
        return AbsVal::scalar(std::move(S));
    }
    return opaque(St, Db, Ctx, "nonlinear or possibly wrapping multiply");
  }
  case BinOp::Shl:
  case BinOp::DivU:
  case BinOp::LShr: {
    if (!B.T.isConstant())
      return opaque(St, Db, Ctx, "shift/div by non-constant");
    int64_t C = B.T.constPart();
    int64_t F;
    if (E.op() == BinOp::DivU) {
      if (C <= 0)
        return opaque(St, Db, Ctx, "division by zero or huge constant");
      F = C;
    } else {
      unsigned Sh = unsigned(uint64_t(C) & 63);
      if (Sh == 0)
        return A;
      if (Sh > 61)
        return opaque(St, Db, Ctx, "shift by large constant");
      F = int64_t(1) << Sh;
    }
    if (E.op() == BinOp::Shl) {
      if (F <= (int64_t(1) << 20)) {
        LinTerm S = A.T.scaled(F);
        if (Db.probeLe(S, lc(Cap)))
          return AbsVal::scalar(std::move(S));
      }
      return opaque(St, Db, Ctx, "possibly wrapping shift");
    }
    if (F > (int64_t(1) << 32))
      return opaque(St, Db, Ctx, "divisor too large to track");
    // t = a / F exactly: F·t ≤ a ≤ F·t + (F − 1).
    AbsVal V = opaque(St, Db, Ctx, "truncating division");
    addFact(St, Db, A.T - V.T.scaled(F), "F * (a / F) <= a");
    addFact(St, Db, V.T.scaled(F) + lc(F - 1) - A.T, "a <= F * (a/F) + F-1");
    return V;
  }
  case BinOp::RemU: {
    if (B.T.isConstant() && B.T.constPart() > 0) {
      int64_t C = B.T.constPart();
      AbsVal V = opaque(St, Db, Ctx, "remainder");
      addFact(St, Db, lc(C - 1) - V.T, "x % c <= c - 1");
      addFact(St, Db, A.T - V.T, "x % c <= x");
      return V;
    }
    return opaque(St, Db, Ctx, "remainder by non-constant");
  }
  case BinOp::And: {
    AbsVal V = opaque(St, Db, Ctx, "bitwise and");
    addFact(St, Db, A.T - V.T, "x & y <= x");
    addFact(St, Db, B.T - V.T, "x & y <= y");
    return V;
  }
  case BinOp::Or: {
    AbsVal V = opaque(St, Db, Ctx, "bitwise or");
    addFact(St, Db, A.T + B.T - V.T, "x | y <= x + y");
    addFact(St, Db, V.T - A.T, "x <= x | y");
    addFact(St, Db, V.T - B.T, "y <= x | y");
    return V;
  }
  case BinOp::Xor: {
    AbsVal V = opaque(St, Db, Ctx, "bitwise xor");
    addFact(St, Db, A.T + B.T - V.T, "x ^ y <= x + y");
    return V;
  }
  case BinOp::AShr:
    return opaque(St, Db, Ctx, "arithmetic shift");
  case BinOp::LtU:
    if (Db.entailsLt(A.T, B.T))
      return AbsVal::scalar(lc(1));
    if (Db.entailsLe(B.T, A.T))
      return AbsVal::scalar(lc(0));
    break;
  case BinOp::Eq:
    if (Db.entailsLe(A.T, B.T) && Db.entailsLe(B.T, A.T))
      return AbsVal::scalar(lc(1));
    if (Db.entailsLt(A.T, B.T) || Db.entailsLt(B.T, A.T))
      return AbsVal::scalar(lc(0));
    break;
  case BinOp::Ne:
    if (Db.entailsLt(A.T, B.T) || Db.entailsLt(B.T, A.T))
      return AbsVal::scalar(lc(1));
    if (Db.entailsLe(A.T, B.T) && Db.entailsLe(B.T, A.T))
      return AbsVal::scalar(lc(0));
    break;
  case BinOp::LtS:
    break;
  }
  // Comparison with unknown outcome: a 0/1 word.
  AbsVal V = opaque(St, Db, Ctx, "comparison result");
  addFact(St, Db, lc(1) - V.T, "comparisons yield 0 or 1");
  return V;
}

void SymbolicDomain::transfer(const Cfg &, const BasicBlock &,
                              const CfgStmt &S, State &St) const {
  switch (S.K) {
  case CfgStmt::Kind::StackEnter: {
    const auto *SA = cast<Stackalloc>(S.C);
    int R = Abi.StackRegion.at(S.C);
    St.DeadRegions.erase(R); // Re-entered on each loop iteration.
    St.Env[SA->name()] = AbsVal::ptr(R, lc(0));
    return;
  }
  case CfgStmt::Kind::StackExit: {
    const auto *SA = cast<Stackalloc>(S.C);
    St.DeadRegions.insert(Abi.StackRegion.at(S.C));
    St.Env.erase(SA->name());
    return;
  }
  case CfgStmt::Kind::Simple:
    break;
  }

  solver::FactDb Db = materialize(St);
  EvalCtx Ctx{S.Path, 0};
  switch (S.C->kind()) {
  case Cmd::Kind::Set: {
    const auto *C = cast<Set>(S.C);
    St.Env[C->name()] = eval(St, Db, *C->value(), Ctx);
    return;
  }
  case Cmd::Kind::Unset:
    St.Env.erase(cast<Unset>(S.C)->name());
    return;
  case Cmd::Kind::Store: {
    const auto *C = cast<Store>(S.C);
    AbsVal A = eval(St, Db, *C->addr(), Ctx);
    eval(St, Db, *C->value(), Ctx);
    if (Sink)
      Sink(Access{Access::Kind::Store, S.Path, nullptr, A,
                  sizeBytes(C->size()), nullptr},
           St, Db);
    // Memory contents are not modeled, so no state update is needed.
    return;
  }
  case Cmd::Kind::Call: {
    const auto *C = cast<Call>(S.C);
    for (const ExprPtr &A : C->args())
      eval(St, Db, *A, Ctx);
    for (const std::string &R : C->rets())
      St.Env[R] = opaque(St, Db, Ctx, "result of call to " + C->callee());
    return;
  }
  case Cmd::Kind::Interact: {
    const auto *C = cast<Interact>(S.C);
    for (const ExprPtr &A : C->args())
      eval(St, Db, *A, Ctx);
    for (const std::string &R : C->rets())
      St.Env[R] = opaque(St, Db, Ctx, "environment-chosen result");
    return;
  }
  default:
    assert(false && "structured command in CFG statement list");
    return;
  }
}

/// Syntactic booleans: comparisons and conjunctions thereof. On a taken
/// And-of-booleans each conjunct must itself be true (the compiler emits
/// `(i <u len) & (brk == 0)` for early-exit folds).
static bool isBoolish(const Expr &E) {
  const auto *B = dyn_cast<Bin>(&E);
  if (!B)
    return false;
  switch (B->op()) {
  case BinOp::LtU:
  case BinOp::LtS:
  case BinOp::Eq:
  case BinOp::Ne:
    return true;
  case BinOp::And:
    return isBoolish(*B->lhs()) && isBoolish(*B->rhs());
  default:
    return false;
  }
}

void SymbolicDomain::refine(SymState &St, solver::FactDb &Db,
                            const Expr &Cond, bool Taken,
                            EvalCtx &Ctx) const {
  if (const auto *B = dyn_cast<Bin>(&Cond)) {
    switch (B->op()) {
    case BinOp::LtU: {
      AbsVal L = eval(St, Db, *B->lhs(), Ctx);
      AbsVal R = eval(St, Db, *B->rhs(), Ctx);
      if (L.K != AbsVal::Kind::Scalar || R.K != AbsVal::Kind::Scalar)
        return;
      if (Taken)
        addFact(St, Db, R.T - L.T - lc(1), "branch: a <u b");
      else
        addFact(St, Db, L.T - R.T, "branch: !(a <u b)");
      return;
    }
    case BinOp::Eq:
    case BinOp::Ne: {
      AbsVal L = eval(St, Db, *B->lhs(), Ctx);
      AbsVal R = eval(St, Db, *B->rhs(), Ctx);
      if (L.K != AbsVal::Kind::Scalar || R.K != AbsVal::Kind::Scalar)
        return;
      bool WantEq = (B->op() == BinOp::Eq) == Taken;
      if (WantEq) {
        addFact(St, Db, L.T - R.T, "branch: a = b");
        addFact(St, Db, R.T - L.T, "branch: a = b");
      } else {
        // a ≠ b is not affine, but with one side zero and the other a
        // nonnegative word it tightens to ≥ 1.
        if (R.T.isConstant() && R.T.constPart() == 0)
          addFact(St, Db, L.T - lc(1), "branch: a != 0");
        else if (L.T.isConstant() && L.T.constPart() == 0)
          addFact(St, Db, R.T - lc(1), "branch: b != 0");
      }
      return;
    }
    case BinOp::And:
      if (Taken && isBoolish(*B->lhs()) && isBoolish(*B->rhs())) {
        refine(St, Db, *B->lhs(), true, Ctx);
        refine(St, Db, *B->rhs(), true, Ctx);
        return;
      }
      break;
    default:
      break;
    }
  }
  // Generic truthiness: a taken condition is a word ≥ 1, a fallen-through
  // one is exactly 0.
  AbsVal V = eval(St, Db, Cond, Ctx);
  if (V.K != AbsVal::Kind::Scalar)
    return;
  if (Taken)
    addFact(St, Db, V.T - lc(1), "branch: condition is nonzero");
  else
    addFact(St, Db, lc(0) - V.T, "branch: condition is zero");
}

std::optional<SymbolicDomain::State>
SymbolicDomain::edge(const Cfg &, const BasicBlock &B, const State &St,
                     bool Taken) const {
  if (B.T != BasicBlock::Term::Branch)
    return St;
  State Out = St;
  solver::FactDb Db = materialize(Out);
  EvalCtx Ctx{B.CondPath, 0};
  refine(Out, Db, *B.Cond, Taken, Ctx);
  if (Db.inconsistent())
    return std::nullopt;
  return Out;
}

/// Structural equality of abstract states: same variables bound to the
/// same terms, same fact keys, same dead regions. Fact reasons are
/// ignored — they are commentary, not meaning.
static bool SymStatesEqual(const SymState &X, const SymState &Y) {
  if (X.Env.size() != Y.Env.size() || X.Facts.size() != Y.Facts.size() ||
      X.DeadRegions != Y.DeadRegions)
    return false;
  for (auto XI = X.Env.begin(), YI = Y.Env.begin(); XI != X.Env.end();
       ++XI, ++YI)
    if (XI->first != YI->first || !XI->second.sameAs(YI->second))
      return false;
  for (auto XI = X.Facts.begin(), YI = Y.Facts.begin(); XI != X.Facts.end();
       ++XI, ++YI)
    if (XI->first != YI->first)
      return false;
  return true;
}

bool SymbolicDomain::join(unsigned BlockId, State &Into,
                          const State &From) const {
  // Change detection is by comparison against a snapshot, not by tracking
  // the individual merge steps: the fact intersection below always deletes
  // this block's own phi facts (the incoming state talks about *its*
  // symbols, never about phi$b<BlockId>$...) and the re-add step restores
  // them, a net no-op that incremental tracking would misreport as a
  // change on every visit — and the fixpoint loop would never terminate.
  const State Before = Into;

  for (auto It = Into.Env.begin(); It != Into.Env.end();) {
    auto F = From.Env.find(It->first);
    if (F == From.Env.end()) {
      It = Into.Env.erase(It);
      continue;
    }
    const AbsVal &A = It->second;
    const AbsVal &B = F->second;
    if (!A.sameAs(B)) {
      // Deterministic phi naming keyed by (block, variable): re-joining
      // reproduces the same symbol, so iteration reaches a fixpoint.
      std::string Phi = "phi$b" + std::to_string(BlockId) + "$" + It->first;
      auto IsThisPhi = [&Phi](const solver::LinTerm &T) {
        const auto &Cs = T.coeffs();
        return T.constPart() == 0 && Cs.size() == 1 &&
               Cs.begin()->second == 1 && Cs.begin()->first == Phi;
      };
      // Trivial-phi collapse (phi(x, self) = x): a side carrying exactly
      // this block's own phi symbol went around a loop without touching
      // the variable — its value *is* whatever the other side brings in.
      // Without this, one transiently-minted phi at a loop header keeps
      // the two sides unequal on every subsequent visit.
      if (IsThisPhi(B.T)) {
        ++It;
        continue;
      }
      if (IsThisPhi(A.T)) {
        It->second = B;
        ++It;
        continue;
      }
      It->second = (A.K == AbsVal::Kind::Ptr && B.K == AbsVal::Kind::Ptr &&
                    A.Region == B.Region)
                       ? AbsVal::ptr(A.Region, ls(Phi))
                       : AbsVal::scalar(ls(Phi));
    }
    ++It;
  }

  // Keep only facts established on both incoming paths.
  for (auto It = Into.Facts.begin(); It != Into.Facts.end();) {
    if (From.Facts.count(It->first))
      ++It;
    else
      It = Into.Facts.erase(It);
  }

  // Every phi of this block denotes some word value (scalars) or some
  // by-construction-nonnegative byte offset (pointers): ≥ 0 holds either
  // way. Re-added after the intersection so it survives one-sided joins.
  std::string Prefix = "phi$b" + std::to_string(BlockId) + "$";
  for (const auto &[Name, V] : Into.Env) {
    const auto &Coeffs = V.T.coeffs();
    if (Coeffs.size() == 1 && V.T.constPart() == 0 &&
        Coeffs.begin()->second == 1 &&
        Coeffs.begin()->first == Prefix + Name)
      Into.addFact(V.T, "merged value is a word / in-bounds offset");
  }

  for (int R : From.DeadRegions)
    Into.DeadRegions.insert(R);

  return !SymStatesEqual(Into, Before);
}

bool SymbolicDomain::same(const State &X, const State &Y) const {
  return SymStatesEqual(X, Y);
}

} // namespace analysis
} // namespace relc
