file(REMOVE_RECURSE
  "CMakeFiles/relc_stackm.dir/StackMachine.cpp.o"
  "CMakeFiles/relc_stackm.dir/StackMachine.cpp.o.d"
  "librelc_stackm.a"
  "librelc_stackm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_stackm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
