//===- cert/Binary.h - Zero-copy binary certificate image -------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A versioned, relocatable binary encoding of cert::Certificate — the warm
// path's alternative to the canonical JSON. The JSON stays the compat and
// review format (Writer.h/Reader.h); the binary image exists so a warm
// relc-check / relc-gen run can load a certificate with one read and a
// bounds-checked walk instead of a parse-and-allocate storm. The two
// formats must round-trip to the same Certificate (CI and the rederive
// suite enforce that they produce identical verdicts).
//
// Image layout (all integers little-endian, position-independent — every
// reference is an offset from the image start, never a pointer):
//
//   [ 0..8)   magic "RELCCERT"
//   [ 8..12)  u32 container format version (kBinFormatVersion)
//   [12..16)  u32 certificate schema version (cert::kSchemaVersion)
//   [16..24)  u64 total image size in bytes
//   [24..48)  u64 model / spec / code content hashes
//   [48..64)  u64 records region (offset, length)
//   [64..80)  u64 string table (offset, length)
//   records:  fixed-width fields in schema order; strings are (u32 offset,
//             u32 length) slices of the string table (deduplicated, so
//             equal Certificates serialize byte-identically)
//   strings:  raw bytes, no terminators
//   [-8..)    u64 integrity = FNV-1a over every preceding byte
//
// Trust story (DESIGN.md §4.10): a mapped image is *untrusted input*. The
// reader verifies magic, versions, the declared size, and the trailing
// integrity hash before touching a single record, and every slice read —
// record cursor advance or string reference — is bounds-checked against
// the declared regions. Any lie is a named rejection (truncated-image /
// bad-magic / unknown-schema-version / integrity-mismatch /
// offset-out-of-range), and a rejection is never an acceptance: callers
// fall back to re-deriving, not to trusting.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CERT_BINARY_H
#define RELC_CERT_BINARY_H

#include "cert/Reader.h"

#include <optional>
#include <string>
#include <string_view>

namespace relc {
namespace cert {

/// Leading magic of every binary certificate image.
constexpr char kBinMagic[8] = {'R', 'E', 'L', 'C', 'C', 'E', 'R', 'T'};

/// Container format version this toolchain writes (bumped only when the
/// image layout changes; the certificate schema is versioned separately).
constexpr uint32_t kBinFormatVersion = 1;

/// File extension relc-gen writes binary certificates under.
constexpr const char *kBinExtension = ".certbin";

class BinWriter {
public:
  /// The canonical binary image for \p C: deterministic byte-for-byte for
  /// a given Certificate (fixed field order, first-occurrence-deduplicated
  /// string table), so warm runs and -j N runs reproduce cold -j 1 output
  /// exactly, matching the JSON writer's byte-identity contract.
  static std::string write(const Certificate &C);
};

class BinReader {
public:
  /// Decodes \p Image, verifying magic, version, declared size, and the
  /// trailing integrity hash, and bounds-checking every record and string
  /// reference. On failure \p Err (if given) carries one of the named
  /// binary rejections; the partial decode is discarded.
  static std::optional<Certificate> parse(std::string_view Image,
                                          ReadError *Err = nullptr);

  /// Maps (POSIX mmap, falling back to a buffered read) and decodes
  /// \p Path. MissingCertificate if the file cannot be opened.
  static std::optional<Certificate> readFile(const std::string &Path,
                                             ReadError *Err = nullptr);
};

} // namespace cert
} // namespace relc

#endif // RELC_CERT_BINARY_H
