//===- validate/Validate.cpp - Derivation replay + certification -----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "validate/Validate.h"

#include "analysis/Analysis.h"
#include "pipeline/Scheduler.h"
#include "support/Budget.h"
#include "support/Fault.h"
#include "support/StringExtras.h"
#include "tv/Tv.h"

#include <algorithm>
#include <set>

namespace relc {
namespace validate {

using ir::Value;

//===----------------------------------------------------------------------===//
// Layer 1: derivation replay.
//===----------------------------------------------------------------------===//

namespace {

const std::set<std::string> &trustedRules() {
  static const std::set<std::string> Rules = {
      // Statement lemmas.
      "compile_fn", "compile_fn_return", "compile_let", "compile_arrayput",
      "compile_map_inplace", "compile_fold", "compile_fold_break",
      "compile_ranged_for",
      "compile_while", "compile_cond", "compile_stack",
      "compile_stack_uninit", "compile_cell_get", "compile_cell_put",
      "compile_cell_iadd", "compile_nondet_alloc", "compile_nondet_peek",
      "compile_io_read", "compile_io_write", "compile_writer_tell",
      "compile_call", "compile_copy",
      // Structural derivation nodes.
      "map_body", "fold_body", "fold_break_cond", "ranged_for_body",
      "while_body", "while_cond",
      "cond_then", "cond_else",
      // Expression lemmas.
      "expr_compile_literal", "expr_compile_var", "expr_compile_binop",
      "expr_compile_cast", "expr_compile_select", "expr_compile_arrayget",
      "expr_compile_inlinetable_get"};
  return Rules;
}

const std::set<std::string> &loopLikeRules() {
  static const std::set<std::string> Rules = {
      "compile_map_inplace", "compile_fold", "compile_fold_break",
      "compile_ranged_for", "compile_while", "compile_cond"};
  return Rules;
}

Status walkDeriv(const core::DerivNode &N, unsigned *BoundsConds) {
  if (!trustedRules().count(N.Rule))
    return Error("derivation replay: unknown rule '" + N.Rule +
                 "' (not in the trusted schema set)");
  if (loopLikeRules().count(N.Rule)) {
    bool HasTemplate =
        std::any_of(N.Notes.begin(), N.Notes.end(), [](const std::string &S) {
          return S.find("template") != std::string::npos;
        });
    if (!HasTemplate)
      return Error("derivation replay: rule '" + N.Rule +
                   "' lacks an inferred invariant template");
  }
  for (const std::string &S : N.SideConds)
    if (S.find("(bounds of") != std::string::npos)
      ++*BoundsConds;
  for (const auto &C : N.Children) {
    Status Ok = walkDeriv(*C, BoundsConds);
    if (!Ok)
      return Ok;
  }
  return Status::success();
}

/// Counts memory accesses requiring bounds proofs in an expression.
unsigned countExprAccesses(const ir::Expr &E) {
  switch (E.kind()) {
  case ir::Expr::Kind::Const:
  case ir::Expr::Kind::VarRef:
    return 0;
  case ir::Expr::Kind::Bin: {
    const auto *B = cast<ir::Bin>(&E);
    return countExprAccesses(*B->lhs()) + countExprAccesses(*B->rhs());
  }
  case ir::Expr::Kind::Select: {
    const auto *S = cast<ir::Select>(&E);
    return countExprAccesses(*S->cond()) + countExprAccesses(*S->thenExpr()) +
           countExprAccesses(*S->elseExpr());
  }
  case ir::Expr::Kind::Cast:
    return countExprAccesses(*cast<ir::Cast>(&E)->operand());
  case ir::Expr::Kind::ArrayGet:
    return 1 + countExprAccesses(*cast<ir::ArrayGet>(&E)->index());
  case ir::Expr::Kind::TableGet:
    return 1 + countExprAccesses(*cast<ir::TableGet>(&E)->index());
  }
  return 0;
}

unsigned countProgAccesses(const ir::Prog &P);

unsigned countBoundAccesses(const ir::BoundForm &F) {
  using K = ir::BoundForm::Kind;
  switch (F.kind()) {
  case K::PureVal:
    return countExprAccesses(*cast<ir::PureVal>(&F)->expr());
  case K::ArrayPut: {
    const auto *A = cast<ir::ArrayPut>(&F);
    return 1 + countExprAccesses(*A->index()) + countExprAccesses(*A->val());
  }
  case K::ListMap:
    return countExprAccesses(*cast<ir::ListMap>(&F)->body());
  case K::ListFold: {
    const auto *L = cast<ir::ListFold>(&F);
    return countExprAccesses(*L->init()) + countExprAccesses(*L->body());
  }
  case K::FoldBreak: {
    const auto *L = cast<ir::FoldBreak>(&F);
    return countExprAccesses(*L->init()) + countExprAccesses(*L->body()) +
           countExprAccesses(*L->breakCond());
  }
  case K::RangeFold: {
    const auto *R = cast<ir::RangeFold>(&F);
    unsigned N = countExprAccesses(*R->lo()) + countExprAccesses(*R->hi());
    for (const ir::AccInit &A : R->accs())
      N += countExprAccesses(*A.Init);
    return N + countProgAccesses(*R->body());
  }
  case K::WhileComb: {
    const auto *W = cast<ir::WhileComb>(&F);
    unsigned N = countExprAccesses(*W->cond());
    for (const ir::AccInit &A : W->accs())
      N += countExprAccesses(*A.Init);
    return N + countProgAccesses(*W->body());
  }
  case K::IfBound: {
    const auto *I = cast<ir::IfBound>(&F);
    return countExprAccesses(*I->cond()) + countProgAccesses(*I->thenProg()) +
           countProgAccesses(*I->elseProg());
  }
  case K::IoWrite:
    return countExprAccesses(*cast<ir::IoWrite>(&F)->expr());
  case K::WriterTell:
    return countExprAccesses(*cast<ir::WriterTell>(&F)->expr());
  case K::CellPut:
    return countExprAccesses(*cast<ir::CellPut>(&F)->expr());
  case K::CellIncr:
    return countExprAccesses(*cast<ir::CellIncr>(&F)->expr());
  case K::ExternCall: {
    unsigned N = 0;
    for (const ir::ExprPtr &A : cast<ir::ExternCall>(&F)->args())
      N += countExprAccesses(*A);
    return N;
  }
  default:
    return 0;
  }
}

unsigned countProgAccesses(const ir::Prog &P) {
  unsigned N = 0;
  for (const ir::Binding &B : P.bindings())
    N += countBoundAccesses(*B.Bound);
  return N;
}

} // namespace

Status replayDerivation(const ir::SourceFn &Fn,
                        const core::CompileResult &Compiled) {
  if (!Compiled.Proof)
    return Error("derivation replay: no proof witness attached");
  unsigned BoundsConds = 0;
  Status Walk = walkDeriv(*Compiled.Proof, &BoundsConds);
  if (!Walk)
    return Walk;
  unsigned Accesses = countProgAccesses(*Fn.Body);
  if (BoundsConds != Accesses)
    return Error("derivation replay: the source performs " +
                 std::to_string(Accesses) +
                 " bounds-checked memory accesses but the witness records " +
                 std::to_string(BoundsConds) +
                 " discharged bounds side conditions");
  // The root must record the monad under which the lifts were applied.
  bool HasMonad = std::any_of(
      Compiled.Proof->Notes.begin(), Compiled.Proof->Notes.end(),
      [&](const std::string &S) {
        return S == "monad: " + std::string(ir::monadName(Fn.TheMonad));
      });
  if (!HasMonad)
    return Error("derivation replay: witness does not record the model's "
                 "ambient monad");
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Layers 2 and 3: static analysis + differential certification.
//===----------------------------------------------------------------------===//

// defaultInputs lives in Inputs.cpp: program definitions reference it
// from their custom generators, and keeping it out of this translation
// unit keeps the TV driver out of binaries that only link the program
// registry (the independent checker's no-driver guarantee).

namespace {

/// Serializes a list value to raw little-endian bytes per its element kind.
std::vector<uint8_t> listBytes(const Value &L) {
  std::vector<uint8_t> Out;
  unsigned N = ir::eltSize(L.listElt());
  for (const Value &E : L.elems()) {
    uint64_t W = E.scalar();
    for (unsigned I = 0; I < N; ++I)
      Out.push_back(uint8_t(W >> (8 * I)));
  }
  return Out;
}

int paramIndex(const ir::SourceFn &Fn, const std::string &Name) {
  for (size_t I = 0; I < Fn.Params.size(); ++I)
    if (Fn.Params[I].Name == Name)
      return int(I);
  return -1;
}

int returnIndex(const ir::SourceFn &Fn, const std::string &Name) {
  const auto &Rets = Fn.Body->returns();
  for (size_t I = 0; I < Rets.size(); ++I)
    if (Rets[I] == Name)
      return int(I);
  return -1;
}

/// Runs one differential vector. \p VecTag identifies it in errors. When
/// the vector fails *because of an injected fault* (not a genuine
/// divergence), \p InjectedFault is set so the caller can classify the
/// failure as degraded rather than genuine.
Status runVector(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                 const bedrock::Module &Linked,
                 const ValidationOptions &Opts, std::vector<Value> Inputs,
                 const std::vector<uint64_t> &Tape, uint64_t SrcSeed,
                 uint64_t TgtSeed, const std::string &VecTag,
                 bool *InjectedFault = nullptr) {
  // Enforce the requires clause: length arguments equal their array's
  // length (inputs violating the precondition are out of contract).
  for (const sep::ArgSpec &A : Spec.Args) {
    if (A.TheKind != sep::ArgSpec::Kind::ArrayLen)
      continue;
    int LenIdx = paramIndex(Fn, A.SourceName);
    int ArrIdx = paramIndex(Fn, A.OfArray);
    Inputs[LenIdx] = Value::word(Inputs[ArrIdx].elems().size());
  }

  //--- Source semantics.
  ir::EffectCtx SrcCtx;
  SrcCtx.Nondet = Rng(SrcSeed);
  SrcCtx.InputTape = Tape;
  if (!Opts.CalleeModels.empty()) {
    SrcCtx.ExternSem = [&](const std::string &Callee,
                           const std::vector<Value> &Args)
        -> Result<std::vector<Value>> {
      auto It = Opts.CalleeModels.find(Callee);
      if (It == Opts.CalleeModels.end())
        return Error("no source model registered for callee '" + Callee +
                     "'");
      ir::EffectCtx Pure;
      return ir::evalFn(*It->second, Args, Pure);
    };
  }
  Result<std::vector<Value>> SrcOut = ir::evalFn(Fn, Inputs, SrcCtx);
  if (!SrcOut)
    return SrcOut.takeError().note("source semantics failed on vector " +
                                   VecTag);

  //--- Target semantics.
  bedrock::State St;
  std::map<std::string, bedrock::Word> ArrayBase, CellBase;
  std::vector<bedrock::Word> Args;
  for (const sep::ArgSpec &A : Spec.Args) {
    int PIdx = paramIndex(Fn, A.SourceName);
    const Value &V = Inputs[PIdx];
    switch (A.TheKind) {
    case sep::ArgSpec::Kind::Scalar:
    case sep::ArgSpec::Kind::ArrayLen:
      Args.push_back(V.asWord());
      break;
    case sep::ArgSpec::Kind::ArrayPtr: {
      std::vector<uint8_t> Bytes = listBytes(V);
      bedrock::Word Base = St.Mem.alloc(Bytes.size());
      Status F = St.Mem.fill(Base, Bytes);
      if (!F)
        return F;
      ArrayBase[A.SourceName] = Base;
      Args.push_back(Base);
      break;
    }
    case sep::ArgSpec::Kind::CellPtr: {
      bedrock::Word Base = St.Mem.alloc(8);
      Status S = St.Mem.storeN(bedrock::AccessSize::Eight, Base,
                               V.elems()[0].asWord());
      if (!S)
        return S;
      CellBase[A.SourceName] = Base;
      Args.push_back(Base);
      break;
    }
    }
  }
  // Frame canary: unrelated memory the callee must not touch.
  Rng CanaryRng(TgtSeed ^ 0xabcdef);
  std::vector<uint8_t> Canary = CanaryRng.bytes(64);
  bedrock::Word CanaryBase = St.Mem.alloc(64);
  Status CF = St.Mem.fill(CanaryBase, Canary);
  if (!CF)
    return CF;
  size_t BaselineAllocs = St.Mem.liveAllocations();

  bedrock::TapeEnv Env(Tape);
  bedrock::ExecOptions EO;
  EO.NondetSeed = TgtSeed;
  if (Opts.InterpFuel)
    EO.Fuel = Opts.InterpFuel;
  // Fault site: starve the interpreter of fuel. Transient hits are
  // absorbed by the retry allowance (no starvation happens); a persistent
  // hit starves the run, and the fuel diagnostic below names the injection.
  std::optional<fault::Hit> FuelFault =
      fault::fireWithRetry(fault::Site::InterpFuel, Spec.TargetName);
  if (FuelFault)
    EO.Fuel = FuelFault->Value ? FuelFault->Value : 16;
  bedrock::Interp Interp(Linked, Env, EO);
  Result<std::vector<bedrock::Word>> Rets =
      Interp.callFunction(St, Spec.TargetName, Args);
  if (!Rets) {
    Error E = Rets.takeError();
    if (Interp.hitFuelLimit()) {
      // Name the starvation: an out-of-fuel run is indistinguishable from
      // divergence to the caller otherwise, and graceful degradation
      // requires the budget (and any injected fault) to be identifiable.
      E.note("the Bedrock2 interpreter exhausted its fuel budget (" +
             std::to_string(EO.Fuel) + " steps)");
      if (FuelFault) {
        E.note(FuelFault->describe());
        if (InjectedFault)
          *InjectedFault = true;
      }
    }
    return E.note("target semantics failed on vector " + VecTag);
  }

  //--- Collect target outputs.
  TargetOutputs Out;
  Out.Rets = *Rets;
  Out.Tr = St.Tr;
  for (const auto &[Name, Base] : ArrayBase) {
    int PIdx = paramIndex(Fn, Name);
    std::vector<uint8_t> OrigBytes = listBytes(Inputs[PIdx]);
    Result<std::vector<uint8_t>> Now = St.Mem.read(Base, OrigBytes.size());
    if (!Now)
      return Now.takeError();
    Out.FinalArrays[Name] = Now.take();
  }
  for (const auto &[Name, Base] : CellBase) {
    Result<bedrock::Word> W = St.Mem.loadN(bedrock::AccessSize::Eight, Base);
    if (!W)
      return W.takeError();
    Out.FinalCells[Name] = *W;
  }

  //--- Universal checks: frame canary, leaks.
  Result<std::vector<uint8_t>> CanaryNow = St.Mem.read(CanaryBase, 64);
  if (!CanaryNow)
    return CanaryNow.takeError();
  if (*CanaryNow != Canary)
    return Error("frame violation: unrelated memory modified (vector " +
                 VecTag + ")");
  if (St.Mem.liveAllocations() != BaselineAllocs)
    return Error("allocation leak: " +
                 std::to_string(St.Mem.liveAllocations()) + " live vs " +
                 std::to_string(BaselineAllocs) + " expected (vector " +
                 VecTag + ")");

  //--- Frame checks for read-only parameters.
  auto InPlace = [&](const std::string &Name,
                     const std::vector<std::string> &L) {
    return std::find(L.begin(), L.end(), Name) != L.end();
  };
  for (const auto &[Name, Base] : ArrayBase) {
    (void)Base;
    if (InPlace(Name, Spec.InPlaceArrays))
      continue;
    int PIdx = paramIndex(Fn, Name);
    if (Out.FinalArrays[Name] != listBytes(Inputs[PIdx]))
      return Error("read-only array argument '" + Name +
                   "' was modified (vector " + VecTag + ")");
  }
  for (const auto &[Name, Base] : CellBase) {
    (void)Base;
    if (InPlace(Name, Spec.InPlaceCells))
      continue;
    int PIdx = paramIndex(Fn, Name);
    if (Out.FinalCells[Name] != Inputs[PIdx].elems()[0].asWord())
      return Error("read-only cell argument '" + Name +
                   "' was modified (vector " + VecTag + ")");
  }

  //--- Trace correspondence per monad.
  switch (Fn.TheMonad) {
  case ir::Monad::Pure:
  case ir::Monad::Nondet:
    if (!Out.Tr.empty())
      return Error("pure/nondet model produced trace events (vector " +
                   VecTag + ")");
    break;
  case ir::Monad::Writer: {
    std::vector<uint64_t> Written;
    for (const bedrock::Event &E : Out.Tr) {
      if (E.Action != "write" || E.Args.size() != 1)
        return Error("writer model produced a non-write event " + E.str());
      Written.push_back(E.Args[0]);
    }
    if (Written != SrcCtx.Output)
      return Error("writer output mismatch (vector " + VecTag + "): source " +
                   std::to_string(SrcCtx.Output.size()) + " words, target " +
                   std::to_string(Written.size()));
    break;
  }
  case ir::Monad::Io: {
    if (Out.Tr.size() != SrcCtx.IoLog.size())
      return Error("trace length mismatch (vector " + VecTag + "): source " +
                   std::to_string(SrcCtx.IoLog.size()) + ", target " +
                   std::to_string(Out.Tr.size()));
    for (size_t I = 0; I < Out.Tr.size(); ++I) {
      const auto &[Kind, W] = SrcCtx.IoLog[I];
      const bedrock::Event &E = Out.Tr[I];
      bool Ok = Kind == 'r'
                    ? (E.Action == "read" && E.Rets.size() == 1 &&
                       E.Rets[0] == W)
                    : (E.Action == "write" && E.Args.size() == 1 &&
                       E.Args[0] == W);
      if (!Ok)
        return Error("trace event " + std::to_string(I) + " mismatch: " +
                     E.str() + " (vector " + VecTag + ")");
    }
    break;
  }
  }

  //--- Ensures clause.
  if (Fn.TheMonad == ir::Monad::Nondet) {
    if (!Opts.NondetEnsures)
      return Error("nondet model requires an ensures predicate "
                   "(ValidationOptions::NondetEnsures)");
    Status Ok = Opts.NondetEnsures(Inputs, Out);
    if (!Ok)
      return Ok.takeError().note("nondet ensures failed on vector " + VecTag);
    return Status::success();
  }

  // Deterministic models: value equality against the source run.
  if (Out.Rets.size() != Spec.ScalarRets.size())
    return Error("target returned " + std::to_string(Out.Rets.size()) +
                 " words, spec declares " +
                 std::to_string(Spec.ScalarRets.size()));
  for (size_t I = 0; I < Spec.ScalarRets.size(); ++I) {
    int RIdx = returnIndex(Fn, Spec.ScalarRets[I]);
    uint64_t Want = (*SrcOut)[RIdx].scalar();
    if (Out.Rets[I] != Want)
      return Error("scalar return '" + Spec.ScalarRets[I] + "' mismatch: " +
                   hexStr(Out.Rets[I]) + " vs model " + hexStr(Want) +
                   " (vector " + VecTag + ")");
  }
  for (const std::string &Name : Spec.InPlaceArrays) {
    int RIdx = returnIndex(Fn, Name);
    std::vector<uint8_t> Want = listBytes((*SrcOut)[RIdx]);
    if (Out.FinalArrays[Name] != Want)
      return Error("in-place array '" + Name +
                   "' final contents mismatch (vector " + VecTag + ")");
  }
  for (const std::string &Name : Spec.InPlaceCells) {
    int RIdx = returnIndex(Fn, Name);
    uint64_t Want = (*SrcOut)[RIdx].elems()[0].asWord();
    if (Out.FinalCells[Name] != Want)
      return Error("in-place cell '" + Name + "' mismatch: " +
                   hexStr(Out.FinalCells[Name]) + " vs model " +
                   hexStr(Want) + " (vector " + VecTag + ")");
  }
  return Status::success();
}

} // namespace

Status differentialCertify(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                           const core::CompileResult &Compiled,
                           const bedrock::Module &Linked,
                           const ValidationOptions &Opts,
                           bool *BudgetExhausted) {
  if (BudgetExhausted)
    *BudgetExhausted = false;
  Status WF = bedrock::verifyModule(Linked);
  if (!WF)
    return WF.takeError().note("linked module is not well formed");
  const bedrock::Function *F = Linked.find(Spec.TargetName);
  if (!F)
    return Error("linked module lacks the compiled function '" +
                 Spec.TargetName + "'");
  for (const std::string &Callee : Compiled.ExternalCallees)
    if (!Linked.find(Callee))
      return Error("linked module lacks external callee '" + Callee + "'");

  std::optional<guard::Budget> B;
  if (Opts.LayerTimeoutMs)
    B.emplace(Opts.LayerTimeoutMs, /*StepLimit=*/0);
  const unsigned Total = unsigned(Opts.Sizes.size()) * Opts.VectorsPerSize;

  Rng R(Opts.Seed);
  unsigned Vec = 0;
  for (size_t Size : Opts.Sizes) {
    for (unsigned K = 0; K < Opts.VectorsPerSize; ++K, ++Vec) {
      // Deadline check between vectors (checkpoint polls the clock
      // unconditionally — vectors are coarse units, a counter heuristic
      // would let one slow vector overshoot by its whole runtime).
      if (B && !B->checkpoint()) {
        if (BudgetExhausted)
          *BudgetExhausted = true;
        return Error("differential certification " + B->describe() +
                     " after " + std::to_string(Vec) + " of " +
                     std::to_string(Total) + " vectors");
      }
      std::vector<Value> Inputs = Opts.MakeInputs
                                      ? Opts.MakeInputs(Fn, R, Size)
                                      : defaultInputs(Fn, R, Size);
      std::vector<uint64_t> Tape;
      for (unsigned T = 0; T < 16 + Size % 16; ++T)
        Tape.push_back(R.next());
      // Distinct nondet seeds on the two sides: results may not depend on
      // oracle choices unless the monad is nondet (where the ensures
      // predicate, not equality, is checked).
      std::string Tag = "#" + std::to_string(Vec) + " (size " +
                        std::to_string(Size) + ")";
      bool Injected = false;
      Status Ok = runVector(Fn, Spec, Linked, Opts, std::move(Inputs), Tape,
                            /*SrcSeed=*/R.next(), /*TgtSeed=*/R.next(), Tag,
                            &Injected);
      if (!Ok) {
        // A fault-injected failure is a degraded outcome, not a genuine
        // divergence: report it through the same out-flag as budget
        // exhaustion so the pipeline marks the layer Degraded.
        if (Injected && BudgetExhausted)
          *BudgetExhausted = true;
        return Ok;
      }
    }
  }
  return Status::success();
}

Error analysisRejection(const std::string &TargetName,
                        const analysis::AnalysisReport &Report) {
  Error E("static analysis of target '" + TargetName + "' found " +
          std::to_string(Report.numErrors()) + " error(s) and " +
          std::to_string(Report.numWarnings()) + " warning(s)");
  for (const analysis::Diagnostic &D : Report.Diags)
    E.note(D.str());
  return E;
}

Status analyzeTarget(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                     const core::CompileResult &Compiled,
                     const ValidationOptions &Opts) {
  std::optional<guard::Budget> B;
  if (Opts.LayerTimeoutMs)
    B.emplace(Opts.LayerTimeoutMs, /*StepLimit=*/0);
  analysis::AnalysisReport Report = analysis::analyzeProgram(
      Compiled.Fn, Spec, Fn, Opts.Hints.EntryFacts, B ? &*B : nullptr);
  // Certification fails on errors (unprovable bounds, uninitialized reads,
  // non-convergence). Warnings — dead stores, unreachable branches — do
  // not fail it: a model with a dead let or a statically-decided branch
  // compiles to target code with the same shape, and that is a *faithful*
  // translation; relc-lint is the strict gate for the curated suite.
  if (Report.hasErrors())
    return analysisRejection(Compiled.Fn.Name, Report);
  return Status::success();
}

Error tvRejection(const tv::TvReport &Rep) {
  Error E("translation validation refuted '" + Rep.Fn + "': " + Rep.Reason);
  for (const tv::OutputRecord &O : Rep.Outputs)
    if (!O.Matched)
      E.note("output '" + O.Name + "' [" + O.Kind + "]: model " + O.SrcTerm +
             (O.SourceBinding.empty() ? "" : " (" + O.SourceBinding + ")") +
             " vs target " + O.TgtTerm +
             (O.TargetPath.empty() ? "" : " (at " + O.TargetPath + ")"));
  return E;
}

Status translationValidate(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                           const core::CompileResult &Compiled,
                           const ValidationOptions &Opts) {
  std::optional<guard::Budget> B;
  if (Opts.LayerTimeoutMs || Opts.TvStepBudget)
    B.emplace(Opts.LayerTimeoutMs, Opts.TvStepBudget);
  tv::TvReport Rep = tv::validateTranslation(
      Fn, Spec, Compiled.Fn, Opts.Hints.EntryFacts, B ? &*B : nullptr);
  // Only a refuted equivalence fails certification: it is a static proof
  // of a miscompilation. Inconclusive means the program is outside the
  // validated fragment and the sampled layer carries the certification.
  if (Rep.refuted())
    return tvRejection(Rep);
  return Status::success();
}

Status validate(const ir::SourceFn &Fn, const sep::FnSpec &Spec,
                const core::CompileResult &Compiled,
                const bedrock::Module &Linked,
                const ValidationOptions &Opts) {
  // The three static layers are independent once the code is emitted; with
  // Opts.Jobs > 1 they run concurrently on the job-graph scheduler, and
  // differential certification follows once all of them pass. Failures are
  // reported in the fixed serial layer order either way, so verdicts and
  // diagnostics are identical to a Jobs == 1 run.
  Status Replay = Status::success(), Analyze = Status::success();
  Status Tv = Status::success(), Diff = Status::success();
  bool StaticOk = false;

  if (Opts.Jobs <= 1) {
    Replay = replayDerivation(Fn, Compiled);
    if (!Replay)
      return Replay.takeError().note(
          "derivation replay rejected the witness");
    Analyze = analyzeTarget(Fn, Spec, Compiled, Opts);
    if (!Analyze)
      return Analyze.takeError().note("static analysis rejected the target");
    if (Opts.RunTv) {
      Tv = translationValidate(Fn, Spec, Compiled, Opts);
      if (!Tv)
        return Tv.takeError().note(
            "translation validation rejected the target");
    }
    StaticOk = true;
  } else {
    pipeline::JobGraph G;
    std::vector<pipeline::JobId> StaticJobs;
    StaticJobs.push_back(G.add("replay", [&] {
      Replay = replayDerivation(Fn, Compiled);
    }));
    StaticJobs.push_back(G.add("analysis", [&] {
      Analyze = analyzeTarget(Fn, Spec, Compiled, Opts);
    }));
    if (Opts.RunTv)
      StaticJobs.push_back(G.add("tv", [&] {
        Tv = translationValidate(Fn, Spec, Compiled, Opts);
      }));
    G.add("differential", [&] {
      if (Replay && Analyze && Tv) {
        StaticOk = true;
        Diff = differentialCertify(Fn, Spec, Compiled, Linked, Opts);
      }
    }, StaticJobs);
    Status Run = G.run(Opts.Jobs);
    if (!Run)
      return Run; // A layer threw; never expected (layers return Status).
    if (!Replay)
      return Replay.takeError().note(
          "derivation replay rejected the witness");
    if (!Analyze)
      return Analyze.takeError().note("static analysis rejected the target");
    if (!Tv)
      return Tv.takeError().note(
          "translation validation rejected the target");
  }

  if (Opts.Jobs <= 1 && StaticOk)
    Diff = differentialCertify(Fn, Spec, Compiled, Linked, Opts);
  if (!Diff)
    return Diff.takeError().note("differential certification failed");
  return Status::success();
}

} // namespace validate
} // namespace relc
