file(REMOVE_RECURSE
  "CMakeFiles/relc_core.dir/Compiler.cpp.o"
  "CMakeFiles/relc_core.dir/Compiler.cpp.o.d"
  "CMakeFiles/relc_core.dir/ExprCompile.cpp.o"
  "CMakeFiles/relc_core.dir/ExprCompile.cpp.o.d"
  "CMakeFiles/relc_core.dir/Invariant.cpp.o"
  "CMakeFiles/relc_core.dir/Invariant.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/ArrayRules.cpp.o"
  "CMakeFiles/relc_core.dir/rules/ArrayRules.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/BaseRules.cpp.o"
  "CMakeFiles/relc_core.dir/rules/BaseRules.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/CellRules.cpp.o"
  "CMakeFiles/relc_core.dir/rules/CellRules.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/CondRules.cpp.o"
  "CMakeFiles/relc_core.dir/rules/CondRules.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/CopyRules.cpp.o"
  "CMakeFiles/relc_core.dir/rules/CopyRules.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/LoopRules.cpp.o"
  "CMakeFiles/relc_core.dir/rules/LoopRules.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/MonadRules.cpp.o"
  "CMakeFiles/relc_core.dir/rules/MonadRules.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/Register.cpp.o"
  "CMakeFiles/relc_core.dir/rules/Register.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/RulesCommon.cpp.o"
  "CMakeFiles/relc_core.dir/rules/RulesCommon.cpp.o.d"
  "CMakeFiles/relc_core.dir/rules/StackRules.cpp.o"
  "CMakeFiles/relc_core.dir/rules/StackRules.cpp.o.d"
  "librelc_core.a"
  "librelc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
