//===- tests/sep/SpecTest.cpp - fnspec checking ------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Build.h"
#include "sep/Spec.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::ir;

namespace {

SourceFn upstrLike() {
  FnBuilder FB("m", Monad::Pure);
  FB.listParam("s", EltKind::U8).wordParam("len");
  ProgBuilder B;
  B.let("s", mkMap("s", "b", v("b"))).let("h", v("len"));
  return std::move(FB).done(std::move(B).ret({"s", "h"}));
}

TEST(SpecTest, GoodSpecPasses) {
  sep::FnSpec Spec("upstr");
  Spec.arrayArg("s").lenArg("len", "s").retInPlace("s").retScalar("h");
  EXPECT_TRUE(bool(sep::checkSpecAgainstFn(Spec, upstrLike())));
}

TEST(SpecTest, RenderingLooksLikeTheFnspecMacro) {
  sep::FnSpec Spec("upstr");
  Spec.arrayArg("s").lenArg("len", "s").retInPlace("s").retScalar("h");
  std::string S = Spec.str();
  EXPECT_NE(S.find("fnspec! \"upstr\""), std::string::npos);
  EXPECT_NE(S.find("requires"), std::string::npos);
  EXPECT_NE(S.find("length s"), std::string::npos);
  EXPECT_NE(S.find("ensures"), std::string::npos);
}

struct BadSpec {
  const char *Name;
  std::function<sep::FnSpec()> Make;
  const char *ExpectInError;
};

class SpecRejects : public ::testing::TestWithParam<BadSpec> {};

TEST_P(SpecRejects, RejectsWithDiagnostic) {
  const BadSpec &C = GetParam();
  Status S = sep::checkSpecAgainstFn(C.Make(), upstrLike());
  ASSERT_FALSE(bool(S)) << C.Name;
  EXPECT_NE(S.error().str().find(C.ExpectInError), std::string::npos)
      << C.Name << ": " << S.error().str();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpecRejects,
    ::testing::Values(
        BadSpec{"uncovered parameter",
                [] {
                  sep::FnSpec S("f");
                  S.arrayArg("s").retInPlace("s").retScalar("h");
                  return S; // len not realized.
                },
                "not realized"},
        BadSpec{"unknown source parameter",
                [] {
                  sep::FnSpec S("f");
                  S.arrayArg("s").lenArg("len", "s").scalarArg("zzz")
                      .retInPlace("s").retScalar("h");
                  return S;
                },
                "unknown source parameter"},
        BadSpec{"array passed as scalar",
                [] {
                  sep::FnSpec S("f");
                  S.scalarArg("s").lenArg("len", "s").retInPlace("s")
                      .retScalar("h");
                  return S;
                },
                "by value"},
        BadSpec{"length of a non-list",
                [] {
                  sep::FnSpec S("f");
                  S.arrayArg("s").lenArg("len", "len").retInPlace("s")
                      .retScalar("h");
                  return S;
                },
                "measures"},
        BadSpec{"duplicated realization",
                [] {
                  sep::FnSpec S("f");
                  S.arrayArg("s").lenArg("len", "s").scalarArg("len")
                      .retInPlace("s").retScalar("h");
                  return S;
                },
                "duplicate"},
        BadSpec{"in-place result not returned",
                [] {
                  sep::FnSpec S("f");
                  S.arrayArg("s").lenArg("len", "s").retScalar("h")
                      .retScalar("s"); // s is a list, and retScalar is
                                       // wrong, but first error hits the
                                       // uncaptured result check path.
                  return S;
                },
                "s"},
        BadSpec{"uncaptured model result",
                [] {
                  sep::FnSpec S("f");
                  S.arrayArg("s").lenArg("len", "s").retInPlace("s");
                  return S; // h not captured.
                },
                "not captured"}));

TEST(SpecTest, FindArgForSource) {
  sep::FnSpec Spec("f");
  Spec.arrayArg("s").lenArg("len", "s");
  ASSERT_NE(Spec.findArgForSource("s"), nullptr);
  EXPECT_EQ(Spec.findArgForSource("s")->TheKind,
            sep::ArgSpec::Kind::ArrayPtr);
  EXPECT_EQ(Spec.findArgForSource("nope"), nullptr);
}

} // namespace
