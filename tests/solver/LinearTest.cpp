//===- tests/solver/LinearTest.cpp - Linear entailment ----------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "solver/Linear.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::solver;

namespace {

TEST(LinTermTest, Algebra) {
  LinTerm T = ls("x") + ls("x") + lc(3) - ls("y");
  EXPECT_EQ(T.coeffs().at("x"), 2);
  EXPECT_EQ(T.coeffs().at("y"), -1);
  EXPECT_EQ(T.constPart(), 3);
  LinTerm Z = T - T;
  EXPECT_TRUE(Z.isConstant());
  EXPECT_EQ(Z.constPart(), 0);
  LinTerm S = T.scaled(-2);
  EXPECT_EQ(S.coeffs().at("x"), -4);
  EXPECT_EQ(S.constPart(), -6);
}

TEST(LinTermTest, ZeroCoefficientsErased) {
  LinTerm T = ls("x") - ls("x");
  EXPECT_TRUE(T.isConstant());
  EXPECT_TRUE(T.coeffs().empty());
}

TEST(LinearTest, DirectBoundEntailment) {
  FactDb F;
  F.addLe(ls("x"), lc(4));
  EXPECT_TRUE(bool(F.proveLt(ls("x"), lc(5))));
  EXPECT_TRUE(bool(F.proveLe(ls("x"), lc(4))));
  EXPECT_FALSE(bool(F.proveLt(ls("x"), lc(4))));
  EXPECT_FALSE(bool(F.proveLe(ls("x"), lc(3))));
}

TEST(LinearTest, TransitivityThroughElimination) {
  FactDb F;
  F.addLe(ls("a"), ls("b"));
  F.addLe(ls("b"), ls("c"));
  F.addLe(ls("c"), lc(10));
  EXPECT_TRUE(bool(F.proveLe(ls("a"), lc(10))));
  EXPECT_FALSE(bool(F.proveLe(lc(10), ls("a"))));
}

TEST(LinearTest, ShiftRightFactPattern) {
  // The ip-checksum pattern: nw = len >> 1 gives 2·nw ≤ len; with
  // i < nw conclude 2·i + 1 < len.
  FactDb F;
  F.addGe0(ls("len"), "len >= 0");
  F.addLe(ls("nw").scaled(2), ls("len"), "shift-right lower");
  F.addLt(ls("i"), ls("nw"), "loop bound");
  F.addGe0(ls("i"), "i >= 0");
  EXPECT_TRUE(bool(F.proveLt(ls("i").scaled(2) + lc(1), ls("len"))));
  EXPECT_TRUE(bool(F.proveLt(ls("i").scaled(2), ls("len"))));
  // But not 2i + 2 < len (i = nw-1, len = 2nw is a countermodel).
  EXPECT_FALSE(bool(F.proveLt(ls("i").scaled(2) + lc(2), ls("len"))));
}

TEST(LinearTest, MaskFactPattern) {
  // The odd-tail pattern: aux = len & 1 gives aux ≤ len and aux ≤ 1;
  // the branch adds aux ≥ 1; conclude len ≥ 1, hence len − 1 < len.
  FactDb F;
  F.addGe0(ls("len"));
  F.addLe(ls("aux"), ls("len"), "mask bound");
  F.addLe(ls("aux"), lc(1), "mask bound");
  F.addLe(lc(1), ls("aux"), "branch: aux != 0");
  EXPECT_TRUE(bool(F.proveLe(lc(1), ls("len"))));
  EXPECT_TRUE(bool(F.proveLt(ls("len") - lc(1), ls("len"))));
}

TEST(LinearTest, RationalRefutationTightensIntegers) {
  // 8·t ≤ 255 entails t < 32 over the integers (t ≤ 31.875 rationally;
  // the refutation of t ≥ 32 needs no integer reasoning).
  FactDb F;
  F.addGe0(ls("t"));
  F.addLe(ls("t").scaled(8), lc(255));
  EXPECT_TRUE(bool(F.proveLt(ls("t"), lc(32))));
  EXPECT_FALSE(bool(F.proveLt(ls("t"), lc(31))));
}

TEST(LinearTest, StrictFactsAreIntegerTightened) {
  // a < b over integers means a + 1 ≤ b; so a < b ∧ b < a+2 forces b = a+1.
  FactDb F;
  F.addLt(ls("a"), ls("b"));
  F.addLt(ls("b"), ls("a") + lc(2));
  EXPECT_TRUE(bool(F.proveEq(ls("b"), ls("a") + lc(1))));
}

TEST(LinearTest, EqualityBothWays) {
  FactDb F;
  F.addEq(ls("x"), ls("y") + lc(3));
  EXPECT_TRUE(bool(F.proveEq(ls("x") - lc(3), ls("y"))));
  EXPECT_TRUE(bool(F.proveLe(ls("y"), ls("x"))));
  EXPECT_FALSE(bool(F.proveLe(ls("x"), ls("y"))));
}

TEST(LinearTest, InconsistencyDetected) {
  FactDb F;
  F.addLt(ls("x"), lc(0));
  F.addGe0(ls("x"));
  EXPECT_TRUE(F.inconsistent());
  FactDb G;
  G.addGe0(ls("x"));
  EXPECT_FALSE(G.inconsistent());
}

TEST(LinearTest, UnknownSymbolsAreUnconstrained) {
  FactDb F;
  F.addLe(ls("x"), lc(5));
  EXPECT_FALSE(bool(F.proveLe(ls("fresh"), lc(100))));
}

TEST(LinearTest, RelevancePruningKeepsLargeDbFast) {
  // Hundreds of irrelevant facts must not block a one-step entailment
  // (the regression that utf8 compilation exposed).
  FactDb F;
  for (int I = 0; I < 300; ++I) {
    std::string A = "junk" + std::to_string(I);
    std::string B = "junk" + std::to_string(I + 1);
    F.addLe(ls(A), ls(B));
  }
  F.addLe(ls("t"), lc(4));
  EXPECT_TRUE(bool(F.proveLt(ls("t"), lc(5))));
}

TEST(LinearTest, ProbeAgreesOnEasyGoalsAndGivesUpOnHardOnes) {
  FactDb F;
  F.addGe0(ls("x"));
  F.addLe(ls("x"), lc(255));
  // Interval-resolvable: probe and full entailment agree.
  EXPECT_TRUE(F.probeLe(ls("x"), lc(255)));
  EXPECT_TRUE(F.entailsLe(ls("x"), lc(255)));
  EXPECT_FALSE(F.probeLe(ls("x"), lc(254)));
  // A goal needing a deep cone: chain y0 <= y1 <= ... <= y11 <= 5. The
  // probe's 8-variable budget gives up; full entailment still proves it.
  for (int I = 0; I < 11; ++I)
    F.addLe(ls("y" + std::to_string(I)), ls("y" + std::to_string(I + 1)));
  F.addLe(ls("y11"), lc(5));
  EXPECT_TRUE(F.entailsLe(ls("y0"), lc(5)));
  EXPECT_FALSE(F.probeLe(ls("y0"), lc(5))); // Budget miss, sound.
}

TEST(LinearTest, IntervalUpperBound) {
  FactDb F;
  F.addGe0(ls("a"));
  F.addLe(ls("a"), lc(255));
  F.addGe0(ls("b"));
  F.addLe(ls("b"), lc(10));
  std::optional<int64_t> UB = F.intervalUpperBound(ls("a").scaled(2) +
                                                   ls("b") + lc(1));
  ASSERT_TRUE(UB.has_value());
  EXPECT_EQ(*UB, 2 * 255 + 10 + 1);
  // Negative coefficients need a lower bound (present: a, b >= 0).
  std::optional<int64_t> UB2 = F.intervalUpperBound(lc(100) - ls("b"));
  ASSERT_TRUE(UB2.has_value());
  EXPECT_EQ(*UB2, 100);
  // Unbounded symbol: no bound derivable.
  EXPECT_FALSE(F.intervalUpperBound(ls("a") + ls("zzz")).has_value());
}

TEST(LinearTest, ConstantContradictionInFactsRefutesEverything) {
  FactDb F;
  F.addGe0(lc(-1)); // False.
  // From false, anything follows (dead-branch compilation).
  EXPECT_TRUE(bool(F.proveLt(ls("x") + lc(100), ls("x"))));
}

TEST(LinearTest, FailureMessageListsGoalAndFacts) {
  FactDb F;
  F.addLe(ls("x"), lc(4), "example fact");
  Status S = F.proveLt(ls("y"), lc(2));
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.error().str().find("y < 2"), std::string::npos);
}

/// Parameterized sweep: i < n ∧ n ≤ K ⊢ i + j < K + j for several K, j —
/// exercises elimination with multiple variables and offsets.
class LinearSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(LinearSweep, OffsetBounds) {
  auto [K, J] = GetParam();
  FactDb F;
  F.addGe0(ls("i"));
  F.addLt(ls("i"), ls("n"));
  F.addLe(ls("n"), lc(K));
  EXPECT_TRUE(bool(F.proveLt(ls("i") + lc(J), lc(K + J))));
  EXPECT_FALSE(bool(F.proveLt(ls("i") + lc(J), lc(J)))); // i can be K−1.
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LinearSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 7, 256, 1 << 20),
                       ::testing::Values<int64_t>(0, 1, 3, 64)));

} // namespace
