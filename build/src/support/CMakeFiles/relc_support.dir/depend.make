# Empty dependencies file for relc_support.
# This may be replaced when dependencies are built.
