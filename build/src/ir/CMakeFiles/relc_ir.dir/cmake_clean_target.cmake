file(REMOVE_RECURSE
  "librelc_ir.a"
)
