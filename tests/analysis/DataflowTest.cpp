//===- tests/analysis/DataflowTest.cpp - Domain + solver unit tests -------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Unit tests of the dataflow engine and the three abstract domains on
// hand-built bedrock functions: must-intersection joins for definedness,
// interval edge pruning and loop widening, and the symbolic domain's phi
// discipline (minting at joins, trivial-phi collapse, fixpoint
// convergence on loops and loop chains).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "analysis/Domains.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::analysis;
using namespace relc::bedrock;

namespace {

Function mkFn(CmdPtr Body, std::vector<std::string> Args = {},
              std::vector<std::string> Rets = {}) {
  Function F;
  F.Name = "f";
  F.Args = std::move(Args);
  F.Rets = std::move(Rets);
  F.Body = std::move(Body);
  return F;
}

/// ABI for `f(s, len)`: s points at a byte array of len elements, with the
/// usual entry facts (length nonnegative and ABI-bounded).
AbiInfo byteArrayAbi() {
  AbiInfo Abi;
  Region R;
  R.K = Region::Kind::Array;
  R.Name = "s";
  R.EltBytes = 1;
  R.Extent = solver::ls("len_s");
  R.ClauseStr = "array s len";
  Abi.Regions.push_back(R);
  Abi.ArgRegion["s"] = 0;
  Abi.ArgTerm["len"] = solver::ls("len_s");
  Abi.EntryFacts.addGe0(solver::ls("len_s"), "length nonnegative");
  Abi.EntryFacts.addGe0(solver::lc(int64_t(1) << 32) - solver::ls("len_s"),
                        "ABI length bound");
  return Abi;
}

unsigned exitBlock(const Cfg &G) {
  for (const BasicBlock &B : G.blocks())
    if (B.T == BasicBlock::Term::Exit)
      return B.Id;
  ADD_FAILURE() << "no exit block";
  return 0;
}

//===----------------------------------------------------------------------===//
// InitDomain.
//===----------------------------------------------------------------------===//

TEST(DataflowTest, InitJoinIsIntersection) {
  // x defined on one arm only, z on both: at the join z must survive and
  // x must not.
  Function F = mkFn(seqAll({ifThenElse(bin(BinOp::LtU, var("n"), lit(4)),
                                       seqAll({set("x", lit(1)),
                                               set("z", lit(1))}),
                                       set("z", lit(2))),
                            set("out", lit(0))}),
                    {"n"});
  Cfg G = Cfg::build(F);
  InitDomain D(F);
  DataflowResult<InitDomain> R = runForward(G, D);
  ASSERT_TRUE(R.Converged);

  const auto &In = R.In[exitBlock(G)];
  ASSERT_TRUE(In.has_value());
  EXPECT_TRUE(In->Defined.count("z"));
  EXPECT_TRUE(In->Defined.count("n")) << "arguments start defined";
  EXPECT_FALSE(In->Defined.count("x"));
}

TEST(DataflowTest, InitUnsetKillsDefinedness) {
  Function F = mkFn(seqAll({set("x", lit(1)), unset("x")}));
  Cfg G = Cfg::build(F);
  InitDomain D(F);
  InitDomain::State S = D.entry();
  for (const CfgStmt &St : G.block(G.entry()).Stmts)
    D.transfer(G, G.block(G.entry()), St, S);
  EXPECT_FALSE(S.Defined.count("x"));
}

//===----------------------------------------------------------------------===//
// IntervalDomain.
//===----------------------------------------------------------------------===//

TEST(DataflowTest, IntervalPrunesConstantBranch) {
  // 7 <u 3 is statically false: the then-arm gets no input state at all.
  Function F = mkFn(seqAll({ifThenElse(bin(BinOp::LtU, lit(7), lit(3)),
                                       set("x", lit(1)),
                                       set("x", lit(2))),
                            set("out", var("x"))}));
  Cfg G = Cfg::build(F);
  AbiInfo Abi;
  IntervalDomain D(G, F, Abi);
  DataflowResult<IntervalDomain> R = runForward(G, D);
  ASSERT_TRUE(R.Converged);

  const BasicBlock &E = G.block(G.entry());
  ASSERT_EQ(E.T, BasicBlock::Term::Branch);
  EXPECT_FALSE(R.In[E.TrueSucc].has_value()) << "infeasible arm reached";
  ASSERT_TRUE(R.In[E.FalseSucc].has_value());

  // After the join, x can only be 2.
  const auto &In = R.In[exitBlock(G)];
  ASSERT_TRUE(In.has_value());
  auto It = In->Env.find("x");
  ASSERT_NE(It, In->Env.end());
  EXPECT_EQ(It->second, Interval::point(2));
}

TEST(DataflowTest, IntervalWidensUnboundedCounter) {
  // A counter with no usable bound forces widening: the ascending chain
  // [0,0], [0,1], [0,2], ... must not run to the iteration cap.
  Function F = mkFn(seqAll({set("i", lit(0)),
                            whileLoop(bin(BinOp::Ne, var("i"), var("n")),
                                      set("i", add(var("i"), lit(1))))}),
                    {"n"});
  Cfg G = Cfg::build(F);
  AbiInfo Abi;
  IntervalDomain D(G, F, Abi);
  DataflowResult<IntervalDomain> R = runForward(G, D);
  EXPECT_TRUE(R.Converged);
  EXPECT_LE(R.Iterations, 16u * unsigned(G.blocks().size()));
}

TEST(DataflowTest, IntervalConvergesOnLoopChain) {
  // Regression: sequential loops must not multiply visits (restart
  // cascades). Five loops in a row converge comfortably under the cap.
  std::vector<CmdPtr> Cmds;
  for (int L = 0; L < 5; ++L) {
    std::string I = "i" + std::to_string(L);
    Cmds.push_back(set(I, lit(0)));
    Cmds.push_back(whileLoop(bin(BinOp::LtU, var(I), var("n")),
                             set(I, add(var(I), lit(1)))));
  }
  Function F = mkFn(seqAll(std::move(Cmds)), {"n"});
  Cfg G = Cfg::build(F);
  AbiInfo Abi;
  IntervalDomain D(G, F, Abi);
  DataflowResult<IntervalDomain> R = runForward(G, D);
  EXPECT_TRUE(R.Converged);
}

//===----------------------------------------------------------------------===//
// SymbolicDomain.
//===----------------------------------------------------------------------===//

TEST(DataflowTest, SymbolicJoinMintsAndCollapsesPhis) {
  Function F = mkFn(skip());
  Cfg G = Cfg::build(F);
  AbiInfo Abi;
  SymbolicDomain D(G, F, Abi);

  SymState A, B;
  A.Env["i"] = AbsVal::scalar(solver::lc(0));
  B.Env["i"] = AbsVal::scalar(solver::ls("k"));

  // Differing values merge into a block-keyed phi, and the phi comes with
  // its word fact (phi >= 0).
  SymState Into = A;
  EXPECT_TRUE(D.join(0, Into, B));
  auto It = Into.Env.find("i");
  ASSERT_NE(It, Into.Env.end());
  EXPECT_NE(It->second.T.str().find("phi$b0$i"), std::string::npos);
  solver::FactDb Db = D.materialize(Into);
  EXPECT_TRUE(Db.proveLe(solver::lc(0), It->second.T));

  // Trivial-phi collapse, phi(x, self) = x: a side that carries this
  // block's own phi contributes nothing new, so the merge resolves to the
  // other side instead of minting phi-of-phi.
  SymState Plain;
  Plain.Env["i"] = AbsVal::scalar(solver::lc(0));
  SymState HasPhi = Into;
  EXPECT_FALSE(D.join(0, Plain, HasPhi)); // 0 join self-phi stays 0.
  EXPECT_EQ(Plain.Env["i"].T.str(), solver::lc(0).str());
  EXPECT_TRUE(D.join(0, HasPhi, Plain)); // self-phi join 0 becomes 0.
  EXPECT_EQ(HasPhi.Env["i"].T.str(), solver::lc(0).str());

  // Equal states join without change.
  SymState C1 = A, C2 = A;
  EXPECT_FALSE(D.join(0, C1, C2));
}

TEST(DataflowTest, SymbolicConvergesOnCountedLoop) {
  Function F = mkFn(
      seqAll({set("i", lit(0)),
              whileLoop(bin(BinOp::LtU, var("i"), var("len")),
                        seqAll({store(AccessSize::Byte,
                                      add(var("s"), var("i")), lit(0)),
                                set("i", add(var("i"), lit(1)))}))}),
      {"s", "len"});
  Cfg G = Cfg::build(F);
  AbiInfo Abi = byteArrayAbi();
  SymbolicDomain D(G, F, Abi);
  DataflowResult<SymbolicDomain> R = runForward(G, D);
  ASSERT_TRUE(R.Converged);
  EXPECT_LE(R.Iterations, 8u * unsigned(G.blocks().size()));

  // At the loop exit, i still carries its phi fact (i >= 0): the state
  // materializes into a database where that is provable.
  unsigned Exit = exitBlock(G);
  ASSERT_TRUE(R.In[Exit].has_value());
  auto It = R.In[Exit]->Env.find("i");
  ASSERT_NE(It, R.In[Exit]->Env.end());
  solver::FactDb Db = D.materialize(*R.In[Exit]);
  EXPECT_TRUE(Db.proveLe(solver::lc(0), It->second.T));
}

TEST(DataflowTest, SymbolicConvergesOnNestedLoops) {
  // Regression for the loop-restart path: an inner loop whose entry state
  // changes as the outer loop stabilizes must be re-seeded, not joined
  // against its stale back edge.
  Function F = mkFn(
      seqAll({set("i", lit(0)),
              whileLoop(
                  bin(BinOp::LtU, var("i"), var("len")),
                  seqAll({set("j", lit(0)),
                          whileLoop(bin(BinOp::LtU, var("j"), lit(4)),
                                    set("j", add(var("j"), lit(1)))),
                          set("i", add(var("i"), lit(1)))}))}),
      {"s", "len"});
  Cfg G = Cfg::build(F);
  AbiInfo Abi = byteArrayAbi();
  SymbolicDomain D(G, F, Abi);
  DataflowResult<SymbolicDomain> R = runForward(G, D);
  EXPECT_TRUE(R.Converged);
}

TEST(DataflowTest, SymbolicEdgeRefinementProvesGuard) {
  // Inside `while (i <u len)`, the guard fact makes i+1 <= len provable —
  // exactly the obligation of a byte store at s+i.
  Function F = mkFn(
      seqAll({set("i", lit(0)),
              whileLoop(bin(BinOp::LtU, var("i"), var("len")),
                        set("i", add(var("i"), lit(1))))}),
      {"s", "len"});
  Cfg G = Cfg::build(F);
  AbiInfo Abi = byteArrayAbi();
  SymbolicDomain D(G, F, Abi);
  DataflowResult<SymbolicDomain> R = runForward(G, D);
  ASSERT_TRUE(R.Converged);

  const BasicBlock *Header = nullptr;
  for (const BasicBlock &B : G.blocks())
    if (B.IsLoopHeader)
      Header = &B;
  ASSERT_NE(Header, nullptr);
  unsigned BodyId = Header->TrueSucc;
  ASSERT_TRUE(R.In[BodyId].has_value());
  const SymState &S = *R.In[BodyId];
  solver::FactDb Db = D.materialize(S);
  auto It = S.Env.find("i");
  ASSERT_NE(It, S.Env.end());
  EXPECT_TRUE(Db.proveLe(It->second.T + solver::lc(1), solver::ls("len_s")))
      << "guard refinement must bound i by the array length";
}

} // namespace
