
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Compiler.cpp" "src/core/CMakeFiles/relc_core.dir/Compiler.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/Compiler.cpp.o.d"
  "/root/repo/src/core/ExprCompile.cpp" "src/core/CMakeFiles/relc_core.dir/ExprCompile.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/ExprCompile.cpp.o.d"
  "/root/repo/src/core/Invariant.cpp" "src/core/CMakeFiles/relc_core.dir/Invariant.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/Invariant.cpp.o.d"
  "/root/repo/src/core/rules/ArrayRules.cpp" "src/core/CMakeFiles/relc_core.dir/rules/ArrayRules.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/ArrayRules.cpp.o.d"
  "/root/repo/src/core/rules/BaseRules.cpp" "src/core/CMakeFiles/relc_core.dir/rules/BaseRules.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/BaseRules.cpp.o.d"
  "/root/repo/src/core/rules/CellRules.cpp" "src/core/CMakeFiles/relc_core.dir/rules/CellRules.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/CellRules.cpp.o.d"
  "/root/repo/src/core/rules/CondRules.cpp" "src/core/CMakeFiles/relc_core.dir/rules/CondRules.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/CondRules.cpp.o.d"
  "/root/repo/src/core/rules/CopyRules.cpp" "src/core/CMakeFiles/relc_core.dir/rules/CopyRules.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/CopyRules.cpp.o.d"
  "/root/repo/src/core/rules/LoopRules.cpp" "src/core/CMakeFiles/relc_core.dir/rules/LoopRules.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/LoopRules.cpp.o.d"
  "/root/repo/src/core/rules/MonadRules.cpp" "src/core/CMakeFiles/relc_core.dir/rules/MonadRules.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/MonadRules.cpp.o.d"
  "/root/repo/src/core/rules/Register.cpp" "src/core/CMakeFiles/relc_core.dir/rules/Register.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/Register.cpp.o.d"
  "/root/repo/src/core/rules/RulesCommon.cpp" "src/core/CMakeFiles/relc_core.dir/rules/RulesCommon.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/RulesCommon.cpp.o.d"
  "/root/repo/src/core/rules/StackRules.cpp" "src/core/CMakeFiles/relc_core.dir/rules/StackRules.cpp.o" "gcc" "src/core/CMakeFiles/relc_core.dir/rules/StackRules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/relc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/relc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/bedrock/CMakeFiles/relc_bedrock.dir/DependInfo.cmake"
  "/root/repo/build/src/sep/CMakeFiles/relc_sep.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/relc_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
