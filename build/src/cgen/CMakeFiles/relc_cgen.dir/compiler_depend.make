# Empty compiler generated dependencies file for relc_cgen.
# This may be replaced when dependencies are built.
