//===- tests/ir/CheckTest.cpp - FunLang checker -----------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Build.h"
#include "ir/Check.h"

#include <gtest/gtest.h>

using namespace relc;
using namespace relc::ir;

namespace {

SourceFn simpleFn(Monad M, ProgPtr Body) {
  FnBuilder FB("f", M);
  FB.listParam("s", EltKind::U8).wordParam("len").cellParam("c");
  return std::move(FB).done(std::move(Body));
}

TEST(CheckTest, WellTypedProgramPasses) {
  ProgBuilder B;
  B.let("x", addw(v("len"), cw(1)))
      .let("b", aget("s", cw(0)))
      .let("w", b2w(v("b")))
      .let("c", mkCellIncr("c", v("w")));
  Result<std::vector<VType>> R =
      checkFn(simpleFn(Monad::Pure, std::move(B).ret({"x", "c"})));
  ASSERT_TRUE(bool(R)) << R.error().str();
  ASSERT_EQ(R->size(), 2u);
  EXPECT_EQ((*R)[0], VType::scalar(Ty::Word));
  EXPECT_EQ((*R)[1], VType::cell());
}

TEST(CheckTest, ReturnTypesReported) {
  ProgBuilder B;
  B.let("t", ltu(v("len"), cw(4)));
  Result<std::vector<VType>> R =
      checkFn(simpleFn(Monad::Pure, std::move(B).ret({"t", "s"})));
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0], VType::scalar(Ty::Bool));
  EXPECT_EQ((*R)[1], VType::list(EltKind::U8));
}

struct BadCase {
  const char *Name;
  std::function<ProgPtr()> Make;
  const char *ExpectInError;
};

class CheckRejects : public ::testing::TestWithParam<BadCase> {};

TEST_P(CheckRejects, RejectsWithDiagnostic) {
  const BadCase &C = GetParam();
  SourceFn Fn = simpleFn(Monad::Pure, C.Make());
  Result<std::vector<VType>> R = checkFn(Fn);
  ASSERT_FALSE(bool(R)) << C.Name;
  EXPECT_NE(R.error().str().find(C.ExpectInError), std::string::npos)
      << C.Name << ": " << R.error().str();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CheckRejects,
    ::testing::Values(
        BadCase{"unbound variable",
                [] {
                  ProgBuilder B;
                  B.let("x", v("ghost"));
                  return std::move(B).ret({"x"});
                },
                "unbound"},
        BadCase{"byte arithmetic without cast",
                [] {
                  ProgBuilder B;
                  B.let("b", aget("s", cw(0))).let("x", addw(v("b"), cw(1)));
                  return std::move(B).ret({"x"});
                },
                "word operands"},
        BadCase{"mismatched select arms",
                [] {
                  ProgBuilder B;
                  B.let("x", select(ltu(v("len"), cw(1)), cw(1), cb(1)));
                  return std::move(B).ret({"x"});
                },
                "different types"},
        BadCase{"non-bool guard",
                [] {
                  ProgBuilder B;
                  B.let("x", select(v("len"), cw(1), cw(2)));
                  return std::move(B).ret({"x"});
                },
                "not a bool"},
        BadCase{"map body wrong type",
                [] {
                  ProgBuilder B;
                  B.let("s", mkMap("s", "b", b2w(v("b"))));
                  return std::move(B).ret({"s"});
                },
                "map body"},
        BadCase{"put value needs byte",
                [] {
                  ProgBuilder B;
                  B.let("s", mkPut("s", cw(0), cw(300)));
                  return std::move(B).ret({"s"});
                },
                "put value"},
        BadCase{"unknown table",
                [] {
                  ProgBuilder B;
                  B.let("x", tget("nope", cw(0)));
                  return std::move(B).ret({"x"});
                },
                "unknown inline table"},
        BadCase{"returning unbound name",
                [] {
                  ProgBuilder B;
                  B.let("x", cw(1));
                  return std::move(B).ret({"zzz"});
                },
                "unbound"},
        BadCase{"loop accumulator type drift",
                [] {
                  ProgBuilder Body;
                  Body.let("a", ltu(v("a"), cw(1))); // word -> bool.
                  ProgBuilder B;
                  B.letMulti({"a"}, mkRange("i", cw(0), cw(3),
                                            {acc("a", cw(0))},
                                            std::move(Body).ret({"a"})));
                  return std::move(B).ret({"a"});
                },
                "changes the type"},
        BadCase{"loop body arity mismatch",
                [] {
                  ProgBuilder Body;
                  Body.let("a", addw(v("a"), cw(1)));
                  ProgBuilder B;
                  B.letMulti({"a"}, mkRange("i", cw(0), cw(3),
                                            {acc("a", cw(0))},
                                            std::move(Body).ret({"a", "i"})));
                  return std::move(B).ret({"a"});
                },
                "accumulators"},
        BadCase{"while measure must be word",
                [] {
                  ProgBuilder Body;
                  Body.let("a", subw(v("a"), cw(1)));
                  ProgBuilder B;
                  B.letMulti({"a"}, mkWhile({acc("a", cw(5))}, nez(v("a")),
                                            std::move(Body).ret({"a"}),
                                            ltu(v("a"), cw(1))));
                  return std::move(B).ret({"a"});
                },
                "measure"},
        BadCase{"conditional branch arity mismatch",
                [] {
                  ProgBuilder T;
                  T.let("r", cw(1)).let("q", cw(2));
                  ProgBuilder E;
                  E.let("r", cw(0));
                  ProgBuilder B;
                  B.letMulti({"r"}, mkIf(ltu(v("len"), cw(1)),
                                         std::move(T).ret({"r", "q"}),
                                         std::move(E).ret({"r"})));
                  return std::move(B).ret({"r"});
                },
                "arities"},
        BadCase{"reserved dollar in binder",
                [] {
                  ProgBuilder B;
                  B.let("x$0", cw(1));
                  return std::move(B).ret({"x$0"});
                },
                "reserved"},
        BadCase{"cell op on non-cell",
                [] {
                  ProgBuilder B;
                  B.let("s", mkCellPut("s", cw(1)));
                  return std::move(B).ret({"s"});
                },
                "non-cell"}));

TEST(CheckTest, MonadDisciplineEnforced) {
  // tell in a pure model.
  {
    ProgBuilder B;
    B.let("_", mkTell(v("len")));
    Result<std::vector<VType>> R =
        checkFn(simpleFn(Monad::Pure, std::move(B).ret({"len"})));
    ASSERT_FALSE(bool(R));
    EXPECT_NE(R.error().str().find("writer"), std::string::npos);
  }
  // read in a writer model.
  {
    ProgBuilder B;
    B.let("x", mkIoRead());
    Result<std::vector<VType>> R =
        checkFn(simpleFn(Monad::Writer, std::move(B).ret({"x"})));
    ASSERT_FALSE(bool(R));
    EXPECT_NE(R.error().str().find("io"), std::string::npos);
  }
  // nondet_peek only in nondet.
  {
    ProgBuilder B;
    B.let("x", mkNondetPeek());
    EXPECT_FALSE(bool(
        checkFn(simpleFn(Monad::Io, std::move(B).ret({"x"})))));
    ProgBuilder B2;
    B2.let("x", mkNondetPeek());
    EXPECT_TRUE(bool(
        checkFn(simpleFn(Monad::Nondet, std::move(B2).ret({"x"})))));
  }
  // Pure bindings are legal in every monad (§3.4.1).
  for (Monad M : {Monad::Pure, Monad::Nondet, Monad::Writer, Monad::Io}) {
    ProgBuilder B;
    B.let("x", addw(v("len"), cw(1)));
    EXPECT_TRUE(bool(checkFn(simpleFn(M, std::move(B).ret({"x"})))))
        << monadName(M);
  }
}

TEST(CheckTest, DuplicateParametersRejected) {
  FnBuilder FB("f", Monad::Pure);
  FB.wordParam("x").wordParam("x");
  ProgBuilder B;
  B.let("y", v("x"));
  SourceFn Fn = std::move(FB).done(std::move(B).ret({"y"}));
  EXPECT_FALSE(bool(checkFn(Fn)));
}

} // namespace
