# Include audit for the public facade (include/relc/): the tools are the
# proof that the facade is sufficient, so tools/*.cpp must never reach
# into the certification internals directly. Allowed: relc/* (the
# facade), support/*, programs/*, and the standalone-analyzer subsystems
# (rulemeta/, codelint/) whose tools predate the service layer and whose
# reports are not certification verdicts. Forbidden: pipeline/, cert/,
# tv/, validate/, cgen/, and service/ internals — the facade headers
# re-export everything a tool legitimately needs.
#
# Run as: cmake -DTOOLS_DIR=<dir> -P ToolIncludeAudit.cmake
# (registered as the `tool_include_audit` ctest).

if(NOT TOOLS_DIR)
  message(FATAL_ERROR "ToolIncludeAudit.cmake requires -DTOOLS_DIR=<dir>")
endif()

file(GLOB TOOL_SOURCES "${TOOLS_DIR}/*.cpp")
if(NOT TOOL_SOURCES)
  message(FATAL_ERROR "include-audit: no tool sources under ${TOOLS_DIR}")
endif()

set(VIOLATIONS "")
foreach(SRC IN LISTS TOOL_SOURCES)
  file(STRINGS "${SRC}" BAD_LINES
       REGEX "^#include \"(pipeline|cert|tv|validate|cgen|service)/")
  foreach(LINE IN LISTS BAD_LINES)
    get_filename_component(BASE "${SRC}" NAME)
    list(APPEND VIOLATIONS "${BASE}: ${LINE}")
  endforeach()
endforeach()

if(VIOLATIONS)
  list(JOIN VIOLATIONS "\n  " PRETTY)
  message(FATAL_ERROR
          "include-audit: tools must include the relc/ facade headers, "
          "not internals:\n  ${PRETTY}")
endif()

list(LENGTH TOOL_SOURCES N)
message(STATUS "include-audit: ${N} tool source(s) clean")
