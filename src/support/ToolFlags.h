//===- support/ToolFlags.h - Shared tool flag tables ------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The flag tables every relc tool shares, factored out of relc-gen so
// relc-lint, relc-check, and relcd register the *same* spellings, help
// text, and semantics instead of re-rolling them per tool:
//
//   - the certificate-cache directory (-cache-dir / -no-cache), with one
//     documented precedence rule implemented in resolveCacheDir();
//   - the certification budgets (-layer-timeout-ms / -tv-step-budget);
//   - deterministic fault injection (-fault, arming relc::fault);
//   - the scheduler width (-j / -jobs).
//
// Cache-directory precedence (ctest-pinned in tools/CMakeLists.txt):
//
//   -no-cache  >  -cache-dir <dir>  >  $RELC_CACHE_DIR  >  .relc-cache
//
// Every tool resolves the same way, so one exported RELC_CACHE_DIR moves
// the cache for relc-gen, relcd, and anything else that persists
// verdicts. Tools whose verdicts never touch the cache (relc-lint,
// relc-check) still accept the flags — a uniform CLI means one wrapper
// script or environment works across the whole toolbox — and say so in
// their help text.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_TOOLFLAGS_H
#define RELC_SUPPORT_TOOLFLAGS_H

#include "support/CommandLine.h"

#include <cstdint>
#include <string>

namespace relc {
namespace cl {

/// The -cache-dir / -no-cache pair.
struct CacheDirFlags {
  std::string Dir; ///< -cache-dir value ("" = flag not given).
  bool NoCache = false;
};

/// Registers -cache-dir and -no-cache on \p T, writing into \p F (whose
/// lifetime must cover parsing). \p Consults states whether the tool's
/// own verdicts use the cache; when false the help text says the flags
/// are accepted only for cross-tool uniformity.
void addCacheDirFlags(OptionTable &T, CacheDirFlags &F, bool Consults = true);

/// The one precedence rule: -no-cache > -cache-dir > $RELC_CACHE_DIR >
/// ".relc-cache". Returns the directory to use, or "" when caching is
/// disabled.
std::string resolveCacheDir(const CacheDirFlags &F);

/// The certification budgets.
struct BudgetFlags {
  unsigned LayerTimeoutMs = 0; ///< 0 = unlimited.
  uint64_t TvStepBudget = 0;   ///< 0 = unlimited.
};

/// Registers -layer-timeout-ms and -tv-step-budget on \p T.
void addBudgetFlags(OptionTable &T, BudgetFlags &F);

/// Registers -fault on \p T; parsing the flag arms relc::fault directly
/// (overriding any RELC_FAULT_SPEC arming).
void addFaultFlag(OptionTable &T);

/// Registers -j/-jobs on \p T. \p What names the scheduler in the help
/// text ("certification", "lint").
void addJobsFlag(OptionTable &T, unsigned &Jobs, const std::string &What);

} // namespace cl
} // namespace relc

#endif // RELC_SUPPORT_TOOLFLAGS_H
