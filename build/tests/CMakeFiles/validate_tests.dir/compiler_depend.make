# Empty compiler generated dependencies file for validate_tests.
# This may be replaced when dependencies are built.
