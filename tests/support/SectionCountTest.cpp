//===- tests/support/SectionCountTest.cpp ----------------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/SectionCount.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace relc;

namespace {

class SectionCountTest : public ::testing::Test {
protected:
  std::string Path;

  void SetUp() override {
    Path = ::testing::TempDir() + "/section_test.cpp";
    std::ofstream Out(Path);
    Out << "// header comment\n"
        << "int unrelated;\n"
        << "// RELC-SECTION-BEGIN: alpha\n"
        << "int a;\n"
        << "\n"
        << "// a comment inside\n"
        << "int b; // trailing comment still counts\n"
        << "// RELC-SECTION-END: alpha\n"
        << "// RELC-SECTION-BEGIN: beta\n"
        << "// only comments\n"
        << "// RELC-SECTION-END: beta\n"
        << "// RELC-SECTION-BEGIN: open\n"
        << "int c;\n";
  }
};

TEST_F(SectionCountTest, CountsCodeLinesOnly) {
  Result<unsigned> N = countSectionLines(Path, "alpha");
  ASSERT_TRUE(bool(N));
  EXPECT_EQ(*N, 2u); // "int a;" and "int b; // ...".
}

TEST_F(SectionCountTest, EmptySectionIsZero) {
  Result<unsigned> N = countSectionLines(Path, "beta");
  ASSERT_TRUE(bool(N));
  EXPECT_EQ(*N, 0u);
}

TEST_F(SectionCountTest, MissingSectionFails) {
  Result<unsigned> N = countSectionLines(Path, "gamma");
  EXPECT_FALSE(bool(N));
}

TEST_F(SectionCountTest, UnclosedSectionFails) {
  Result<unsigned> N = countSectionLines(Path, "open");
  EXPECT_FALSE(bool(N));
}

TEST_F(SectionCountTest, CountFileLines) {
  Result<unsigned> N = countFileLines(Path);
  ASSERT_TRUE(bool(N));
  // Every non-blank, non-comment-only line (markers are comments).
  EXPECT_EQ(*N, 4u);
}

TEST_F(SectionCountTest, MissingFileFails) {
  EXPECT_FALSE(bool(countFileLines("/nonexistent/nope.cpp")));
}

TEST(SectionCountRepoTest, RealRuleSectionsExist) {
  // The Table 1 bench depends on these sections; keep them present.
  for (const char *Sec : {"lemma-cell-get", "lemma-cell-put",
                          "lemma-cell-iadd"}) {
    Result<unsigned> N =
        countSectionLines("src/core/rules/CellRules.cpp", Sec);
    ASSERT_TRUE(bool(N)) << Sec << ": " << N.error().str();
    EXPECT_GT(*N, 5u) << Sec;
  }
  for (const char *Sec :
       {"lemma-nondet-alloc", "lemma-nondet-peek", "lemma-io-read",
        "lemma-io-write", "lemma-writer-tell", "lemma-extern-call"}) {
    Result<unsigned> N =
        countSectionLines("src/core/rules/MonadRules.cpp", Sec);
    ASSERT_TRUE(bool(N)) << Sec << ": " << N.error().str();
    EXPECT_GT(*N, 5u) << Sec;
  }
}

} // namespace
