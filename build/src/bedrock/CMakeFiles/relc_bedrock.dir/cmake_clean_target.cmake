file(REMOVE_RECURSE
  "librelc_bedrock.a"
)
