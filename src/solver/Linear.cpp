//===- solver/Linear.cpp - Linear-arithmetic entailment --------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "solver/Linear.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace relc {
namespace solver {

//===----------------------------------------------------------------------===//
// Terms.
//===----------------------------------------------------------------------===//

LinTerm LinTerm::constant(int64_t K) {
  LinTerm T;
  T.Const = K;
  return T;
}

LinTerm LinTerm::sym(const std::string &Name) {
  LinTerm T;
  T.Coeffs[Name] = 1;
  return T;
}

void LinTerm::normalize() {
  for (auto It = Coeffs.begin(); It != Coeffs.end();) {
    if (It->second == 0)
      It = Coeffs.erase(It);
    else
      ++It;
  }
}

LinTerm LinTerm::operator+(const LinTerm &O) const {
  LinTerm T = *this;
  T.Const += O.Const;
  for (const auto &[S, C] : O.Coeffs)
    T.Coeffs[S] += C;
  T.normalize();
  return T;
}

LinTerm LinTerm::operator-(const LinTerm &O) const {
  return *this + O.scaled(-1);
}

LinTerm LinTerm::scaled(int64_t Factor) const {
  LinTerm T;
  T.Const = Const * Factor;
  for (const auto &[S, C] : Coeffs)
    T.Coeffs[S] = C * Factor;
  T.normalize();
  return T;
}

std::string LinTerm::str() const {
  std::string Out;
  for (const auto &[S, C] : Coeffs) {
    if (!Out.empty())
      Out += C >= 0 ? " + " : " - ";
    else if (C < 0)
      Out += "-";
    int64_t A = C < 0 ? -C : C;
    if (A != 1)
      Out += std::to_string(A) + "*";
    Out += S;
  }
  if (Const != 0 || Out.empty()) {
    if (!Out.empty())
      Out += Const >= 0 ? " + " : " - ";
    else if (Const < 0)
      Out += "-";
    Out += std::to_string(Const < 0 ? -Const : Const);
  }
  return Out;
}

LinTerm lc(int64_t K) { return LinTerm::constant(K); }
LinTerm ls(const std::string &Name) { return LinTerm::sym(Name); }

//===----------------------------------------------------------------------===//
// Fact database.
//===----------------------------------------------------------------------===//

void FactDb::addGe0(LinTerm T, std::string Reason) {
  // Harvest per-symbol interval bounds from single-symbol facts:
  //   c·x + k ≥ 0  with  c > 0  gives  x ≥ ⌈−k/c⌉,
  //                with  c < 0  gives  x ≤ ⌊k/(−c)⌋.
  if (T.coeffs().size() == 1) {
    const auto &[Sym, C] = *T.coeffs().begin();
    int64_t K = T.constPart();
    if (C > 0) {
      // x ≥ ceil(-K / C).
      int64_t Bound = -K >= 0 ? (-K + C - 1) / C : -((K) / C);
      auto It = Lower.find(Sym);
      if (It == Lower.end() || Bound > It->second)
        Lower[Sym] = Bound;
    } else {
      int64_t D = -C;
      // x ≤ floor(K / D).
      int64_t Bound = K >= 0 ? K / D : -((-K + D - 1) / D);
      auto It = Upper.find(Sym);
      if (It == Upper.end() || Bound < It->second)
        Upper[Sym] = Bound;
    }
  }
  Rows.push_back(Row{std::move(T), std::move(Reason)});
}

bool FactDb::intervalImpliesLe(const LinTerm &A, const LinTerm &B) const {
  // A ≤ B iff min(B − A) ≥ 0; lower-bound B − A termwise from the cache.
  LinTerm D = B - A;
  __int128 Min = D.constPart();
  for (const auto &[Sym, C] : D.coeffs()) {
    if (C > 0) {
      auto It = Lower.find(Sym);
      if (It == Lower.end())
        return false;
      Min += __int128(C) * It->second;
    } else {
      auto It = Upper.find(Sym);
      if (It == Upper.end())
        return false;
      Min += __int128(C) * It->second;
    }
  }
  return Min >= 0;
}

void FactDb::addLe(const LinTerm &A, const LinTerm &B, std::string Reason) {
  addGe0(B - A, std::move(Reason));
}

void FactDb::addLt(const LinTerm &A, const LinTerm &B, std::string Reason) {
  addGe0(B - A - lc(1), std::move(Reason)); // Integer tightening.
}

void FactDb::addEq(const LinTerm &A, const LinTerm &B, std::string Reason) {
  addGe0(B - A, Reason);
  addGe0(A - B, std::move(Reason));
}

namespace {

/// A working row during elimination: coefficients in __int128 to keep
/// products exact, held as a flat list sorted by symbol. The symbols are
/// views into the originating LinTerms (the FactDb rows and the caller's
/// goal), which outlive every WideRow of one refutes() call — so
/// elimination never copies a symbol, and combining two rows is a linear
/// merge instead of a tree rebuild. Overflow of the 128-bit range aborts
/// with "unknown".
struct WideRow {
  std::vector<std::pair<std::string_view, __int128>> Coeffs;
  __int128 Const = 0;

  bool isConstant() const { return Coeffs.empty(); }

  /// Coefficient of \p X, or 0 — binary search over the sorted list.
  __int128 coeffOf(std::string_view X) const {
    auto It = std::lower_bound(
        Coeffs.begin(), Coeffs.end(), X,
        [](const auto &P, std::string_view V) { return P.first < V; });
    return It != Coeffs.end() && It->first == X ? It->second : 0;
  }
};

constexpr __int128 kMagCap = (__int128(1) << 100);

bool tooBig(__int128 V) { return V > kMagCap || V < -kMagCap; }

WideRow widen(const LinTerm &T) {
  WideRow R;
  R.Const = T.constPart();
  R.Coeffs.reserve(T.coeffs().size());
  for (const auto &[S, C] : T.coeffs())
    R.Coeffs.emplace_back(S, C); // Map iteration is already sorted.
  return R;
}

/// Combines Pos (coeff of X is P > 0) and Neg (coeff N < 0), eliminating X:
/// (-N)·Pos + P·Neg. Returns false on magnitude overflow.
bool combine(const WideRow &Pos, const WideRow &Neg, std::string_view X,
             WideRow *Out) {
  __int128 A = -Neg.coeffOf(X), B = Pos.coeffOf(X);
  WideRow R;
  R.Const = A * Pos.Const + B * Neg.Const;
  if (tooBig(R.Const))
    return false;
  R.Coeffs.reserve(Pos.Coeffs.size() + Neg.Coeffs.size());
  auto PI = Pos.Coeffs.begin(), PE = Pos.Coeffs.end();
  auto NI = Neg.Coeffs.begin(), NE = Neg.Coeffs.end();
  while (PI != PE || NI != NE) {
    std::string_view S;
    __int128 C = 0;
    if (NI == NE || (PI != PE && PI->first < NI->first)) {
      S = PI->first;
      C = A * PI->second;
      ++PI;
    } else if (PI == PE || NI->first < PI->first) {
      S = NI->first;
      C = B * NI->second;
      ++NI;
    } else {
      S = PI->first;
      C = A * PI->second + B * NI->second;
      ++PI;
      ++NI;
    }
    if (S == X)
      continue;
    if (tooBig(C))
      return false;
    if (C != 0)
      R.Coeffs.emplace_back(S, C);
  }
  *Out = std::move(R);
  return true;
}

} // namespace

bool FactDb::refutes(const std::vector<LinTerm> &Extra,
                     size_t MaxVars) const {
  // Budget exhaustion answers "cannot refute" — the same conservative
  // verdict the effort caps below produce, so exhaustion can only make
  // callers refuse, never accept wrongly.
  if (Budget && !Budget->step())
    return false;
  // Relevance pruning: fact databases grow monotonically during
  // compilation (one definitional symbol per subexpression), but any given
  // goal only depends on the cone of facts transitively sharing symbols
  // with it. Compute that closure first so elimination stays tiny. The
  // sets hold views into the row/goal terms (alive for the whole call):
  // hashing a short symbol beats a red-black tree of string copies on
  // this hot path.
  std::unordered_set<std::string_view> Rel;
  for (const LinTerm &T : Extra)
    for (const auto &[S, C] : T.coeffs()) {
      (void)C;
      Rel.insert(S);
    }
  std::vector<bool> Included(Rows.size(), false);
  // A goal with no symbols (or a plain inconsistency query) has no cone to
  // prune by: consider every fact.
  if (Rel.empty())
    Included.assign(Rows.size(), true);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Rows.size(); ++I) {
      if (Included[I])
        continue;
      const auto &Coeffs = Rows[I].T.coeffs();
      bool Touches =
          Coeffs.empty() || // Constant rows are trivially relevant.
          std::any_of(Coeffs.begin(), Coeffs.end(),
                      [&](const auto &P) { return Rel.count(P.first); });
      if (!Touches)
        continue;
      Included[I] = true;
      Changed = true;
      for (const auto &[S, C] : Coeffs) {
        (void)C;
        Rel.insert(S);
      }
    }
  }

  // Gather the relevant rows (each meaning T ≥ 0) and the variable set.
  std::vector<WideRow> Work;
  Work.reserve(Rows.size() + Extra.size());
  std::unordered_set<std::string_view> Vars;
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (!Included[I])
      continue;
    Work.push_back(widen(Rows[I].T));
    for (const auto &[S, C] : Rows[I].T.coeffs()) {
      (void)C;
      Vars.insert(S);
    }
  }
  for (const LinTerm &T : Extra) {
    Work.push_back(widen(T));
    for (const auto &[S, C] : T.coeffs()) {
      (void)C;
      Vars.insert(S);
    }
  }

  // Caps keep elimination tame; exceeding them means "cannot refute".
  constexpr size_t kMaxRows = 4096;
  if (Vars.size() > MaxVars)
    return false;

  auto HasContradiction = [](const std::vector<WideRow> &Rs) {
    return std::any_of(Rs.begin(), Rs.end(), [](const WideRow &R) {
      return R.isConstant() && R.Const < 0;
    });
  };

  if (HasContradiction(Work))
    return true;

  // Eliminate variables one at a time (fewest-occurrences-first keeps the
  // quadratic growth down on our goal shapes). The occurrence counts are
  // computed in one pass over the rows per round and the sort compares
  // those — the previous comparator rescanned every row for every
  // comparison, which made this loop the single hottest spot in a
  // warm-cache compile. The stable sort over the carried-forward order is
  // kept as-is: elimination order feeds the give-up caps, so the
  // selection sequence must stay exactly what it always was. The initial
  // order is sorted to reproduce the ordered-set iteration it replaced.
  std::vector<std::string> Order(Vars.begin(), Vars.end());
  std::sort(Order.begin(), Order.end());
  while (!Order.empty()) {
    std::unordered_map<std::string_view, size_t> Occur;
    for (const WideRow &R : Work)
      for (const auto &[S, C] : R.Coeffs) {
        (void)C;
        ++Occur[S];
      }
    auto Count = [&](std::string_view V) {
      auto It = Occur.find(V);
      return It == Occur.end() ? size_t(0) : It->second;
    };
    std::stable_sort(Order.begin(), Order.end(),
                     [&](const std::string &A, const std::string &B) {
                       return Count(A) < Count(B);
                     });
    std::string X = Order.front();
    Order.erase(Order.begin());

    if (Budget && !Budget->step())
      return false; // Exhausted mid-elimination: cannot refute.

    std::vector<WideRow> PosRows, NegRows, Rest;
    for (WideRow &R : Work) {
      __int128 C = R.coeffOf(X);
      if (C == 0)
        Rest.push_back(std::move(R));
      else if (C > 0)
        PosRows.push_back(std::move(R));
      else
        NegRows.push_back(std::move(R));
    }
    for (const WideRow &P : PosRows)
      for (const WideRow &N : NegRows) {
        WideRow Combined;
        if (!combine(P, N, X, &Combined))
          return false; // Overflow: give up soundly.
        Rest.push_back(std::move(Combined));
        if (Rest.size() > kMaxRows)
          return false;
      }
    Work = std::move(Rest);
    if (HasContradiction(Work))
      return true;
  }
  return HasContradiction(Work);
}

bool FactDb::entailsLe(const LinTerm &A, const LinTerm &B) const {
  return intervalImpliesLe(A, B) || refutes({A - B - lc(1)});
}

bool FactDb::probeLe(const LinTerm &A, const LinTerm &B) const {
  return intervalImpliesLe(A, B) ||
         refutes({A - B - lc(1)}, /*MaxVars=*/8);
}

bool FactDb::entailsLt(const LinTerm &A, const LinTerm &B) const {
  return intervalImpliesLe(A + lc(1), B) || refutes({A - B});
}

std::optional<int64_t> FactDb::intervalUpperBound(const LinTerm &T) const {
  __int128 Max = T.constPart();
  for (const auto &[Sym, C] : T.coeffs()) {
    if (C > 0) {
      auto It = Upper.find(Sym);
      if (It == Upper.end())
        return std::nullopt;
      Max += __int128(C) * It->second;
    } else {
      auto It = Lower.find(Sym);
      if (It == Lower.end())
        return std::nullopt;
      Max += __int128(C) * It->second;
    }
  }
  constexpr __int128 Cap = __int128(1) << 62;
  if (Max > Cap || Max < -Cap)
    return std::nullopt;
  return int64_t(Max);
}

Status FactDb::proveLe(const LinTerm &A, const LinTerm &B) const {
  if (entailsLe(A, B))
    return Status::success();
  return Error("unsolved side condition: " + A.str() + " <= " + B.str())
      .note("facts in scope:\n" + str());
}

Status FactDb::proveLt(const LinTerm &A, const LinTerm &B) const {
  if (entailsLt(A, B))
    return Status::success();
  return Error("unsolved side condition: " + A.str() + " < " + B.str())
      .note("facts in scope:\n" + str());
}

Status FactDb::proveEq(const LinTerm &A, const LinTerm &B) const {
  if (entailsLe(A, B) && entailsLe(B, A))
    return Status::success();
  return Error("unsolved side condition: " + A.str() + " = " + B.str())
      .note("facts in scope:\n" + str());
}

bool FactDb::inconsistent() const { return refutes({}); }

void FactDb::forEachFact(
    const std::function<void(const LinTerm &, const std::string &)> &Fn)
    const {
  for (const Row &R : Rows)
    Fn(R.T, R.Reason);
}

std::string FactDb::str() const {
  std::string Out;
  for (const Row &R : Rows) {
    Out += "  " + R.T.str() + " >= 0";
    if (!R.Reason.empty())
      Out += "   (" + R.Reason + ")";
    Out += "\n";
  }
  return Out;
}

} // namespace solver
} // namespace relc
