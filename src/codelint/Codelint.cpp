//===- codelint/Codelint.cpp - Target-side safety & resource lints --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "codelint/Codelint.h"

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"

#include <algorithm>
#include <map>
#include <set>

namespace relc {
namespace codelint {

using namespace bedrock;
using analysis::AbiInfo;
using analysis::AbsVal;
using analysis::BasicBlock;
using analysis::Cfg;
using analysis::CfgStmt;
using analysis::SymbolicDomain;
using analysis::SymState;
using solver::lc;
using solver::LinTerm;

const char *verdictName(Verdict V) {
  switch (V) {
  case Verdict::Safe:
    return "safe";
  case Verdict::Unknown:
    return "unknown";
  case Verdict::Unsafe:
    return "unsafe";
  }
  return "?";
}

std::optional<Verdict> verdictFromName(const std::string &Name) {
  if (Name == "safe")
    return Verdict::Safe;
  if (Name == "unknown")
    return Verdict::Unknown;
  if (Name == "unsafe")
    return Verdict::Unsafe;
  return std::nullopt;
}

std::string Finding::str() const {
  std::string Out = "[" + Reason + "]";
  if (!Path.empty())
    Out += " at " + Path;
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

Verdict Report::overall() const {
  if (Mem == Verdict::Unsafe || Stack == Verdict::Unsafe ||
      Steps == Verdict::Unsafe)
    return Verdict::Unsafe;
  if (Mem == Verdict::Unknown || Stack == Verdict::Unknown ||
      Steps == Verdict::Unknown)
    return Verdict::Unknown;
  return Verdict::Safe;
}

std::string Report::str() const {
  std::string Out = "codelint of " + Fn + ": " + verdictName(overall()) +
                    " (mem " + verdictName(Mem) + ", " +
                    std::to_string(Accesses) + " accesses; stack " +
                    verdictName(Stack) + ", " + std::to_string(LocalsBytes) +
                    "+" + std::to_string(ScratchBytes) + " bytes";
  if (OperandDepth)
    Out += ", operand depth " + std::to_string(OperandDepth);
  Out += "; steps " + std::string(verdictName(Steps));
  if (Steps == Verdict::Safe)
    Out += " <= " + std::to_string(StepBound);
  Out += ")";
  if (BudgetExhausted)
    Out += " [budget exhausted]";
  Out += "\n";
  for (const Finding &F : Findings)
    Out += "  " + F.str() + "\n";
  return Out;
}

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers.
//===----------------------------------------------------------------------===//

/// Prints one CFG statement on one line (same rendering as the analyzer's
/// diagnostics, so the two layers read alike).
std::string stmtStr(const CfgStmt &S) {
  std::string Out;
  switch (S.K) {
  case CfgStmt::Kind::Simple:
    Out = S.C->str(0);
    break;
  case CfgStmt::Kind::StackEnter:
    Out = "stackalloc " + cast<Stackalloc>(S.C)->name();
    break;
  case CfgStmt::Kind::StackExit:
    Out = "end of stackalloc " + cast<Stackalloc>(S.C)->name();
    break;
  }
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == ' '))
    Out.pop_back();
  return Out;
}

uint64_t satAdd(uint64_t A, uint64_t B) {
  return A > ~uint64_t(0) - B ? ~uint64_t(0) : A + B;
}

uint64_t satMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > ~uint64_t(0) / B)
    return ~uint64_t(0);
  return A * B;
}

/// One definition of a local inside a loop body (or any subtree).
struct DefRec {
  const Set *S = nullptr; ///< Null for call/interact returns, stackallocs.
  bool Spine = false;     ///< Executed unconditionally (Seq/Stackalloc only).
  size_t Order = 0;       ///< Walk order, for before/after on the spine.
};

/// Collects every definition of every local in \p C, tagging each with
/// whether it sits on the unconditional spine (not nested under If/While).
void collectDefs(const Cmd *C, bool Spine, size_t &Order,
                 std::map<std::string, std::vector<DefRec>> &Out) {
  switch (C->kind()) {
  case Cmd::Kind::Set: {
    const auto *S = cast<Set>(C);
    Out[S->name()].push_back({S, Spine, Order++});
    return;
  }
  case Cmd::Kind::Seq:
    collectDefs(cast<Seq>(C)->first(), Spine, Order, Out);
    collectDefs(cast<Seq>(C)->second(), Spine, Order, Out);
    return;
  case Cmd::Kind::If:
    collectDefs(cast<If>(C)->thenCmd(), false, Order, Out);
    collectDefs(cast<If>(C)->elseCmd(), false, Order, Out);
    return;
  case Cmd::Kind::While:
    collectDefs(cast<While>(C)->body(), false, Order, Out);
    return;
  case Cmd::Kind::Stackalloc: {
    const auto *SA = cast<Stackalloc>(C);
    Out[SA->name()].push_back({nullptr, Spine, Order++});
    collectDefs(SA->body(), Spine, Order, Out);
    return;
  }
  case Cmd::Kind::Call:
    for (const std::string &R : cast<Call>(C)->rets())
      Out[R].push_back({nullptr, Spine, Order++});
    return;
  case Cmd::Kind::Interact:
    for (const std::string &R : cast<Interact>(C)->rets())
      Out[R].push_back({nullptr, Spine, Order++});
    return;
  case Cmd::Kind::Skip:
  case Cmd::Kind::Unset:
  case Cmd::Kind::Store:
    return;
  }
}

std::map<std::string, std::vector<DefRec>> defsIn(const Cmd *C) {
  std::map<std::string, std::vector<DefRec>> Out;
  size_t Order = 0;
  collectDefs(C, true, Order, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// The analyzer.
//===----------------------------------------------------------------------===//

class Linter {
public:
  Linter(const Function &Fn, const AbiInfo &AbiIn, const guard::Budget *Budget)
      : Fn(Fn), Abi(AbiIn), Budget(Budget), G(Cfg::build(Fn)),
        Sym(G, Fn, Abi) {
    // The copy carries the budget: every domain state clones EntryFacts,
    // and FactDb copies carry it along, so all solver queries are bounded.
    Abi.EntryFacts.setBudget(Budget);
  }

  Report run() {
    R.Fn = Fn.Name;
    SymR = analysis::runForward(G, Sym, 64, Budget);
    checkMemory();
    checkStack();
    checkSteps();
    if (Budget && Budget->exhausted())
      R.BudgetExhausted = true;
    return std::move(R);
  }

private:
  const Function &Fn;
  AbiInfo Abi; ///< Copy: its EntryFacts carry the budget (see ctor).
  const guard::Budget *Budget;
  Cfg G;
  SymbolicDomain Sym;
  analysis::DataflowResult<SymbolicDomain> SymR;
  Report R;

  void finding(const std::string &Reason, const std::string &Path,
               const std::string &Detail) {
    R.Findings.push_back({Reason, Path, Detail});
  }

  /// A proof just failed; was it a genuine refusal or budget starvation?
  /// Exhaustion latches, so every later query also fails — those failures
  /// must degrade to Unknown, never escalate to Unsafe.
  bool exhausted() const { return Budget && Budget->exhausted(); }

  //===--------------------------------------------------------------------===//
  // Memory safety: solver-checked access replay + frame-escape.
  //===--------------------------------------------------------------------===//

  void checkMemory() {
    if (!SymR.Converged) {
      R.Mem = Verdict::Unknown;
      finding("analysis-incomplete", "",
              SymR.BudgetExhausted
                  ? "symbolic fixpoint stopped: " + Budget->describe()
                  : "symbolic fixpoint did not converge");
      return;
    }

    bool Unsafe = false, Incomplete = false;
    SymbolicDomain Replay(G, Fn, Abi);
    const CfgStmt *CurStmt = nullptr;
    const BasicBlock *CurBlock = nullptr;

    Replay.setSink([&](const SymbolicDomain::Access &Acc, SymState &St,
                       solver::FactDb &Db) {
      ++R.Accesses;
      std::string Where = CurStmt ? stmtStr(*CurStmt) : CurBlock->Cond->str();
      auto Fail = [&](const std::string &Reason, const std::string &Detail) {
        if (exhausted()) {
          Incomplete = true;
          finding("analysis-incomplete", Acc.Site,
                  Detail + " (" + Budget->describe() + ")");
        } else {
          Unsafe = true;
          finding(Reason, Acc.Site, Detail + " in: " + Where);
        }
      };

      if (Acc.K == SymbolicDomain::Access::Kind::Table) {
        if (!Acc.Table) {
          Fail("oob-table", "access to unknown inline table");
          return;
        }
        if (Acc.Addr.K != AbsVal::Kind::Scalar) {
          Fail("unknown-address", "table index is a pointer");
          return;
        }
        if (!Db.entailsLt(Acc.Addr.T, lc(int64_t(Acc.Table->Elements.size()))))
          Fail("oob-table", "cannot prove index " + Acc.Addr.T.str() + " < " +
                                std::to_string(Acc.Table->Elements.size()) +
                                " (table " + Acc.Table->Name + ")");
        return;
      }

      const bool IsStore = Acc.K == SymbolicDomain::Access::Kind::Store;
      const char *What = IsStore ? "store" : "load";
      const char *OobReason = IsStore ? "oob-store" : "oob-load";
      if (Acc.Addr.K != AbsVal::Kind::Ptr) {
        Fail("unknown-address",
             std::string(What) +
                 " address does not provably point into any frame clause");
        return;
      }
      const analysis::Region &Reg = Abi.Regions[size_t(Acc.Addr.Region)];
      if (St.DeadRegions.count(Acc.Addr.Region)) {
        Fail("expired-region", std::string(What) +
                                   " into expired stackalloc region '" +
                                   Reg.Name + "'");
        return;
      }
      if (!Db.entailsLe(lc(0), Acc.Addr.T)) {
        Fail(OobReason, std::string(What) + " offset " + Acc.Addr.T.str() +
                            " not provably nonnegative in {" + Reg.ClauseStr +
                            "}");
        return;
      }
      if (!Db.entailsLe(Acc.Addr.T + lc(int64_t(Acc.Bytes)), Reg.Extent))
        Fail(OobReason, "cannot prove " + std::to_string(Acc.Bytes) +
                            "-byte " + What + " at offset " +
                            Acc.Addr.T.str() + " stays within {" +
                            Reg.ClauseStr + "}");
    });

    // A scoped (stackalloc) pointer leaking out of its lexical frame —
    // stored to memory or returned — is a use-after-free in waiting even
    // when the leaking access itself is in bounds.
    auto ScopedPtr = [&](const SymState &St, const std::string &V) -> bool {
      auto It = St.Env.find(V);
      return It != St.Env.end() && It->second.K == AbsVal::Kind::Ptr &&
             It->second.Region >= 0 &&
             Abi.Regions[size_t(It->second.Region)].Scoped;
    };

    for (unsigned Id : G.rpo()) {
      if (!SymR.In[Id])
        continue;
      const BasicBlock &B = G.block(Id);
      CurBlock = &B;
      SymState S = *SymR.In[Id];
      for (const CfgStmt &St : B.Stmts) {
        CurStmt = &St;
        if (St.K == CfgStmt::Kind::Simple)
          if (const auto *Str = dyn_cast<Store>(St.C))
            forEachVar(*Str->value(), [&](const std::string &V) {
              if (ScopedPtr(S, V)) {
                Unsafe = true;
                finding("frame-escape", St.Path,
                        "stackalloc pointer '" + V +
                            "' stored to memory in: " + stmtStr(St));
              }
            });
        Replay.transfer(G, B, St, S);
      }
      CurStmt = nullptr;
      // Branch conditions can contain loads/table reads too; evaluating
      // one edge visits every access in the condition.
      if (B.T == BasicBlock::Term::Branch)
        (void)Replay.edge(G, B, S, true);
      if (B.T == BasicBlock::Term::Exit)
        for (const std::string &Ret : Fn.Rets)
          if (ScopedPtr(S, Ret)) {
            Unsafe = true;
            finding("frame-escape", "",
                    "return value '" + Ret +
                        "' is a pointer into a stackalloc frame");
          }
    }

    R.Mem = Unsafe      ? Verdict::Unsafe
            : Incomplete ? Verdict::Unknown
                         : Verdict::Safe;
  }

  //===--------------------------------------------------------------------===//
  // Stack/locals bound: structural, no fixpoint needed.
  //===--------------------------------------------------------------------===//

  /// Worst-case bytes of live stackalloc scratch under \p C. Lexical
  /// scoping means sequenced scopes never coexist (max), nested ones do
  /// (sum); a loop's per-iteration scope is freed before the next one.
  uint64_t scratchBytes(const Cmd *C) const {
    switch (C->kind()) {
    case Cmd::Kind::Stackalloc: {
      const auto *SA = cast<Stackalloc>(C);
      return satAdd(SA->numBytes(), scratchBytes(SA->body()));
    }
    case Cmd::Kind::Seq:
      return std::max(scratchBytes(cast<Seq>(C)->first()),
                      scratchBytes(cast<Seq>(C)->second()));
    case Cmd::Kind::If:
      return std::max(scratchBytes(cast<If>(C)->thenCmd()),
                      scratchBytes(cast<If>(C)->elseCmd()));
    case Cmd::Kind::While:
      return scratchBytes(cast<While>(C)->body());
    default:
      return 0;
    }
  }

  void checkStack() {
    std::set<std::string> Locals(Fn.Args.begin(), Fn.Args.end());
    Locals.insert(Fn.Rets.begin(), Fn.Rets.end());
    for (const auto &[Name, Defs] : defsIn(Fn.Body.get())) {
      (void)Defs;
      Locals.insert(Name);
    }
    R.LocalsBytes = satMul(8, Locals.size());
    R.ScratchBytes = scratchBytes(Fn.Body.get());

    // Calls: a self-call cannot bound its own frame (unbounded stack); any
    // other callee is outside this single-function analysis.
    Verdict V = Verdict::Safe;
    std::function<void(const Cmd *)> Walk = [&](const Cmd *C) {
      switch (C->kind()) {
      case Cmd::Kind::Call: {
        const auto *Cl = cast<Call>(C);
        if (Cl->callee() == Fn.Name) {
          V = Verdict::Unsafe;
          finding("unbounded-stack", "",
                  "recursive call to '" + Cl->callee() +
                      "' has no bounded stack frame");
        } else if (V == Verdict::Safe) {
          V = Verdict::Unknown;
          finding("unknown-callee", "",
                  "cannot bound the frame of callee '" + Cl->callee() + "'");
        }
        return;
      }
      case Cmd::Kind::Seq:
        Walk(cast<Seq>(C)->first());
        Walk(cast<Seq>(C)->second());
        return;
      case Cmd::Kind::If:
        Walk(cast<If>(C)->thenCmd());
        Walk(cast<If>(C)->elseCmd());
        return;
      case Cmd::Kind::While:
        Walk(cast<While>(C)->body());
        return;
      case Cmd::Kind::Stackalloc:
        Walk(cast<Stackalloc>(C)->body());
        return;
      default:
        return;
      }
    };
    Walk(Fn.Body.get());
    R.Stack = V;
  }

  //===--------------------------------------------------------------------===//
  // Step bound: per-iteration cost x trip-count envelope.
  //===--------------------------------------------------------------------===//

  /// Upper bound of \p T under the facts at a loop header. Tries the cheap
  /// per-symbol interval cache first, then binary-searches the full linear
  /// entailment (Fourier–Motzkin handles scaled facts like 2·hi ≤ len that
  /// the cache cannot see).
  std::optional<uint64_t> upperBound(const solver::FactDb &Db,
                                     const LinTerm &T) const {
    if (auto Ub = Db.intervalUpperBound(T))
      return *Ub >= 0 ? std::optional<uint64_t>(uint64_t(*Ub))
                      : std::optional<uint64_t>(0);
    const int64_t Cap = int64_t(1) << 40;
    if (!Db.entailsLe(T, lc(Cap)))
      return std::nullopt;
    int64_t Lo = 0, Hi = Cap;
    while (Lo < Hi) {
      int64_t Mid = Lo + (Hi - Lo) / 2;
      if (Db.entailsLe(T, lc(Mid)))
        Hi = Mid;
      else
        Lo = Mid + 1;
    }
    return uint64_t(Lo);
  }

  /// The loop header block owning \p Cond (by node identity).
  const BasicBlock *headerFor(const Expr *Cond) const {
    for (const BasicBlock &B : G.blocks())
      if (B.IsLoopHeader && B.T == BasicBlock::Term::Branch &&
          B.Cond == Cond)
        return &B;
    return nullptr;
  }

  /// Is \p D an increment that is provably >= 1 (and bounded) each
  /// iteration? Returns its max value, or nullopt.
  ///   - Literal c with c >= 1.
  ///   - (t + (t == 0)) where t's unique def in the body is an earlier
  ///     unconditional 1-byte table/load read (so 1 <= delta <= 256); this
  ///     is the branchless-UTF-8 advance-by-decoded-length shape.
  std::optional<uint64_t>
  incAtLeastOne(const Expr *D, const DefRec &Inc,
                const std::map<std::string, std::vector<DefRec>> &Defs) const {
    if (const auto *L = dyn_cast<Literal>(D))
      return L->value() >= 1 && L->value() <= (uint64_t(1) << 32)
                 ? std::optional<uint64_t>(L->value())
                 : std::nullopt;
    const auto *B = dyn_cast<Bin>(D);
    if (!B || B->op() != BinOp::Add)
      return std::nullopt;
    const auto *T = dyn_cast<Var>(B->lhs());
    const auto *EqE = dyn_cast<Bin>(B->rhs());
    if (!T || !EqE || EqE->op() != BinOp::Eq)
      return std::nullopt;
    const auto *T2 = dyn_cast<Var>(EqE->lhs());
    const auto *Z = dyn_cast<Literal>(EqE->rhs());
    if (!T2 || !Z || Z->value() != 0 || T2->name() != T->name())
      return std::nullopt;
    auto It = Defs.find(T->name());
    if (It == Defs.end() || It->second.size() != 1)
      return std::nullopt;
    const DefRec &TD = It->second.front();
    if (!TD.S || !TD.Spine || TD.Order >= Inc.Order)
      return std::nullopt;
    // The byte bound: a 1-byte table or load read is <= 255.
    if (const auto *TG = dyn_cast<TableGet>(TD.S->value()))
      return sizeBytes(TG->size()) == 1 ? std::optional<uint64_t>(256)
                                        : std::nullopt;
    if (const auto *Ld = dyn_cast<Load>(TD.S->value()))
      return sizeBytes(Ld->size()) == 1 ? std::optional<uint64_t>(256)
                                        : std::nullopt;
    return std::nullopt;
  }

  /// Trip-count bound for \p W from the termination-pattern library:
  ///
  ///   (a) Counting-up: while (v <u B) { ...; v = v + delta; ... } with
  ///       delta >= 1 each iteration, v assigned nowhere else, B loop-
  ///       invariant with a solver upper bound at the header. Since v is
  ///       strictly increasing while v < B and cannot wrap (ub(B) + max
  ///       delta < 2^63), trips <= ub(B).
  ///
  ///   (b) Shift-fold: while ((x >>u k) != 0) { x = (x & (2^k - 1)) +
  ///       (x >>u k); } — each fold shortens x by ~k bits; 64/k + 2
  ///       iterations suffice from any 64-bit start.
  std::optional<uint64_t> tripBound(const While *W) {
    const BasicBlock *H = headerFor(W->cond());
    if (!H || !SymR.Converged)
      return std::nullopt;
    if (!SymR.In[H->Id])
      return 0; // Unreachable loop: never iterates.
    auto Defs = defsIn(W->body());

    // (b) Shift-fold.
    if (const auto *Ne = dyn_cast<Bin>(W->cond()))
      if (Ne->op() == BinOp::Ne)
        if (const auto *Shift = dyn_cast<Bin>(Ne->lhs()))
          if (const auto *Zero = dyn_cast<Literal>(Ne->rhs());
              Zero && Zero->value() == 0 && Shift->op() == BinOp::LShr)
            if (const auto *X = dyn_cast<Var>(Shift->lhs()))
              if (const auto *K = dyn_cast<Literal>(Shift->rhs());
                  K && K->value() >= 1 && K->value() <= 63) {
                auto It = Defs.find(X->name());
                if (It != Defs.end() && It->second.size() == 1 &&
                    It->second.front().S && It->second.front().Spine &&
                    isShiftFold(It->second.front().S->value(), X->name(),
                                K->value()))
                  return 64 / K->value() + 2;
              }

    // (a) Counting-up.
    const auto *Lt = dyn_cast<Bin>(W->cond());
    if (!Lt || Lt->op() != BinOp::LtU)
      return std::nullopt;
    const auto *V = dyn_cast<Var>(Lt->lhs());
    if (!V)
      return std::nullopt;
    auto It = Defs.find(V->name());
    if (It == Defs.end() || It->second.size() != 1)
      return std::nullopt;
    const DefRec &Inc = It->second.front();
    if (!Inc.S || !Inc.Spine)
      return std::nullopt;
    const auto *Add = dyn_cast<Bin>(Inc.S->value());
    if (!Add || Add->op() != BinOp::Add)
      return std::nullopt;
    const Expr *Delta = nullptr;
    if (const auto *L = dyn_cast<Var>(Add->lhs()); L && L->name() == V->name())
      Delta = Add->rhs();
    else if (const auto *Rv = dyn_cast<Var>(Add->rhs());
             Rv && Rv->name() == V->name())
      Delta = Add->lhs();
    if (!Delta)
      return std::nullopt;
    auto DeltaMax = incAtLeastOne(Delta, Inc, Defs);
    if (!DeltaMax)
      return std::nullopt;

    // The bound: a literal, or a loop-invariant variable with a solver
    // upper bound under the header's facts.
    std::optional<uint64_t> Ub;
    if (const auto *L = dyn_cast<Literal>(Lt->rhs())) {
      if (L->value() <= (uint64_t(1) << 40))
        Ub = L->value();
    } else if (const auto *Bv = dyn_cast<Var>(Lt->rhs())) {
      if (Defs.count(Bv->name()))
        return std::nullopt; // Bound mutated in the body.
      const SymState &St = *SymR.In[H->Id];
      auto EnvIt = St.Env.find(Bv->name());
      if (EnvIt == St.Env.end() || EnvIt->second.K != AbsVal::Kind::Scalar)
        return std::nullopt;
      solver::FactDb Db = Sym.materialize(St);
      Ub = upperBound(Db, EnvIt->second.T);
    }
    if (!Ub || satAdd(*Ub, *DeltaMax) > (uint64_t(1) << 62))
      return std::nullopt;
    return *Ub;
  }

  /// x = (x & (2^k - 1)) + (x >>u k), either operand order.
  static bool isShiftFold(const Expr *E, const std::string &X, uint64_t K) {
    const auto *Add = dyn_cast<Bin>(E);
    if (!Add || Add->op() != BinOp::Add)
      return false;
    auto IsMask = [&](const Expr *Op) {
      const auto *And = dyn_cast<Bin>(Op);
      if (!And || And->op() != BinOp::And)
        return false;
      const auto *Xv = dyn_cast<Var>(And->lhs());
      const auto *M = dyn_cast<Literal>(And->rhs());
      return Xv && M && Xv->name() == X &&
             M->value() == (uint64_t(1) << K) - 1;
    };
    auto IsShift = [&](const Expr *Op) {
      const auto *Sh = dyn_cast<Bin>(Op);
      if (!Sh || Sh->op() != BinOp::LShr)
        return false;
      const auto *Xv = dyn_cast<Var>(Sh->lhs());
      const auto *Kv = dyn_cast<Literal>(Sh->rhs());
      return Xv && Kv && Xv->name() == X && Kv->value() == K;
    };
    return (IsMask(Add->lhs()) && IsShift(Add->rhs())) ||
           (IsShift(Add->lhs()) && IsMask(Add->rhs()));
  }

  /// Step cost of \p C, dominating the Bedrock2 interpreter's fuel: one
  /// unit per command node entered plus one per while-iteration check
  /// (including the final failing one). Saturating; nullopt = unbounded.
  std::optional<uint64_t> cost(const Cmd *C) {
    switch (C->kind()) {
    case Cmd::Kind::Skip:
    case Cmd::Kind::Set:
    case Cmd::Kind::Unset:
    case Cmd::Kind::Store:
    case Cmd::Kind::Interact:
      return 1;
    case Cmd::Kind::Seq: {
      auto A = cost(cast<Seq>(C)->first());
      auto B = cost(cast<Seq>(C)->second());
      if (!A || !B)
        return std::nullopt;
      return satAdd(1, satAdd(*A, *B));
    }
    case Cmd::Kind::If: {
      auto A = cost(cast<If>(C)->thenCmd());
      auto B = cost(cast<If>(C)->elseCmd());
      if (!A || !B)
        return std::nullopt;
      return satAdd(1, std::max(*A, *B));
    }
    case Cmd::Kind::Stackalloc: {
      auto B = cost(cast<Stackalloc>(C)->body());
      if (!B)
        return std::nullopt;
      return satAdd(1, *B);
    }
    case Cmd::Kind::While: {
      const auto *W = cast<While>(C);
      auto Body = cost(W->body());
      auto Trips = tripBound(W);
      if (!Body || !Trips) {
        if (Body && !Trips)
          finding("unknown-step-bound", "",
                  "no trip-count bound for loop condition " +
                      W->cond()->str());
        return std::nullopt;
      }
      // Node entry + (trips + 1) iteration checks + trips bodies.
      return satAdd(satAdd(2, *Trips), satMul(*Trips, *Body));
    }
    case Cmd::Kind::Call:
      finding("unknown-step-bound", "",
              "cannot bound steps of call to '" +
                  cast<Call>(C)->callee() + "'");
      return std::nullopt;
    }
    return std::nullopt;
  }

  void checkSteps() {
    auto Total = cost(Fn.Body.get());
    if (Total) {
      R.Steps = Verdict::Safe;
      R.StepBound = *Total;
    } else {
      R.Steps = Verdict::Unknown;
      if (exhausted())
        finding("analysis-incomplete",
                "", "step-bound search stopped: " + Budget->describe());
    }
  }
};

} // namespace

Report analyzeFunction(const Function &Fn, const sep::FnSpec &Spec,
                       const ir::SourceFn &Src,
                       const analysis::EntryFactList &Hints,
                       const guard::Budget *Budget) {
  return Linter(Fn, analysis::makeAbiInfo(Fn, Spec, Src, Hints), Budget)
      .run();
}

Report analyzeStackProgram(const stackm::TProgram &P) {
  Report R;
  R.Fn = "stackm";
  R.Mem = Verdict::Safe; // No memory in language T.
  uint64_t Depth = 0, MaxDepth = 0;
  bool Underflow = false;
  for (size_t I = 0; I < P.size(); ++I) {
    const stackm::TOp &Op = P[I];
    if (Op.TheKind == stackm::TOp::Kind::Push) {
      ++Depth;
      MaxDepth = std::max(MaxDepth, Depth);
    } else if (Depth >= 2) {
      --Depth;
    } else {
      // The interpreter's total semantics make this a no-op, but no
      // well-formed compilation of an expression ever emits it.
      Underflow = true;
      R.Findings.push_back({"stack-underflow", "op#" + std::to_string(I),
                            Op.str() + " with operand depth " +
                                std::to_string(Depth)});
    }
  }
  R.OperandDepth = MaxDepth;
  R.Stack = Underflow ? Verdict::Unsafe : Verdict::Safe;
  R.Steps = Verdict::Safe;
  R.StepBound = P.size(); // One step per op, exactly.
  return R;
}

} // namespace codelint
} // namespace relc
