//===- tests/rulemeta/RuleMetaTest.cpp - Metatheory analyzer corpus --------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Seeded-defect corpus for relc::rulemeta: each case builds a rule set
// with one planted metatheory defect — shadowed, overlapping, dead,
// uncovered-construct, rule-cycle, and three stale-derivation variants —
// and pins the analyzer to the exact kebab-case reason. Plus the positive
// controls (the standard registry and the suite derivations are clean)
// and the fingerprint/cache-invalidation contract: editing, reordering,
// adding, or removing a rule must change the registry fingerprint and
// miss the certificate cache.
//
//===----------------------------------------------------------------------===//

#include "rulemeta/RuleMeta.h"

#include "core/Compiler.h"
#include "pipeline/Pipeline.h"
#include "programs/Programs.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <set>

using namespace relc;

namespace {

/// A stmt rule whose selection behavior is exactly its declared pattern —
/// the honest-descriptor baseline every analysis assumes. apply() always
/// fails: the corpus only exercises selection and the static analyses.
class FakeRule : public core::StmtRule {
public:
  FakeRule(std::string Name, core::GoalPattern P)
      : TheName(std::move(Name)), P(std::move(P)) {}

  std::string name() const override { return TheName; }
  core::GoalPattern pattern() const override { return P; }

  bool matches(const core::CompileCtx &, const ir::Binding &B) const override {
    bool KindOk = false;
    for (ir::BoundForm::Kind K : P.Kinds)
      KindOk = KindOk || B.Bound->kind() == K;
    unsigned N = unsigned(B.Names.size());
    return KindOk && N >= P.MinNames &&
           (P.MaxNames == core::GoalPattern::kAnyArity || N <= P.MaxNames);
  }

  Result<bedrock::CmdPtr> apply(core::CompileCtx &, const ir::Binding &,
                                const core::Cont &,
                                core::DerivNode &) override {
    return Error("FakeRule '" + TheName + "' cannot compile anything");
  }

private:
  std::string TheName;
  core::GoalPattern P;
};

core::GoalPattern pat(std::vector<ir::BoundForm::Kind> Kinds,
                      unsigned MinNames = 1, unsigned MaxNames = 1) {
  core::GoalPattern P;
  P.Kinds = std::move(Kinds);
  P.MinNames = MinNames;
  P.MaxNames = MaxNames;
  return P;
}

void add(core::RuleSet &RS, std::string Name, core::GoalPattern P) {
  RS.add(std::make_unique<FakeRule>(std::move(Name), std::move(P)));
}

/// Every reason string present in \p R.
std::set<std::string> reasons(const rulemeta::Report &R) {
  std::set<std::string> Out;
  for (const rulemeta::Finding &F : R.Findings)
    Out.insert(rulemeta::reasonName(F.Why));
  return Out;
}

/// True iff some finding has exactly this reason and subject.
bool hasFinding(const rulemeta::Report &R, const char *Reason,
                const std::string &Subject) {
  for (const rulemeta::Finding &F : R.Findings)
    if (Reason == std::string(rulemeta::reasonName(F.Why)) &&
        F.Subject == Subject)
      return true;
  return false;
}

/// Clones the standard statement registry as FakeRules (same names, same
/// patterns, same order), skipping any rule named in \p Skip. The clone's
/// selection behavior matches the standard rules' — matches() is kind +
/// arity on both sides — so a derivation audited against a full clone is
/// clean, and every corpus mutation isolates exactly one defect.
core::RuleSet cloneStandard(const std::set<std::string> &Skip = {}) {
  core::RuleSet Std;
  core::registerStandardRules(Std);
  core::RuleSet Out;
  for (size_t I = 0; I < Std.size(); ++I)
    if (!Skip.count(Std[I].name()))
      add(Out, Std[I].name(), Std[I].pattern());
  return Out;
}

using K = ir::BoundForm::Kind;

//===----------------------------------------------------------------------===//
// Positive control: the shipped registry is metatheory-clean.
//===----------------------------------------------------------------------===//

TEST(RuleMetaTest, StandardRegistryIsClean) {
  core::RuleSet RS;
  core::registerStandardRules(RS);
  core::ExprRuleSet ES;
  core::registerStandardExprRules(ES);
  rulemeta::Report R = rulemeta::analyzeRegistry(RS, ES);
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(RuleMetaTest, SuiteDerivationsAgreeWithRegistry) {
  core::RuleSet RS;
  core::registerStandardRules(RS);
  for (const programs::ProgramDef &P : programs::allPrograms()) {
    core::Compiler C;
    Result<core::CompileResult> CR = C.compileFn(P.Model, P.Spec, P.Hints);
    ASSERT_TRUE(bool(CR)) << P.Name << ": " << CR.error().str();
    rulemeta::Report R =
        rulemeta::auditDerivation(P.Model, P.Spec, *CR->Proof, RS);
    EXPECT_TRUE(R.clean()) << P.Name << ":\n" << R.str();
  }
}

//===----------------------------------------------------------------------===//
// Seeded defects, one per case, pinned to the exact kebab-case reason.
//===----------------------------------------------------------------------===//

// 1: a generic rule registered before a specific same-shape rule makes the
// later one unreachable in a first-match database.
TEST(RuleMetaTest, ShadowedRuleIsFlagged) {
  core::RuleSet RS;
  add(RS, "generic_let", pat({K::PureVal}));
  add(RS, "special_let", pat({K::PureVal}));
  core::ExprRuleSet ES;
  rulemeta::Report R = rulemeta::analyzeOrdering(RS, ES);
  EXPECT_TRUE(hasFinding(R, "rule-shadowed", "special_let")) << R.str();
  // The earlier rule itself is fine.
  EXPECT_FALSE(hasFinding(R, "rule-shadowed", "generic_let"));
}

// 2: two unconditional rules whose kind sets merely intersect fire
// order-dependently on the intersection.
TEST(RuleMetaTest, OverlappingRulesAreFlagged) {
  core::RuleSet RS;
  add(RS, "puts_and_lets", pat({K::PureVal, K::ArrayPut}));
  add(RS, "puts_and_maps", pat({K::ArrayPut, K::ListMap}));
  core::ExprRuleSet ES;
  rulemeta::Report R = rulemeta::analyzeOrdering(RS, ES);
  EXPECT_TRUE(hasFinding(R, "rule-overlap", "puts_and_maps")) << R.str();
  EXPECT_EQ(reasons(R), std::set<std::string>{"rule-overlap"});
}

// 3a: an empty kind set can never be selected.
TEST(RuleMetaTest, UnsatisfiablePatternIsDead) {
  core::RuleSet RS;
  add(RS, "matches_nothing", pat({}));
  core::ExprRuleSet ES;
  rulemeta::Report R = rulemeta::analyzeOrdering(RS, ES);
  EXPECT_TRUE(hasFinding(R, "rule-dead", "matches_nothing")) << R.str();
}

// 3b: no single earlier rule subsumes the victim, but the union of two
// earlier rules claims every binding it could select.
TEST(RuleMetaTest, UnionShadowedRuleIsDead) {
  core::RuleSet RS;
  add(RS, "lets_only", pat({K::PureVal}));
  add(RS, "puts_only", pat({K::ArrayPut}));
  add(RS, "lets_or_puts", pat({K::PureVal, K::ArrayPut}));
  core::ExprRuleSet ES;
  rulemeta::Report R = rulemeta::analyzeOrdering(RS, ES);
  EXPECT_TRUE(hasFinding(R, "rule-dead", "lets_or_puts")) << R.str();
  // Not pairwise-shadowed: neither earlier rule covers both kinds.
  EXPECT_FALSE(hasFinding(R, "rule-shadowed", "lets_or_puts"));
}

// 4: a registry that compiles almost nothing leaves most of the construct
// matrix uncovered, row by named row.
TEST(RuleMetaTest, UncoveredConstructsAreNamed) {
  core::RuleSet RS;
  add(RS, "only_lets", pat({K::PureVal}));
  core::ExprRuleSet ES; // Empty: every expression kind is uncovered too.
  rulemeta::Report R = rulemeta::analyzeCoverage(RS, ES);
  EXPECT_TRUE(hasFinding(R, "uncovered-construct", "stmt/list-map"))
      << R.str();
  EXPECT_TRUE(hasFinding(R, "uncovered-construct", "expr/const"));
  EXPECT_FALSE(hasFinding(R, "uncovered-construct", "stmt/pure-val"));
  // 20 statement kinds minus the covered one, plus all 7 expression kinds.
  EXPECT_EQ(R.Findings.size(), 19u + 7u);
  EXPECT_EQ(reasons(R), std::set<std::string>{"uncovered-construct"});
}

// 5: a sub-goal emitter without a structural-decrease argument, reachable
// from its own emissions, may recurse forever.
TEST(RuleMetaTest, NonDecreasingEmitterOnCycleIsFlagged) {
  core::RuleSet RS;
  core::GoalPattern P = pat({K::IfBound}, 0, core::GoalPattern::kAnyArity);
  P.SubGoals = core::GoalPattern::Emits::Prog;
  P.Decreasing = false;
  add(RS, "expands_in_place", std::move(P));
  core::ExprRuleSet ES;
  rulemeta::Report R = rulemeta::analyzeRecursion(RS, ES);
  EXPECT_TRUE(hasFinding(R, "rule-cycle", "expands_in_place")) << R.str();
}

// 5b: the same non-decreasing declaration is fine when nothing reaches
// back — an Expr-emitter over non-emitting expression rules terminates
// regardless.
TEST(RuleMetaTest, NonDecreasingEmitterOffCycleIsFine) {
  core::RuleSet RS;
  core::GoalPattern P = pat({K::PureVal});
  P.SubGoals = core::GoalPattern::Emits::Expr;
  P.Decreasing = false;
  add(RS, "leaf_emitter", std::move(P));
  core::ExprRuleSet ES;
  core::registerStandardExprRules(ES);
  // The standard expression rules that re-emit goals all declare
  // Decreasing, so no cycle runs through a non-decreasing rule... but the
  // stmt rule itself must not be flagged either: expression rules never
  // emit statement goals, so nothing reaches back to it.
  rulemeta::Report R = rulemeta::analyzeRecursion(RS, ES);
  EXPECT_FALSE(hasFinding(R, "rule-cycle", "leaf_emitter")) << R.str();
}

//===----------------------------------------------------------------------===//
// Derivation audit: witness/registry drift (stale-derivation variants).
//===----------------------------------------------------------------------===//

struct CompiledFnv1a {
  const programs::ProgramDef *P;
  core::CompileResult CR;

  static CompiledFnv1a make() {
    const programs::ProgramDef *P = programs::findProgram("fnv1a");
    EXPECT_NE(P, nullptr);
    core::Compiler C;
    Result<core::CompileResult> CR = C.compileFn(P->Model, P->Spec, P->Hints);
    EXPECT_TRUE(bool(CR)) << CR.error().str();
    return {P, CR.take()};
  }

  rulemeta::Report audit(const core::RuleSet &RS) const {
    return rulemeta::auditDerivation(P->Model, P->Spec, *CR.Proof, RS);
  }
};

// Control: a faithful clone of the standard registry accepts the witness.
TEST(RuleMetaTest, AuditAcceptsFaithfulClone) {
  CompiledFnv1a F = CompiledFnv1a::make();
  core::RuleSet Clone = cloneStandard();
  rulemeta::Report R = F.audit(Clone);
  EXPECT_TRUE(R.clean()) << R.str();
}

// 6: the recorded rule was deleted from the registry.
TEST(RuleMetaTest, DeletedRuleMakesDerivationStale) {
  CompiledFnv1a F = CompiledFnv1a::make();
  core::RuleSet Mutant = cloneStandard({"compile_fold"});
  rulemeta::Report R = F.audit(Mutant);
  EXPECT_TRUE(hasFinding(R, "stale-derivation", "compile_fold")) << R.str();
}

// 7: an addFront specialization now outranks the recorded rule — the
// recorded derivation is not the one a no-backtracking driver would
// produce today.
TEST(RuleMetaTest, FrontInsertedRuleMakesDerivationStale) {
  CompiledFnv1a F = CompiledFnv1a::make();
  core::RuleSet Mutant = cloneStandard();
  Mutant.addFront(std::make_unique<FakeRule>("fold_hijack",
                                             pat({K::ListFold})));
  rulemeta::Report R = F.audit(Mutant);
  EXPECT_TRUE(hasFinding(R, "stale-derivation", "compile_fold")) << R.str();
  // And the finding names the usurper.
  bool NamesHijacker = false;
  for (const rulemeta::Finding &Fi : R.Findings)
    NamesHijacker =
        NamesHijacker || Fi.Detail.find("fold_hijack") != std::string::npos;
  EXPECT_TRUE(NamesHijacker) << R.str();
}

// 8: the rule still exists by name but its conclusion changed shape — it
// no longer matches the goal it once discharged.
TEST(RuleMetaTest, RetargetedRuleMakesDerivationStale) {
  CompiledFnv1a F = CompiledFnv1a::make();
  core::RuleSet Mutant = cloneStandard({"compile_fold"});
  // Same name, different conclusion: now claims cell reads, not folds.
  Mutant.add(std::make_unique<FakeRule>("compile_fold", pat({K::CellGet})));
  rulemeta::Report R = F.audit(Mutant);
  EXPECT_TRUE(hasFinding(R, "stale-derivation", "compile_fold")) << R.str();
}

//===----------------------------------------------------------------------===//
// Fingerprint: rule edits must change the registry digest and miss the
// certificate cache.
//===----------------------------------------------------------------------===//

TEST(RuleMetaTest, FingerprintIsStableAndNonzero) {
  EXPECT_NE(core::standardRegistryFingerprint(), 0u);
  EXPECT_EQ(core::standardRegistryFingerprint(),
            core::standardRegistryFingerprint());
  core::RuleSet RS;
  core::registerStandardRules(RS);
  EXPECT_EQ(RS.fingerprint(), cloneStandard().fingerprint())
      << "fingerprint must depend only on names and rendered patterns";
}

TEST(RuleMetaTest, FingerprintSeesEveryKindOfRegistryEdit) {
  uint64_t Base = cloneStandard().fingerprint();

  // Removal.
  EXPECT_NE(cloneStandard({"compile_fold"}).fingerprint(), Base);

  // Addition (front and back).
  core::RuleSet Added = cloneStandard();
  Added.addFront(std::make_unique<FakeRule>("extra", pat({K::ListFold})));
  EXPECT_NE(Added.fingerprint(), Base);

  // Reorder: same rules, different order.
  core::RuleSet Std;
  core::registerStandardRules(Std);
  core::RuleSet Reordered;
  for (size_t I = Std.size(); I-- > 0;)
    Reordered.add(std::make_unique<FakeRule>(Std[I].name(), Std[I].pattern()));
  EXPECT_NE(Reordered.fingerprint(), Base);

  // Pattern edit: one rule's side-condition list gains a tag.
  core::RuleSet Edited;
  for (size_t I = 0; I < Std.size(); ++I) {
    core::GoalPattern P = Std[I].pattern();
    if (Std[I].name() == "compile_fold")
      P.SideConds.push_back("extra-condition");
    Edited.add(std::make_unique<FakeRule>(Std[I].name(), std::move(P)));
  }
  EXPECT_NE(Edited.fingerprint(), Base);
}

TEST(RuleMetaTest, OptionsHashSaltsRegistryFingerprint) {
  validate::ValidationOptions VOpts;
  pipeline::PipelineOptions Opts;
  // The default argument is the standard fingerprint.
  EXPECT_EQ(pipeline::optionsHashFor(VOpts, Opts),
            pipeline::optionsHashFor(VOpts, Opts,
                                     core::standardRegistryFingerprint()));
  // A mutated registry produces a different options hash.
  uint64_t MutantFp = cloneStandard({"compile_fold"}).fingerprint();
  ASSERT_NE(MutantFp, core::standardRegistryFingerprint());
  EXPECT_NE(pipeline::optionsHashFor(VOpts, Opts),
            pipeline::optionsHashFor(VOpts, Opts, MutantFp));
}

TEST(RuleMetaTest, RegistryEditMissesCertificateCache) {
  std::string Dir = testing::TempDir() + "/rulemeta-cache-miss";
  pipeline::CertCache Cache(Dir);
  ASSERT_TRUE(Cache.enabled());

  validate::ValidationOptions VOpts;
  pipeline::PipelineOptions Opts;
  pipeline::CertKey Key{0x1111, 0x2222, 0x3333};

  pipeline::CertEntry E;
  E.Program = "fnv1a";
  E.OptsHash = pipeline::optionsHashFor(VOpts, Opts);
  E.ReplayOk = E.AnalysisOk = E.DifferentialOk = true;
  E.TvRan = true;
  ASSERT_TRUE(bool(Cache.store(Key, E)));

  // Same content, same options, same registry: hit.
  EXPECT_TRUE(Cache.lookup(Key, pipeline::optionsHashFor(VOpts, Opts))
                  .has_value());

  // Same content, same options, edited registry: provably a miss.
  uint64_t MutantFp = cloneStandard({"compile_fold"}).fingerprint();
  EXPECT_FALSE(
      Cache.lookup(Key, pipeline::optionsHashFor(VOpts, Opts, MutantFp))
          .has_value());
}

} // namespace
