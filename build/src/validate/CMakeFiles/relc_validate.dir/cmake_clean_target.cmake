file(REMOVE_RECURSE
  "librelc_validate.a"
)
