file(REMOVE_RECURSE
  "CMakeFiles/extension_writer.dir/extension_writer.cpp.o"
  "CMakeFiles/extension_writer.dir/extension_writer.cpp.o.d"
  "extension_writer"
  "extension_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
