//===- solver/Linear.h - Linear-arithmetic entailment -----------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The side-condition solver (§3.4.2): a small linear-arithmetic entailment
// engine playing the role the paper assigns to Coq's linear solver ("we
// just need to ... plug in Coq's linear-arithmetic solver to handle
// index-bounds side conditions").
//
// Facts and goals are affine constraints over named symbols, interpreted in
// the integers. Entailment is by refutation: to prove "facts ⊢ a < b", show
// that facts ∧ a ≥ b is infeasible, using Fourier–Motzkin elimination with
// integer tightening of strict inequalities. The solver is sound and
// conservative: arithmetic overflow during elimination or exceeding size
// caps yields "not proved", never a wrong "proved".
//
// Soundness with machine words: symbols denote word values interpreted as
// unsigned integers. Compilation rules only submit facts and goals from the
// no-wraparound fragment (index and length arithmetic bounded well below
// 2^64 — the ABI bounds every array length by 2^32, and rules introduce
// structural facts like "x & c ≤ min(x, c)" and "2^k · (x >> k) ≤ x" that
// hold without wrapping). See SymbolFacts helpers below.
//
// Concurrency contract (audited for the parallel certification pipeline,
// pipeline/Scheduler.h): all solver scratch state — the fact rows, the
// elimination workspace — lives inside the FactDb instance; there are no
// globals and no caches shared across instances. Each compile / analysis /
// TV job builds its own FactDb, so concurrent certification jobs never
// contend (per-job arenas, not locks; DESIGN.md §4.5). Any future
// memoization across queries must stay per-instance or be re-audited.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SOLVER_LINEAR_H
#define RELC_SOLVER_LINEAR_H

#include "support/Budget.h"
#include "support/Result.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <map>
#include <string>
#include <vector>

namespace relc {
namespace solver {

/// An affine term: Σ Coeff·Sym + Const over integer coefficients.
class LinTerm {
public:
  LinTerm() = default;

  static LinTerm constant(int64_t K);
  static LinTerm sym(const std::string &Name);

  LinTerm operator+(const LinTerm &O) const;
  LinTerm operator-(const LinTerm &O) const;
  LinTerm scaled(int64_t Factor) const;

  const std::map<std::string, int64_t> &coeffs() const { return Coeffs; }
  int64_t constPart() const { return Const; }

  bool isConstant() const { return Coeffs.empty(); }

  std::string str() const;

private:
  std::map<std::string, int64_t> Coeffs; ///< Zero coefficients are erased.
  int64_t Const = 0;

  void normalize();
};

/// Convenience term constructors.
LinTerm lc(int64_t K);
LinTerm ls(const std::string &Name);

/// A database of affine facts (each stored as Term ≥ 0) supporting
/// entailment queries. Copyable: branches and loop bodies extend a copy.
class FactDb {
public:
  /// Adds the fact T ≥ 0.
  void addGe0(LinTerm T, std::string Reason = "");

  /// Adds A ≤ B.
  void addLe(const LinTerm &A, const LinTerm &B, std::string Reason = "");

  /// Adds A < B (integer-tightened to A + 1 ≤ B).
  void addLt(const LinTerm &A, const LinTerm &B, std::string Reason = "");

  /// Adds A = B (as two inequalities).
  void addEq(const LinTerm &A, const LinTerm &B, std::string Reason = "");

  /// Entailment queries; on failure the error prints the goal and the
  /// facts in scope — the "unsolved side condition" shown to users.
  Status proveLe(const LinTerm &A, const LinTerm &B) const;
  Status proveLt(const LinTerm &A, const LinTerm &B) const;
  Status proveEq(const LinTerm &A, const LinTerm &B) const;

  /// Diagnostic-free probes for rules that merely *test* whether a fact is
  /// derivable (definitional-fact generation, bound propagation); same
  /// verdicts as the prove* forms, without building error strings.
  bool entailsLe(const LinTerm &A, const LinTerm &B) const;
  bool entailsLt(const LinTerm &A, const LinTerm &B) const;

  /// Budgeted probe: like entailsLe but elimination is capped at a small
  /// cone (8 variables). Used for *optional* fact generation (definitional
  /// no-wraparound checks), where a miss only loses precision — never for
  /// required side conditions, which get the full effort.
  bool probeLe(const LinTerm &A, const LinTerm &B) const;

  /// A constant upper bound on \p T derivable from the interval cache
  /// alone (max over the cached per-symbol ranges), when every symbol of
  /// \p T is bounded on the needed side.
  std::optional<int64_t> intervalUpperBound(const LinTerm &T) const;

  /// True iff the current facts are contradictory (e.g. inside dead code).
  bool inconsistent() const;

  /// Enumerates the stored facts (each meaning T ≥ 0) with their reasons.
  /// Consumers that seed *other* fact databases — the static analyzer's
  /// per-program-point states — replay these rows through addGe0.
  void forEachFact(
      const std::function<void(const LinTerm &, const std::string &)> &Fn)
      const;

  size_t size() const { return Rows.size(); }
  std::string str() const;

  /// Arms a cooperative budget for elimination. Exhaustion makes refutes()
  /// answer false — "cannot refute", the conservative verdict every caller
  /// already handles — so a budgeted solver is slower to say yes but never
  /// wrong. Copies of the database share the pointer (the Budget outlives
  /// the layer run that owns both). Null disarms.
  void setBudget(const guard::Budget *B) { Budget = B; }

private:
  struct Row {
    LinTerm T; ///< Meaning: T ≥ 0.
    std::string Reason;
  };
  std::vector<Row> Rows;

  /// Fast-path interval cache: per-symbol constant bounds harvested from
  /// single-symbol facts. Most side-condition probes (byte ≤ 255, masked
  /// index < table size, no-wraparound checks before definitional facts)
  /// resolve here without running elimination.
  std::map<std::string, int64_t> Upper; ///< sym ≤ K.
  std::map<std::string, int64_t> Lower; ///< K ≤ sym.

  /// Interval fast path: true if A ≤ B already follows from the cached
  /// per-symbol bounds alone.
  bool intervalImpliesLe(const LinTerm &A, const LinTerm &B) const;

  /// True iff Rows ∧ (Extra ≥ 0 for each extra) is infeasible. MaxVars
  /// caps the elimination effort (exceeding it means "cannot refute").
  bool refutes(const std::vector<LinTerm> &Extra, size_t MaxVars = 48) const;

  const guard::Budget *Budget = nullptr;
};

} // namespace solver
} // namespace relc

#endif // RELC_SOLVER_LINEAR_H
