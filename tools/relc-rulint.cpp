//===- tools/relc-rulint.cpp - Rule-database metatheory analyzer -----------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The standalone face of relc::rulemeta (DESIGN.md §4.8): audits the
// compilation-rule database itself, the one artifact the rest of the
// certification stack trusts implicitly. Four static analyses run over
// the standard registries' declarative GoalPattern descriptors —
// shadowing/overlap, construct coverage, dead rules, and the
// recursion/termination audit — then every benchmark program is compiled
// and its derivation witness replayed against the live registry: each
// recorded rule must still exist, still match, and still be the first
// match a no-backtracking driver would select (stale-derivation
// otherwise).
//
// Every finding carries a stable kebab-case reason (rule-shadowed,
// rule-overlap, rule-dead, uncovered-construct, rule-cycle,
// stale-derivation); CI matches on those strings. Flags accept both -
// and -- forms, and -flag=value works everywhere.
//
// Exit-code taxonomy (stable; scripts may rely on it):
//   0  registry and every audited derivation are clean
//   1  at least one finding
//   2  usage or infrastructure error (unknown program, compile failure)
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "programs/Programs.h"
#include "rulemeta/RuleMeta.h"
#include "support/CommandLine.h"
#include "support/Hash.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace relc;

int main(int argc, char **argv) {
  bool Quiet = false, NoDeriv = false, PrintFingerprint = false;
  std::vector<const programs::ProgramDef *> Targets;

  cl::OptionTable T(
      "relc-rulint",
      "Static analyzer for the compilation-rule database: checks the\n"
      "standard rule registries for shadowed, overlapping, dead, and\n"
      "non-terminating rules and for uncovered source constructs, then\n"
      "replays each benchmark program's derivation witness against the\n"
      "live registry to catch witness/registry drift. With no program\n"
      "arguments, audits every registered program's derivation.");
  T.flag({"-q"}, &Quiet, "print findings only, no per-section summaries");
  T.flag({"-no-deriv"}, &NoDeriv,
         "registry analyses only; skip compiling the\n"
         "benchmark programs and auditing their derivations");
  T.flag({"-print-fingerprint"}, &PrintFingerprint,
         "print the standard registry fingerprint (the\n"
         "digest salted into the certificate-cache options\n"
         "hash) and exit");
  T.positional("program",
               "audit only the named programs' derivations (default: all)",
               [&Targets](const std::string &A, std::string *Err) {
                 const programs::ProgramDef *P = programs::findProgram(A);
                 if (!P) {
                   *Err = "unknown program '" + A + "'";
                   return false;
                 }
                 Targets.push_back(P);
                 return true;
               });

  switch (T.parse(argc, argv)) {
  case cl::ParseResult::Ok:
    break;
  case cl::ParseResult::Help:
    return 0;
  case cl::ParseResult::Error:
    return 2;
  }

  if (PrintFingerprint) {
    std::printf("%s\n",
                hash::hex16(core::standardRegistryFingerprint()).c_str());
    return 0;
  }

  core::RuleSet RS;
  core::registerStandardRules(RS);
  core::ExprRuleSet ES;
  core::registerStandardExprRules(ES);

  unsigned TotalFindings = 0;
  auto Emit = [&TotalFindings](const rulemeta::Report &R,
                               const std::string &Where) {
    for (const rulemeta::Finding &F : R.Findings)
      std::fprintf(stderr, "[%s] %s\n", Where.c_str(), F.str().c_str());
    TotalFindings += unsigned(R.Findings.size());
  };

  rulemeta::Report Registry = rulemeta::analyzeRegistry(RS, ES);
  Emit(Registry, "registry");
  if (!Quiet && Registry.clean())
    std::printf("registry clean: %zu statement rules, %zu expression rules, "
                "fingerprint %s\n",
                RS.size(), ES.size(),
                hash::hex16(core::standardRegistryFingerprint()).c_str());

  if (!NoDeriv) {
    if (Targets.empty())
      for (const programs::ProgramDef &P : programs::allPrograms())
        Targets.push_back(&P);

    for (const programs::ProgramDef *P : Targets) {
      core::Compiler C;
      Result<core::CompileResult> CR = C.compileFn(P->Model, P->Spec, P->Hints);
      if (!CR) {
        std::fprintf(stderr, "[%s] compilation failed:\n%s\n", P->Name.c_str(),
                     CR.error().str().c_str());
        return 2;
      }
      rulemeta::Report Audit =
          rulemeta::auditDerivation(P->Model, P->Spec, *CR->Proof, RS);
      Emit(Audit, P->Name);
      if (!Quiet && Audit.clean())
        std::printf("[%s] derivation agrees with the registry "
                    "(%u rule applications)\n",
                    P->Name.c_str(), CR->Proof->size());
    }
  }

  if (TotalFindings) {
    std::fprintf(stderr, "relc-rulint: %u finding(s)\n", TotalFindings);
    return 1;
  }
  return 0;
}
