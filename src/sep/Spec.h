//===- sep/Spec.h - Function ABI specifications (fnspec) --------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The binary interface of a compiled function: "the collection of low-level
// representation choices that are visible to other low-level code but
// abstracted away in the high-level code" (§3.1). This is the C++ analogue
// of the paper's `fnspec!` instances (§3.2):
//
//   - which target argument passes which source parameter, and how (scalar
//     word, pointer to an array whose ghost contents are a source list,
//     the length word of such an array, or pointer to a one-word cell);
//   - which source results come back as return words and which come back
//     in place through argument arrays;
//   - the requires/ensures pair is then implied: requires says each length
//     argument equals the ghost list's length and the arrays are laid out
//     at their pointers (separately framed); ensures says final memory
//     holds the model's results and the trace matches the model's effects.
//
// The compiler consumes a FnSpec to build the initial symbolic state; the
// validator consumes the same FnSpec to marshal concrete test vectors.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_SEP_SPEC_H
#define RELC_SEP_SPEC_H

#include "ir/Prog.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace relc {
namespace sep {

/// How one target argument relates to the source model.
struct ArgSpec {
  enum class Kind {
    Scalar,   ///< Passes source word parameter SourceName by value.
    ArrayPtr, ///< Passes a pointer to an array holding list param SourceName.
    ArrayLen, ///< Passes word param SourceName, constrained to equal
              ///< length(OfArray) by the requires clause.
    CellPtr   ///< Passes a pointer to the one-word cell param SourceName.
  };

  Kind TheKind = Kind::Scalar;
  std::string TargetName; ///< Bedrock2 argument name.
  std::string SourceName; ///< Source parameter it realizes.
  std::string OfArray;    ///< For ArrayLen: the measured list parameter.
};

/// A function's ABI.
struct FnSpec {
  std::string TargetName;

  std::vector<ArgSpec> Args;

  /// Source return names that come back as target return words, in order.
  std::vector<std::string> ScalarRets;

  /// Source list parameters whose final (returned) value is written back
  /// in place through their argument pointer. The model must return a list
  /// under the same name.
  std::vector<std::string> InPlaceArrays;

  /// Cell parameters whose final value is written back in place.
  std::vector<std::string> InPlaceCells;

  //===--------------------------------------------------------------------===//
  // Builder-style construction.
  //===--------------------------------------------------------------------===//

  explicit FnSpec(std::string Name = "") : TargetName(std::move(Name)) {}

  FnSpec &scalarArg(const std::string &Name) {
    Args.push_back({ArgSpec::Kind::Scalar, Name, Name, ""});
    return *this;
  }
  FnSpec &arrayArg(const std::string &Name) {
    Args.push_back({ArgSpec::Kind::ArrayPtr, Name, Name, ""});
    return *this;
  }
  FnSpec &lenArg(const std::string &Name, const std::string &OfArray) {
    Args.push_back({ArgSpec::Kind::ArrayLen, Name, Name, OfArray});
    return *this;
  }
  FnSpec &cellArg(const std::string &Name) {
    Args.push_back({ArgSpec::Kind::CellPtr, Name, Name, ""});
    return *this;
  }
  FnSpec &retScalar(const std::string &SourceRet) {
    ScalarRets.push_back(SourceRet);
    return *this;
  }
  FnSpec &retInPlace(const std::string &ListParam) {
    InPlaceArrays.push_back(ListParam);
    return *this;
  }
  FnSpec &retCellInPlace(const std::string &CellParam) {
    InPlaceCells.push_back(CellParam);
    return *this;
  }

  const ArgSpec *findArgForSource(const std::string &SourceName) const;

  /// Renders the spec in the paper's fnspec style.
  std::string str() const;
};

/// Checks that \p Spec is consistent with \p Fn: every source parameter is
/// realized exactly once, length arguments measure list parameters of the
/// model, in-place results name list/cell parameters that the model
/// returns, and scalar returns name scalar results of the model.
Status checkSpecAgainstFn(const FnSpec &Spec, const ir::SourceFn &Fn);

} // namespace sep
} // namespace relc

#endif // RELC_SEP_SPEC_H
