//===- cert/Binary.cpp - Zero-copy binary certificate image ----------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "cert/Binary.h"

#include "support/Hash.h"

#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace relc {
namespace cert {

namespace {

constexpr size_t kHeaderSize = 80;
constexpr size_t kTrailerSize = 8; // The integrity hash.

//===----------------------------------------------------------------------===//
// Encoding.
//===----------------------------------------------------------------------===//

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(char(uint8_t(V >> (8 * I))));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(char(uint8_t(V >> (8 * I))));
}

/// First-occurrence-deduplicated string table: equal Certificates always
/// produce byte-identical tables (and therefore images).
class StrTab {
public:
  void ref(std::string &Records, const std::string &S) {
    auto It = Offsets.find(S);
    if (It == Offsets.end()) {
      It = Offsets.emplace(S, uint32_t(Bytes.size())).first;
      Bytes += S;
    }
    putU32(Records, It->second);
    putU32(Records, uint32_t(S.size()));
  }
  const std::string &bytes() const { return Bytes; }

private:
  std::map<std::string, uint32_t> Offsets;
  std::string Bytes;
};

//===----------------------------------------------------------------------===//
// Decoding: a bounds-checked cursor over the records region. Every read
// validates before it dereferences — the image is untrusted input.
//===----------------------------------------------------------------------===//

struct Cursor {
  const uint8_t *Base = nullptr; ///< Records region start.
  size_t Len = 0;                ///< Records region length.
  size_t At = 0;
  const char *StrBase = nullptr; ///< String table start.
  size_t StrLen = 0;
  bool Failed = false;

  bool take(size_t N) {
    if (Failed || Len - At < N || At > Len) {
      Failed = true;
      return false;
    }
    return true;
  }

  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(Base[At + size_t(I)]) << (8 * I);
    At += 4;
    return V;
  }

  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= uint64_t(Base[At + size_t(I)]) << (8 * I);
    At += 8;
    return V;
  }

  uint8_t u8() {
    if (!take(1))
      return 0;
    return Base[At++];
  }

  std::string str() {
    uint32_t Off = u32();
    uint32_t N = u32();
    if (Failed)
      return {};
    // 64-bit sum: a 32-bit off+len cannot overflow into a false pass.
    if (uint64_t(Off) + uint64_t(N) > StrLen) {
      Failed = true;
      return {};
    }
    return std::string(StrBase + Off, N);
  }
};

std::optional<Certificate> failWith(ReadError *Err, Reject Why,
                                    std::string Detail) {
  if (Err) {
    Err->Why = Why;
    Err->Detail = std::move(Detail);
  }
  return std::nullopt;
}

} // namespace

//===----------------------------------------------------------------------===//
// BinWriter.
//===----------------------------------------------------------------------===//

std::string BinWriter::write(const Certificate &C) {
  StrTab Tab;
  std::string Rec;
  Rec.reserve(512);

  Tab.ref(Rec, C.Producer);
  Tab.ref(Rec, C.Function);
  Tab.ref(Rec, C.Verdict);
  Tab.ref(Rec, C.Reason);
  putU64(Rec, C.NumTerms);

  putU32(Rec, uint32_t(C.Loops.size()));
  for (const LoopRec &L : C.Loops) {
    putU32(Rec, L.Ordinal);
    putU32(Rec, L.Carried);
    putU32(Rec, L.Regions);
    putU64(Rec, L.FoldHash);
    Tab.ref(Rec, L.Binding);
    Tab.ref(Rec, L.Path);
    Tab.ref(Rec, L.TargetPath);
    putU32(Rec, uint32_t(L.WitnessLocals.size()));
    for (const std::string &W : L.WitnessLocals)
      Tab.ref(Rec, W);
    putU32(Rec, uint32_t(L.WitnessRegions.size()));
    for (const std::string &W : L.WitnessRegions)
      Tab.ref(Rec, W);
  }

  putU32(Rec, uint32_t(C.Bindings.size()));
  for (const BindingRec &B : C.Bindings) {
    Tab.ref(Rec, B.Path);
    Tab.ref(Rec, B.Name);
    putU64(Rec, B.Hash);
  }

  putU32(Rec, uint32_t(C.Outputs.size()));
  for (const OutputRec &O : C.Outputs) {
    Tab.ref(Rec, O.Name);
    Tab.ref(Rec, O.Kind);
    Rec.push_back(O.Matched ? 1 : 0);
    putU64(Rec, O.SrcHash);
    putU64(Rec, O.TgtHash);
    Tab.ref(Rec, O.SourceBinding);
    Tab.ref(Rec, O.TargetPath);
  }

  Rec.push_back(C.Codelint ? 1 : 0);
  if (C.Codelint) {
    const CodelintRec &K = *C.Codelint;
    putU32(Rec, K.Version);
    Tab.ref(Rec, K.Mem);
    Tab.ref(Rec, K.Stack);
    Tab.ref(Rec, K.Steps);
    putU64(Rec, K.Accesses);
    putU64(Rec, K.LocalsBytes);
    putU64(Rec, K.ScratchBytes);
    putU64(Rec, K.OperandDepth);
    putU64(Rec, K.StepBound);
  }

  const std::string &Strs = Tab.bytes();
  uint64_t Total = kHeaderSize + Rec.size() + Strs.size() + kTrailerSize;

  std::string Out;
  Out.reserve(size_t(Total));
  Out.append(kBinMagic, sizeof(kBinMagic));
  putU32(Out, kBinFormatVersion);
  putU32(Out, C.SchemaVersion);
  putU64(Out, Total);
  putU64(Out, C.Key.ModelHash);
  putU64(Out, C.Key.SpecHash);
  putU64(Out, C.Key.CodeHash);
  putU64(Out, kHeaderSize);              // Records offset.
  putU64(Out, Rec.size());               // Records length.
  putU64(Out, kHeaderSize + Rec.size()); // String table offset.
  putU64(Out, Strs.size());              // String table length.
  Out += Rec;
  Out += Strs;
  putU64(Out, hash::fnv1a64(Out));
  return Out;
}

//===----------------------------------------------------------------------===//
// BinReader.
//===----------------------------------------------------------------------===//

std::optional<Certificate> BinReader::parse(std::string_view Image,
                                            ReadError *Err) {
  // Validation order is part of the contract the tamper corpus pins:
  // magic, then declared size (truncation), then container/schema version,
  // then integrity, then the bounds-checked walk. Each check only reads
  // bytes the previous checks proved present.
  if (Image.size() < sizeof(kBinMagic))
    return failWith(Err, Reject::TruncatedImage,
                    "image of " + std::to_string(Image.size()) +
                        " bytes cannot hold the magic");
  if (std::memcmp(Image.data(), kBinMagic, sizeof(kBinMagic)) != 0)
    return failWith(Err, Reject::BadMagic,
                    "leading bytes are not a relc binary certificate");
  if (Image.size() < kHeaderSize + kTrailerSize)
    return failWith(Err, Reject::TruncatedImage,
                    "image of " + std::to_string(Image.size()) +
                        " bytes cannot hold the header");

  auto U32At = [&](size_t At) {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(uint8_t(Image[At + size_t(I)])) << (8 * I);
    return V;
  };
  auto U64At = [&](size_t At) {
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= uint64_t(uint8_t(Image[At + size_t(I)])) << (8 * I);
    return V;
  };

  uint64_t Total = U64At(16);
  if (Total != Image.size())
    return failWith(Err, Reject::TruncatedImage,
                    "image declares " + std::to_string(Total) +
                        " bytes but holds " + std::to_string(Image.size()));

  uint32_t FormatV = U32At(8);
  if (FormatV != kBinFormatVersion)
    return failWith(Err, Reject::UnknownSchemaVersion,
                    "binary container version " + std::to_string(FormatV) +
                        " is from a future toolchain (this one reads " +
                        std::to_string(kBinFormatVersion) + ")");

  uint64_t Integrity =
      hash::fnv1a64(std::string_view(Image.data(), Image.size() - 8));
  if (Integrity != U64At(Image.size() - 8))
    return failWith(Err, Reject::IntegrityMismatch,
                    "trailing integrity hash does not cover the image");

  uint32_t SchemaV = U32At(12);
  if (SchemaV > kSchemaVersion)
    return failWith(Err, Reject::UnknownSchemaVersion,
                    "schema_version " + std::to_string(SchemaV) +
                        " is from a future toolchain");

  uint64_t RecOff = U64At(48), RecLen = U64At(56);
  uint64_t StrOff = U64At(64), StrLen = U64At(72);
  uint64_t Payload = Image.size() - kTrailerSize;
  if (RecOff > Payload || RecLen > Payload - RecOff || StrOff > Payload ||
      StrLen > Payload - StrOff)
    return failWith(Err, Reject::OffsetOutOfRange,
                    "records or string table escape the image");

  Cursor C;
  C.Base = reinterpret_cast<const uint8_t *>(Image.data()) + RecOff;
  C.Len = size_t(RecLen);
  C.StrBase = Image.data() + StrOff;
  C.StrLen = size_t(StrLen);

  Certificate Out;
  Out.SchemaVersion = SchemaV;
  Out.Key.ModelHash = U64At(24);
  Out.Key.SpecHash = U64At(32);
  Out.Key.CodeHash = U64At(40);

  Out.Producer = C.str();
  Out.Function = C.str();
  Out.Verdict = C.str();
  Out.Reason = C.str();
  Out.NumTerms = C.u64();

  uint32_t NumLoops = C.u32();
  for (uint32_t I = 0; I < NumLoops && !C.Failed; ++I) {
    LoopRec L;
    L.Ordinal = C.u32();
    L.Carried = C.u32();
    L.Regions = C.u32();
    L.FoldHash = C.u64();
    L.Binding = C.str();
    L.Path = C.str();
    L.TargetPath = C.str();
    uint32_t NW = C.u32();
    for (uint32_t J = 0; J < NW && !C.Failed; ++J)
      L.WitnessLocals.push_back(C.str());
    uint32_t NR = C.u32();
    for (uint32_t J = 0; J < NR && !C.Failed; ++J)
      L.WitnessRegions.push_back(C.str());
    Out.Loops.push_back(std::move(L));
  }

  uint32_t NumBinds = C.u32();
  for (uint32_t I = 0; I < NumBinds && !C.Failed; ++I) {
    BindingRec B;
    B.Path = C.str();
    B.Name = C.str();
    B.Hash = C.u64();
    Out.Bindings.push_back(std::move(B));
  }

  uint32_t NumOuts = C.u32();
  for (uint32_t I = 0; I < NumOuts && !C.Failed; ++I) {
    OutputRec O;
    O.Name = C.str();
    O.Kind = C.str();
    O.Matched = C.u8() != 0;
    O.SrcHash = C.u64();
    O.TgtHash = C.u64();
    O.SourceBinding = C.str();
    O.TargetPath = C.str();
    Out.Outputs.push_back(std::move(O));
  }

  if (C.u8() != 0) {
    CodelintRec K;
    K.Version = C.u32();
    K.Mem = C.str();
    K.Stack = C.str();
    K.Steps = C.str();
    K.Accesses = C.u64();
    K.LocalsBytes = C.u64();
    K.ScratchBytes = C.u64();
    K.OperandDepth = C.u64();
    K.StepBound = C.u64();
    Out.Codelint = std::move(K);
  }

  if (C.Failed)
    return failWith(Err, Reject::OffsetOutOfRange,
                    "a record or string reference escapes its region");
  if (C.At != C.Len)
    return failWith(Err, Reject::OffsetOutOfRange,
                    "records region has " + std::to_string(C.Len - C.At) +
                        " undeclared trailing bytes");
  return Out;
}

std::optional<Certificate> BinReader::readFile(const std::string &Path,
                                               ReadError *Err) {
#ifndef _WIN32
  // mmap the image read-only: the decode walks the mapping in place, no
  // buffer copy. parse() treats the mapping as untrusted either way.
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd >= 0) {
    struct stat St;
    if (::fstat(Fd, &St) == 0 && St.st_size > 0) {
      size_t Size = size_t(St.st_size);
      void *Map = ::mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
      if (Map != MAP_FAILED) {
        std::optional<Certificate> Out =
            parse(std::string_view(static_cast<const char *>(Map), Size), Err);
        ::munmap(Map, Size);
        ::close(Fd);
        return Out;
      }
    }
    ::close(Fd);
  }
#endif
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return failWith(Err, Reject::MissingCertificate,
                    "cannot open '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Image = Buf.str();
  return parse(Image, Err);
}

} // namespace cert
} // namespace relc
