
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bedrock/InterpTest.cpp" "tests/CMakeFiles/bedrock_tests.dir/bedrock/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/bedrock_tests.dir/bedrock/InterpTest.cpp.o.d"
  "/root/repo/tests/bedrock/MemoryTest.cpp" "tests/CMakeFiles/bedrock_tests.dir/bedrock/MemoryTest.cpp.o" "gcc" "tests/CMakeFiles/bedrock_tests.dir/bedrock/MemoryTest.cpp.o.d"
  "/root/repo/tests/bedrock/VerifyTest.cpp" "tests/CMakeFiles/bedrock_tests.dir/bedrock/VerifyTest.cpp.o" "gcc" "tests/CMakeFiles/bedrock_tests.dir/bedrock/VerifyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bedrock/CMakeFiles/relc_bedrock.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/relc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
