//===- tools/relc-lint.cpp - Standalone static analyzer driver -------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Runs the static layers of the certification pipeline as a strict gate:
// compiles the named benchmark programs (or all of them), feeds the
// generated Bedrock2 code to the relc::analysis verifier, and runs the
// relc::tv translation validator. Prints the full report for each program
// and exits nonzero if *any* diagnostic — error or warning — was
// produced, or if any program fails to come out *Proved* equivalent to
// its model (for the curated suite, Inconclusive is also a regression:
// every suite program lies inside the validated fragment). Registered
// over every benchmark program as ctest cases, so a rule change that
// makes the generated code sloppy (dead stores, unprovable bounds) or
// semantically drifts it from the model fails the test suite even when
// the sampled differential vectors happen to pass.
//
// Usage: relc-lint [-q] [-no-tv] [<program>...]
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "programs/Programs.h"
#include "tv/Tv.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace relc;

static int usage() {
  std::fprintf(stderr, "usage: relc-lint [-q] [-no-tv] [<program>...]\n"
                       "  with no arguments, lints every registered program\n");
  return 2;
}

int main(int argc, char **argv) {
  bool Quiet = false, Tv = true;
  std::vector<const programs::ProgramDef *> Targets;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-q") {
      Quiet = true;
    } else if (A == "-no-tv" || A == "--no-tv") {
      Tv = false;
    } else if (!A.empty() && A[0] == '-') {
      return usage();
    } else {
      const programs::ProgramDef *P = programs::findProgram(A);
      if (!P) {
        std::fprintf(stderr, "relc-lint: unknown program '%s'\n", A.c_str());
        return 2;
      }
      Targets.push_back(P);
    }
  }
  if (Targets.empty())
    for (const programs::ProgramDef &P : programs::allPrograms())
      Targets.push_back(&P);

  unsigned TotalDiags = 0;
  for (const programs::ProgramDef *P : Targets) {
    // Compile only; validation is the other layers' job.
    Result<programs::CompiledProgram> C =
        programs::compileAndValidate(*P, /*RunValidation=*/false);
    if (!C) {
      std::fprintf(stderr, "[%s] compilation failed:\n%s\n", P->Name.c_str(),
                   C.error().str().c_str());
      return 2;
    }
    analysis::AnalysisReport R = analysis::analyzeProgram(
        C->Result.Fn, P->Spec, P->Model, P->Hints.EntryFacts);
    if (!Quiet || !R.Diags.empty())
      std::printf("%s", R.str().c_str());
    TotalDiags += unsigned(R.Diags.size());

    if (Tv) {
      tv::TvReport TR = tv::validateTranslation(P->Model, P->Spec,
                                                C->Result.Fn,
                                                P->Hints.EntryFacts);
      if (!Quiet || !TR.proved())
        std::printf("%s", TR.str().c_str());
      if (!TR.proved()) // Strict gate: the suite must prove, not just
        ++TotalDiags;   // fail-to-refute.
    }
  }

  if (TotalDiags) {
    std::fprintf(stderr, "relc-lint: %u diagnostic(s)\n", TotalDiags);
    return 1;
  }
  return 0;
}
