//===- relc/Certify.h - Public certification surface ------------*- C++ -*-===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The public facade over the certification pipeline: everything a tool,
// bench, or embedder needs to compile-and-certify programs, in-process
// or through the relcd daemon, without reaching into src/* internals.
//
// Re-exported entry points:
//
//   service::Request / service::Response / service::certify()
//       — the one audited request/response surface (exit taxonomy,
//         cache + budget semantics, per-program classification);
//   pipeline::certifyPrograms / PipelineOptions / ProgramOutcome
//       — the underlying suite driver, via service/Service.h;
//   service::wire::* + service::Client / service::Server
//       — wire schema v1 and the daemon/client halves of relcd.
//
// Tools include this header (and relc/Cert.h, relc/Check.h) only; a
// ctest include-audit keeps tools/*.cpp from including pipeline/, cert/,
// tv/, or validate/ headers directly.
//
//===----------------------------------------------------------------------===//

#ifndef RELC_API_CERTIFY_H
#define RELC_API_CERTIFY_H

#include "service/Client.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "service/Service.h"

#endif // RELC_API_CERTIFY_H
