# Empty dependencies file for stackm_tests.
# This may be replaced when dependencies are built.
