//===- ir/Build.cpp - Builder API for FunLang models ------------------------===//
//
// Part of relc, a C++ reproduction of "Relational Compilation for
// Performance-Critical Applications" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Build.h"

namespace relc {
namespace ir {

BoundPtr mkPure(ExprPtr E) { return std::make_shared<PureVal>(std::move(E)); }
BoundPtr mkPut(std::string Array, ExprPtr Index, ExprPtr Val) {
  return std::make_shared<ArrayPut>(std::move(Array), std::move(Index),
                                    std::move(Val));
}
BoundPtr mkMap(std::string Array, std::string Param, ExprPtr Body) {
  return std::make_shared<ListMap>(std::move(Array), std::move(Param),
                                   std::move(Body));
}
BoundPtr mkFold(std::string Array, std::string AccParam, std::string EltParam,
                ExprPtr Init, ExprPtr Body) {
  return std::make_shared<ListFold>(std::move(Array), std::move(AccParam),
                                    std::move(EltParam), std::move(Init),
                                    std::move(Body));
}
BoundPtr mkFoldBreak(std::string Array, std::string AccParam,
                     std::string EltParam, ExprPtr Init, ExprPtr Body,
                     ExprPtr Break) {
  return std::make_shared<FoldBreak>(std::move(Array), std::move(AccParam),
                                     std::move(EltParam), std::move(Init),
                                     std::move(Body), std::move(Break));
}
BoundPtr mkRange(std::string IdxName, ExprPtr Lo, ExprPtr Hi,
                 std::vector<AccInit> Accs, ProgPtr Body) {
  return std::make_shared<RangeFold>(std::move(IdxName), std::move(Lo),
                                     std::move(Hi), std::move(Accs),
                                     std::move(Body));
}
BoundPtr mkWhile(std::vector<AccInit> Accs, ExprPtr Cond, ProgPtr Body,
                 ExprPtr Measure) {
  return std::make_shared<WhileComb>(std::move(Accs), std::move(Cond),
                                     std::move(Body), std::move(Measure));
}
BoundPtr mkIf(ExprPtr Cond, ProgPtr Then, ProgPtr Else) {
  return std::make_shared<IfBound>(std::move(Cond), std::move(Then),
                                   std::move(Else));
}
BoundPtr mkStack(std::vector<uint8_t> Bytes) {
  return std::make_shared<StackInit>(std::move(Bytes));
}
BoundPtr mkStackUninit(uint64_t Size) {
  return std::make_shared<StackUninit>(Size);
}
BoundPtr mkNondetAlloc(uint64_t Size) {
  return std::make_shared<NondetAlloc>(Size);
}
BoundPtr mkNondetPeek() { return std::make_shared<NondetPeek>(); }
BoundPtr mkIoRead() { return std::make_shared<IoRead>(); }
BoundPtr mkIoWrite(ExprPtr E) {
  return std::make_shared<IoWrite>(std::move(E));
}
BoundPtr mkTell(ExprPtr E) {
  return std::make_shared<WriterTell>(std::move(E));
}
BoundPtr mkCellGet(std::string Cell) {
  return std::make_shared<CellGet>(std::move(Cell));
}
BoundPtr mkCellPut(std::string Cell, ExprPtr E) {
  return std::make_shared<CellPut>(std::move(Cell), std::move(E));
}
BoundPtr mkCellIncr(std::string Cell, ExprPtr E) {
  return std::make_shared<CellIncr>(std::move(Cell), std::move(E));
}
BoundPtr mkCopy(std::string Array) {
  return std::make_shared<CopyArr>(std::move(Array));
}
BoundPtr mkCall(std::string Callee, std::vector<ExprPtr> Args,
                unsigned NumRets) {
  return std::make_shared<ExternCall>(std::move(Callee), std::move(Args),
                                      NumRets);
}

AccInit acc(std::string Name, ExprPtr Init) {
  return AccInit{std::move(Name), std::move(Init)};
}

ProgBuilder &ProgBuilder::let(std::string Name, ExprPtr E) {
  return let(std::move(Name), mkPure(std::move(E)));
}

ProgBuilder &ProgBuilder::let(std::string Name, BoundPtr B) {
  Bindings.push_back(Binding{{std::move(Name)}, std::move(B)});
  return *this;
}

ProgBuilder &ProgBuilder::letMulti(std::vector<std::string> Names,
                                   BoundPtr B) {
  Bindings.push_back(Binding{std::move(Names), std::move(B)});
  return *this;
}

ProgPtr ProgBuilder::ret(std::vector<std::string> Names) && {
  return std::make_shared<Prog>(std::move(Bindings), std::move(Names));
}

FnBuilder::FnBuilder(std::string Name, Monad M) {
  Fn.Name = std::move(Name);
  Fn.TheMonad = M;
}

FnBuilder &FnBuilder::wordParam(std::string Name) {
  Fn.Params.push_back(Param::scalar(std::move(Name)));
  return *this;
}

FnBuilder &FnBuilder::listParam(std::string Name, EltKind Elt) {
  Fn.Params.push_back(Param::list(std::move(Name), Elt));
  return *this;
}

FnBuilder &FnBuilder::cellParam(std::string Name) {
  Fn.Params.push_back(Param::cell(std::move(Name)));
  return *this;
}

FnBuilder &FnBuilder::table(std::string Name, EltKind Elt,
                            std::vector<uint64_t> Elements) {
  Fn.Tables.push_back(TableDef{std::move(Name), Elt, std::move(Elements)});
  return *this;
}

SourceFn FnBuilder::done(ProgPtr Body) && {
  Fn.Body = std::move(Body);
  return std::move(Fn);
}

} // namespace ir
} // namespace relc
